#!/usr/bin/env python
"""How the spectral gap drives COBRA's cover time (Theorem 1's λ-axis).

Theorem 1 bounds the cover time by ``log n / (1 - λ)³``.  This study
sweeps two graph families whose gaps differ by orders of magnitude at a
(nearly) fixed number of vertices:

* circulants ``C_513(1..j)`` — analytic eigenvalues, gaps from ~1e-4
  (j = 1, essentially a cycle) up to ~0.2;
* random `r`-regular graphs at n = 512 — gaps from ~0.06 (r = 3) to
  ~0.8 (r = 32).

It prints the measured cover times with the theory bound and an ASCII
log-log figure of cover time vs ``1/(1-λ)``.

Run:  python examples/spectral_gap_study.py
"""

from __future__ import annotations

from repro import graphs
from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import Table
from repro.experiments.sweep import measure_cobra_cover
from repro.graphs.spectral import analytic_lambda, lambda_second
from repro.theory.bounds import cover_time_bound

SAMPLES = 10


def main() -> None:
    table = Table(
        ["graph", "lambda", "1/(1-lambda)", "mean cover", "Theorem 1 bound"],
        float_format="%.4g",
    )

    circulant_x, circulant_y = [], []
    for j in (1, 2, 4, 8, 16):
        offsets = tuple(range(1, j + 1))
        graph = graphs.circulant(513, offsets)
        lam = analytic_lambda("circulant", n=513, offsets=offsets)
        cover = measure_cobra_cover(graph, n_samples=SAMPLES, seed=(1, j)).mean
        table.add_row(
            [f"circulant(513, 1..{j})", lam, 1 / (1 - lam), cover,
             cover_time_bound(513, lam)]
        )
        circulant_x.append(1 / (1 - lam))
        circulant_y.append(cover)

    regular_x, regular_y = [], []
    for r in (3, 4, 6, 8, 16, 32):
        graph = graphs.random_regular(512, r, seed=r)
        lam = lambda_second(graph)
        cover = measure_cobra_cover(graph, n_samples=SAMPLES, seed=(2, r)).mean
        table.add_row(
            [f"random regular r={r}", lam, 1 / (1 - lam), cover,
             cover_time_bound(512, lam)]
        )
        regular_x.append(1 / (1 - lam))
        regular_y.append(cover)

    print(table.render())

    circulant_fit = fit_power_law(circulant_x, circulant_y)
    print(
        f"\ncirculant family: cover ~ (1/(1-lambda))^{circulant_fit.slope:.2f} "
        f"(R^2 = {circulant_fit.r_squared:.3f}) — far below Theorem 1's cube, "
        "the bound is loose here"
    )

    print()
    print(
        ascii_plot(
            {
                "circulant(513)": (circulant_x, circulant_y),
                "random regular": (regular_x, regular_y),
            },
            log_x=True,
            log_y=True,
            title="COBRA k=2 cover time vs 1/(1-lambda), log-log",
            x_label="1/(1-lambda)",
            y_label="rounds",
        )
    )


if __name__ == "__main__":
    main()
