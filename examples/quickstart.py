#!/usr/bin/env python
"""Quickstart: run COBRA on an expander and compare with the theory bound.

This is the 60-second tour of the library:

1. build a connected random regular graph (the paper's expander testbed),
2. measure its spectral gap,
3. run a COBRA process with branching factor 2 until every vertex has
   been covered,
4. compare the measured cover time with Theorem 1's O(log n) shape,
5. load the shipped scenario file (a torus ladder — a non-expander
   family) and run it at toy scale, and validate the override-grid
   campaign next to it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math
from pathlib import Path

from repro import CobraProcess, graphs, run_process
from repro.graphs.spectral import lambda_second, spectral_gap
from repro.theory.bounds import cover_time_bound, spectral_condition_holds


def main() -> None:
    n, r = 4096, 8
    print(f"Building a random {r}-regular graph on {n} vertices ...")
    graph = graphs.random_regular(n, r, seed=1)

    lam = lambda_second(graph)
    print(f"  lambda = {lam:.4f}   spectral gap = {spectral_gap(graph):.4f}")
    print(f"  Theorem 1 hypothesis 1 - lambda >> sqrt(log n / n): "
          f"{'satisfied' if spectral_condition_holds(n, lam) else 'NOT satisfied'}")

    print("\nRunning COBRA with branching factor k = 2 from vertex 0 ...")
    process = CobraProcess(graph, start=0, branching=2.0, seed=42)
    result = run_process(process, record_trace=True)

    print(f"  cover time cov(0)      = {result.completion_time} rounds")
    print(f"  log2(n)                = {math.log2(n):.1f}")
    print(f"  Theorem 1 bound T      = {cover_time_bound(n, lam):.0f} "
          f"(loose explicit constant)")

    print("\nRound-by-round coverage:")
    for record in result.trace:
        bar = "#" * (50 * record.cumulative_count // n)
        print(
            f"  t={record.round_index:>3}  active={record.active_count:>5}  "
            f"covered={record.cumulative_count:>5}  |{bar}"
        )

    total_messages = result.trace.total_transmissions()
    print(f"\nTotal messages: {total_messages} "
          f"({total_messages / n:.1f} per vertex for the whole broadcast)")

    scenario_tour()


def scenario_tour() -> None:
    """Load the shipped scenario JSON files and exercise them at toy scale."""
    from repro.experiments import run_experiment
    from repro.experiments.campaign import Campaign
    from repro.scenarios import load_scenario

    examples_dir = Path(__file__).resolve().parent
    scenario = load_scenario(examples_dir / "scenario_torus_sweep.json")
    print(f"\nScenario {scenario.name!r}: {scenario.experiment_id} "
          f"on {scenario.overrides['family']['kind']} graphs")
    # Shrink the ladder so the tour stays fast; the full ladder is one
    # `cobra-repro campaign examples/scenario_torus_sweep.json` away.
    toy = scenario.workload().with_overrides({"sizes": (25, 49, 81), "samples": 4})
    result = run_experiment(scenario.experiment_id, workload=toy, seed=0)
    for finding in result.findings:
        print(f"  * {finding}")

    campaign = Campaign.from_json(
        (examples_dir / "campaign_override_grid.json").read_text()
    )
    print(f"\nCampaign {campaign.name!r} validates: {len(campaign.entries)} entries "
          f"(override grids + a named scenario); run it with\n"
          f"  cobra-repro campaign examples/campaign_override_grid.json")


if __name__ == "__main__":
    main()
