#!/usr/bin/env python
"""Exact laws on small graphs: cover-time pmf, infection law, endemic level.

Monte-Carlo tells you means and quantiles; the exact engines give whole
*distributions*.  This example computes, with no sampling error:

1. the full pmf of the COBRA cover time on K6 (pair-state engine),
   printed as a bar chart;
2. the first-passage law of the BIPS infection time on the same graph;
3. the stationary (endemic) infected-set size of BIPS on a cycle vs a
   clique — the quantity the persistent-source epidemic settles to;
4. a cross-check of each exact expectation against a batched
   Monte-Carlo ensemble.

Run:  python examples/exact_laws.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.core.batch import batch_bips_infection_times, batch_cobra_cover_times
from repro.exact.bips_exact import ExactBips
from repro.exact.cover_exact import ExactCobraCover

BAR_WIDTH = 52


def print_pmf(label: str, pmf: np.ndarray) -> None:
    print(f"\n{label}")
    peak = pmf.max()
    for t, probability in enumerate(pmf):
        if probability < 1e-6:
            continue
        bar = "#" * int(round(BAR_WIDTH * probability / peak))
        print(f"  t={t:>2}  {probability:8.5f}  {bar}")


def main() -> None:
    k6 = graphs.complete(6)

    print("Exact laws on K6 (k = 2, from vertex 0)")

    cover_engine = ExactCobraCover(k6)
    cover_pmf, _ = cover_engine.cover_time_distribution(0, t_max=25)
    print_pmf("COBRA cover time pmf (exact):", cover_pmf)
    exact_cover = cover_engine.expected_cover_time(0)

    bips_engine = ExactBips(k6, 0)
    infec_pmf, _ = bips_engine.infection_time_distribution(25)
    print_pmf("BIPS infection time pmf (exact):", infec_pmf)
    exact_infec = bips_engine.expected_infection_time()

    print("\nCross-check against 20000 batched Monte-Carlo replicas:")
    cover_samples = batch_cobra_cover_times(k6, 0, n_replicas=20000, seed=1)
    infec_samples = batch_bips_infection_times(k6, 0, n_replicas=20000, seed=2)
    print(f"  E[cov]   exact {exact_cover:.4f}   empirical {cover_samples.mean():.4f}")
    print(f"  E[infec] exact {exact_infec:.4f}   empirical {infec_samples.mean():.4f}")

    print(
        "\nQuasi-stationary structure (conditioned on not-yet-full, k = 2):"
        "\n  theta = per-round survival factor: P(infec > t) ~ C * theta^t"
    )
    print(f"  {'graph':<16} {'theta':>8} {'QSD mean |A|/n':>16}")
    for graph in (graphs.cycle(9), graphs.petersen(), graphs.complete(9)):
        engine = ExactBips(graph, 0)
        qsd_level = engine.quasi_stationary_mean_size() / graph.n_vertices
        _, theta = engine.quasi_stationary_distribution()
        print(f"  {graph.name:<16} {theta:8.4f} {qsd_level:>15.1%}")

    print(
        "\nReading guide: the full state is ABSORBING for BIPS (once everyone\n"
        "is infected, every sample hits an infected neighbour), so the plain\n"
        "stationary law is trivial. The quasi-stationary view shows the real\n"
        "structure: better-connected graphs absorb faster (smaller theta) —\n"
        "theta is exactly the geometric tail rate behind the paper's w.h.p.\n"
        "claims, measured at scale in experiment E11."
    )


if __name__ == "__main__":
    main()
