#!/usr/bin/env python
"""BIPS as an epidemic model: a persistently infected host in a herd.

The paper motivates BIPS with the Bovine Viral Diarrhea Virus (BVDV):
certain animals become *persistently infected* carriers, and
introducing one into a herd keeps reinfecting it even though
transiently infected animals recover.  This example models a herd as a
contact graph (animals mix within pens, pens share fence lines —
a ring of cliques) and contrasts:

* **BIPS** — one persistently infected animal: the infection reaches
  the whole herd and, tracked over time, keeps a large endemic level;
* **plain SIS** — the same contact process when the index animal
  recovers like any other: the outbreak frequently dies out on its own.

Run:  python examples/persistent_source_epidemic.py
"""

from __future__ import annotations

import numpy as np

from repro import BipsProcess, SisProcess, graphs, run_process
from repro._rng import spawn_generators
from repro.analysis.stats import proportion_ci, summarize
from repro.analysis.tables import Table

PENS, PEN_SIZE = 12, 8  # 96 animals in 12 pens
CONTACTS_PER_DAY = 2.0  # each animal samples k = 2 contacts per round
TRIALS = 200
ROUND_CAP = 400


def main() -> None:
    herd = graphs.ring_of_cliques(PENS, PEN_SIZE)
    n = herd.n_vertices
    print(
        f"Herd model: {PENS} pens x {PEN_SIZE} animals = {n} animals, "
        f"{herd.n_edges} contact pairs"
    )
    print(f"Each animal contacts ~{CONTACTS_PER_DAY:.0f} random neighbours per day.\n")

    # --- persistently infected carrier (BIPS) -------------------------
    print("Scenario A: one PERSISTENTLY infected carrier (BIPS)")
    times = []
    for rng in spawn_generators(2024, 25):
        process = BipsProcess(herd, 0, branching=CONTACTS_PER_DAY, seed=rng)
        result = run_process(process, max_rounds=ROUND_CAP, raise_on_timeout=True)
        times.append(result.completion_time)
    stats = summarize(times)
    print(f"  whole herd infected in every run: mean {stats.mean:.1f} days "
          f"(min {stats.minimum:.0f}, max {stats.maximum:.0f})")

    # Endemic level after the wave: run on and watch the infected count.
    process = BipsProcess(herd, 0, branching=CONTACTS_PER_DAY, seed=7)
    levels = [process.step().active_count for _ in range(100)]
    print(f"  endemic level over days 50-100: "
          f"{np.mean(levels[50:]) / n:.0%} of the herd infected on a given day\n")

    # --- ordinary index case (plain SIS) -------------------------------
    print("Scenario B: ordinary index case, everyone can recover (plain SIS)")
    table = Table(["outcome", "runs", "fraction", "mean days"], float_format="%.2f")
    extinct_times, took_off = [], 0
    for rng in spawn_generators(4048, TRIALS):
        process = SisProcess(herd, 0, branching=CONTACTS_PER_DAY, seed=rng)
        result = run_process(process, max_rounds=ROUND_CAP)
        if result.extinct:
            extinct_times.append(result.rounds_run)
        else:
            took_off += 1
    extinct = len(extinct_times)
    low, high = proportion_ci(extinct, TRIALS)
    table.add_row(
        [
            "outbreak died out",
            extinct,
            extinct / TRIALS,
            summarize(extinct_times).mean if extinct_times else None,
        ]
    )
    table.add_row(["outbreak took off", took_off, took_off / TRIALS, None])
    print(table.render())
    print(f"  95% CI for extinction probability: [{low:.2f}, {high:.2f}]")

    print(
        "\nThe persistent carrier removes the early-extinction escape hatch —\n"
        "exactly the property the paper encodes as 'v in A_t for all t' and\n"
        "which Theorem 2 turns into guaranteed O(log n / (1-lambda)^3) spread."
    )


if __name__ == "__main__":
    main()
