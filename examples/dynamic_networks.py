#!/usr/bin/env python
"""COBRA on a network that changes under its feet.

Real deployment targets of gossip protocols — peer-to-peer overlays,
vehicular networks, wireless meshes — churn continuously.  This example
runs COBRA with branching 2 on a 512-vertex random 8-regular graph that
is re-sampled at different rates (every round / every 4 rounds /
never) and compares the cover times: the logarithmic behaviour the
paper proves for static expanders is robust to total churn.

It also shows a custom provider: a network that *degrades* mid-run,
switching from an expander to a ring of cliques at round 6 — COBRA
slows down exactly when the spectral gap collapses.

Run:  python examples/dynamic_networks.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro._rng import spawn_generators
from repro.analysis.tables import Table
from repro.core.dynamic import DynamicCobraProcess, EvolvingRegularGraph
from repro.core.runner import run_process

N, R, SAMPLES = 512, 8, 15


def churn_comparison() -> None:
    table = Table(["regime", "mean cover", "min", "max"], float_format="%.1f")
    for period, label in ((1, "fresh graph every round"),
                          (4, "re-sampled every 4 rounds"),
                          (10**9, "static")):
        times = []
        for replica, rng in enumerate(spawn_generators((42, period % 997), SAMPLES)):
            provider = EvolvingRegularGraph(N, R, period=period, seed=(7, period % 997, replica))
            process = DynamicCobraProcess(provider, 0, branching=2.0, seed=rng)
            result = run_process(process, raise_on_timeout=True)
            times.append(result.completion_time)
        table.add_row([label, float(np.mean(times)), min(times), max(times)])
    print(f"COBRA k=2 on a churning {R}-regular graph, n={N} ({SAMPLES} runs each):\n")
    print(table.render())


def degradation_scenario() -> None:
    expander = graphs.random_regular(N, R, seed=100)
    clustered = graphs.ring_of_cliques(N // 8, 8)  # poor expander, same n

    def degrading_provider(round_index: int):
        return expander if round_index <= 6 else clustered

    print("\nNetwork degradation at round 6 (expander -> ring of cliques):")
    process = DynamicCobraProcess(degrading_provider, 0, branching=2.0, seed=5)
    result = run_process(process, record_trace=True, raise_on_timeout=True)
    healthy = graphs.random_regular(N, R, seed=100)
    static = DynamicCobraProcess(lambda t: healthy, 0, branching=2.0, seed=5)
    static_result = run_process(static, raise_on_timeout=True)
    print(f"  static expander cover : {static_result.completion_time} rounds")
    print(f"  degrading network     : {result.completion_time} rounds")
    growth = [record.cumulative_count for record in result.trace[:12]]
    print(f"  coverage after rounds 1..12: {growth}")
    print(
        "  (growth stalls once the snapshot loses its spectral gap — the\n"
        "   (1 - lambda^2) factor of Lemma 1 in action, live)"
    )


def main() -> None:
    churn_comparison()
    degradation_scenario()


if __name__ == "__main__":
    main()
