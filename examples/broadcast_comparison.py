#!/usr/bin/env python
"""Compare broadcast protocols: COBRA vs push vs push–pull vs random walks.

The paper motivates COBRA as a protocol that propagates information
fast while *limiting the number of transmissions per vertex per step*.
This example puts four protocols on the same 1024-vertex expander and
reports rounds-to-cover together with the message budget each needed —
the trade-off the paper's introduction describes.

Run:  python examples/broadcast_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CobraProcess,
    PushProcess,
    PushPullProcess,
    RandomWalkProcess,
    graphs,
    run_process,
)
from repro._rng import spawn_generators
from repro.analysis.tables import Table
from repro.core.metrics import summarize_trace

N, R, SAMPLES = 1024, 8, 10


def measure(name: str, build, table: Table) -> None:
    rounds, totals, peaks = [], [], []
    for rng in spawn_generators((0xC0B7A, len(name)), SAMPLES):
        result = run_process(build(rng), record_trace=True, raise_on_timeout=True)
        summary = summarize_trace(result.trace)
        rounds.append(result.completion_time)
        totals.append(summary.total_transmissions)
        peaks.append(summary.peak_transmissions_per_round)
    table.add_row(
        [
            name,
            float(np.mean(rounds)),
            float(np.mean(totals)),
            float(np.mean(totals)) / N,
            float(np.mean(peaks)),
        ]
    )


def main() -> None:
    print(f"Broadcast from one vertex of a random {R}-regular graph on {N} vertices")
    print(f"({SAMPLES} runs per protocol; means reported)\n")
    graph = graphs.random_regular(N, R, seed=3)

    table = Table(
        ["protocol", "rounds", "total msgs", "msgs/vertex", "peak msgs/round"],
        float_format="%.1f",
    )
    measure("COBRA k=2", lambda rng: CobraProcess(graph, 0, branching=2, seed=rng), table)
    measure("COBRA k=1.25", lambda rng: CobraProcess(graph, 0, branching=1.25, seed=rng), table)
    measure("COBRA k=4", lambda rng: CobraProcess(graph, 0, branching=4, seed=rng), table)
    measure("push", lambda rng: PushProcess(graph, 0, seed=rng), table)
    measure("push-pull", lambda rng: PushPullProcess(graph, 0, seed=rng), table)
    measure(
        "8 random walks",
        lambda rng: RandomWalkProcess(graph, 0, n_walkers=8, seed=rng),
        table,
    )
    print(table.render())
    print(
        "\nReading guide: COBRA k=2 matches push's round count while its"
        "\npeak per-round load stays bounded by the token population;"
        "\nwalks (no branching) pay orders of magnitude more rounds."
    )


if __name__ == "__main__":
    main()
