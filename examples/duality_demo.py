#!/usr/bin/env python
"""Theorem 4 live: COBRA hitting tails equal BIPS non-membership, exactly.

The paper's key analytical tool is a duality between the two processes:

    P(Hit_C(v) > t | C_0 = C)  =  P(C ∩ A_t = ∅ | A_0 = {v})

This example evolves the *exact* subset distributions of both processes
on the Petersen graph and prints the two sides next to each other for
t = 0..12 — they agree to machine precision, for integer and fractional
branching factors alike.  It then repeats the check on an irregular
graph (a star), where the identity also holds even though the paper
only states it for regular graphs.

Run:  python examples/duality_demo.py
"""

from __future__ import annotations

from repro import graphs
from repro.analysis.tables import Table
from repro.exact.duality import duality_series

T_MAX = 12


def show(graph, start, source, branching: float) -> None:
    cobra_side, bips_side = duality_series(
        graph, start, source, T_MAX, branching=branching
    )
    print(
        f"\n{graph.name}:  C = {start},  v = {source},  k = {branching}"
    )
    table = Table(
        ["t", "COBRA  P(Hit_C(v) > t)", "BIPS  P(C cap A_t = 0)", "|difference|"],
        float_format="%.12f",
    )
    for t in range(T_MAX + 1):
        table.add_row(
            [t, cobra_side[t], bips_side[t], abs(cobra_side[t] - bips_side[t])]
        )
    print(table.render())


def main() -> None:
    petersen = graphs.petersen()
    show(petersen, [0], 7, branching=2.0)
    show(petersen, [0, 3, 8], 5, branching=1.5)

    # Beyond the paper: the identity holds on irregular graphs too.
    star = graphs.star(7)
    show(star, [1], 0, branching=2.0)

    print(
        "\nEvery |difference| above is float rounding noise: the duality is an\n"
        "exact identity at every finite t, which is what lets the paper\n"
        "transfer Theorem 2 (BIPS infection time) to Theorem 1 (COBRA cover)."
    )


if __name__ == "__main__":
    main()
