"""The default NumPy backend: the kernels' original ops, verbatim.

Every method is the literal NumPy call the batch kernels performed
before the backend abstraction existed — including the ``out=``
in-place forms and the shared bit-slicing
:func:`~repro.graphs.base.uniform_draws` — so engines running on this
backend are bit-identical to the pre-backend implementation at every
``jobs`` count (asserted by the golden parity tests) and keep their
allocation-lean property.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import Backend

_DTYPES = {"bool": np.bool_, "int64": np.int64}


class NumpyBackend(Backend):
    """Reference backend over host NumPy arrays (the default)."""

    spec = "numpy"
    is_numpy = True

    def asarray(self, array: Any, dtype: str | None = None) -> np.ndarray:
        return np.asarray(array, dtype=_DTYPES[dtype] if dtype else None)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def zeros(self, shape: Any, dtype: str) -> np.ndarray:
        return np.zeros(shape, dtype=_DTYPES[dtype])

    def empty(self, shape: Any, dtype: str) -> np.ndarray:
        return np.empty(shape, dtype=_DTYPES[dtype])

    def full(self, shape: Any, value: Any, dtype: str) -> np.ndarray:
        return np.full(shape, value, dtype=_DTYPES[dtype])

    def arange(self, stop: int) -> np.ndarray:
        return np.arange(stop, dtype=np.int64)

    def tile(self, array: Any, reps: int) -> np.ndarray:
        return np.tile(array, reps)

    def repeat(self, array: Any, reps: int) -> np.ndarray:
        return np.repeat(array, reps)

    def ravel(self, array: np.ndarray) -> np.ndarray:
        return array.ravel()

    def take(self, array: np.ndarray, indices: Any, out: Any = None) -> np.ndarray:
        if out is not None:
            np.take(array, indices, out=out)
            return out
        return array[indices]

    def put_true(self, flat: np.ndarray, indices: Any) -> np.ndarray:
        flat[indices] = True
        return flat

    def or_at(self, flat: np.ndarray, indices: Any, values: Any) -> np.ndarray:
        flat[indices] |= values
        return flat

    def fill_false(self, array: np.ndarray) -> np.ndarray:
        array[...] = False
        return array

    def any_along_last(self, array: np.ndarray, out: Any = None) -> np.ndarray:
        return np.any(array, axis=-1, out=out)

    def sum_along_last(self, array: np.ndarray, out: Any = None) -> np.ndarray:
        if out is not None:
            np.sum(array, axis=-1, out=out)
            return out
        return array.sum(axis=-1)

    def greater(self, a: Any, b: Any, out: Any = None) -> np.ndarray:
        return np.greater(a, b, out=out)

    def cumsum(self, array: Any, axis: int) -> np.ndarray:
        return np.cumsum(array, axis=axis)

    def max_scalar(self, array: np.ndarray) -> int:
        return int(array.max())

    def any_scalar(self, array: np.ndarray) -> bool:
        return bool(array.any())

    def flatnonzero(self, array: np.ndarray) -> np.ndarray:
        return np.flatnonzero(array)

    def bincount(self, array: np.ndarray, minlength: int) -> np.ndarray:
        return np.bincount(array, minlength=minlength)

    def random(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.random(count)

    def uniform_draws(
        self, rng: np.random.Generator, bound: int, count: int, width: int
    ) -> np.ndarray:
        from repro.graphs.base import uniform_draws

        return uniform_draws(rng, bound, count, width)

    def graph_indices(self, graph: Any) -> np.ndarray:
        # Host arrays are already "resident": no copy, no cache entry
        # (int32 storage upcasts; the default int64 passes through).
        return np.asarray(graph.indices, dtype=np.int64)
