"""Pluggable array backends for the batch ensemble engines.

The v2 batch kernels in :mod:`repro.core.batch` evolve ``(R, n)``
boolean matrices with a small, fixed vocabulary of array operations —
``take``-style flat gathers, ``any``/``sum`` reductions along the last
axis, flat boolean scatters, ``cumsum``, and uniform RNG draws.  This
package abstracts exactly that vocabulary behind the :class:`Backend`
protocol so the same kernels run on any array library that provides
it:

* :class:`~repro.backends.numpy_backend.NumpyBackend` — the default.
  Every operation is the literal NumPy call the kernels made before
  the abstraction existed (including the ``out=`` in-place forms), so
  results are **bit-identical** to the pre-backend engines and the
  allocation-lean property is preserved.
* :class:`~repro.backends.numba_backend.NumbaBackend` — the compiled
  CPU tier (spec ``"numba"``, the ``cobra-repro[numba]`` extra).  Same
  host arrays and op vocabulary as the reference, but the batch/sparse
  entry points swap in the Numba-JIT shard kernels from
  :mod:`repro.core.compiled`; bit-identical to the reference for a
  fixed seed, several times faster on the dense ladder cells.
* :class:`~repro.backends.array_api.ArrayApiBackend` — a generic
  implementation over any array-API-compatible namespace (NumPy 2.x
  itself, CuPy, or anything wrapped by ``array_api_compat``).  GPU
  namespaces are gated on import: requesting ``"cupy"`` on a machine
  without CuPy raises a clear :class:`~repro.errors.BackendError`
  instead of an ImportError at kernel depth.

**The seed contract survives the backend choice.**  All randomness is
drawn from the host NumPy ``Generator`` (via the shared
:func:`~repro.graphs.base.uniform_draws` bit-slicing path) and then
transferred to the device, so for a fixed seed and shard size every
backend consumes the identical random stream.  Deterministic backends
therefore produce bit-identical *results*, not merely equal
distributions — the parity tests assert this for the array-API backend
over the NumPy namespace.

Backend selection mirrors the ``jobs`` convention in
:mod:`repro.parallel`: every batch entry point takes ``backend=``
(``None`` = the process-wide default, a spec string, or a
:class:`Backend` instance), the CLI exposes ``--backend``, and the
``REPRO_BACKEND`` environment variable seeds the process-wide default.
Backends pickle as their spec string, so shipping one to a spawn
worker re-resolves it locally instead of serialising device state.
"""

from __future__ import annotations

import importlib
import os

from repro.errors import BackendError
from repro.backends.base import Backend
from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "Backend",
    "NumpyBackend",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
]

#: Spec string of the process-wide default backend.  Seeded from the
#: ``REPRO_BACKEND`` environment variable so CI can run the whole batch
#: suite through an alternate backend without touching call sites.
_default_spec: str = os.environ.get("REPRO_BACKEND", "numpy")

#: Resolved backends, keyed by spec string.  Backends are stateless
#: apart from small device-side caches (e.g. graph indices), so one
#: instance per spec per process is both safe and what keeps those
#: caches effective.
_resolved: dict[str, Backend] = {}


def _build_backend(spec: str) -> Backend:
    """Construct the backend a spec string names (uncached)."""
    from repro.backends.array_api import ArrayApiBackend

    if spec == "numpy":
        return NumpyBackend()
    if spec == "numba":
        # Import lazily: the numba backend pulls in the compiled-kernel
        # module, and its constructor enforces availability (numba
        # installed, or the explicit pure-Python fallback opt-in).
        from repro.backends.numba_backend import NumbaBackend

        return NumbaBackend()
    if spec == "cupy":
        try:
            cupy = importlib.import_module("cupy")
        except ImportError as error:
            raise BackendError(
                "backend 'cupy' requested but CuPy is not installed "
                f"({error}); install cupy or use backend='numpy'"
            ) from None
        return ArrayApiBackend(cupy, spec="cupy")
    if spec.startswith("array-api:"):
        module_name = spec.partition(":")[2]
        if not module_name:
            raise BackendError(
                "backend spec 'array-api:' needs a module name, "
                "e.g. 'array-api:numpy'"
            )
        try:
            namespace = importlib.import_module(module_name)
        except ImportError as error:
            raise BackendError(
                f"backend {spec!r} requested but {module_name!r} is not "
                f"importable ({error})"
            ) from None
        return ArrayApiBackend(namespace, spec=spec)
    raise BackendError(
        f"unknown backend {spec!r}; expected 'numpy', 'numba', 'cupy', "
        "'array-api:<module>', or a Backend instance"
    )


def resolve_backend(backend: "str | Backend | None" = None) -> Backend:
    """Normalise a ``backend`` argument to a :class:`Backend` instance.

    ``None`` resolves to the process-wide default (see
    :func:`set_default_backend`), a string is treated as a spec
    (``"numpy"``, ``"cupy"``, ``"array-api:<module>"``), and an
    existing :class:`Backend` is returned unchanged.  Resolved
    backends are cached per spec, so repeated resolution is free and
    device-side caches are shared across calls.
    """
    if backend is None:
        backend = _default_spec
    if isinstance(backend, Backend):
        return backend
    if not isinstance(backend, str):
        raise BackendError(
            f"backend must be a spec string, a Backend, or None; "
            f"got {type(backend).__name__}"
        )
    if backend not in _resolved:
        _resolved[backend] = _build_backend(backend)
    return _resolved[backend]


def default_backend() -> Backend:
    """The backend used when ``backend=None`` is passed (or defaulted)."""
    return resolve_backend(_default_spec)


def default_backend_spec() -> str:
    """The current default's spec string, *without* resolving it.

    Unlike :func:`default_backend` this never validates: the default
    may carry an unvalidated ``REPRO_BACKEND`` value that only fails at
    first use.  Campaign workers use this to inherit the parent's
    default across ``spawn`` (worker processes re-import the package,
    re-seeding the default from the environment, so the parent's
    ``--backend`` choice must travel in the worker context like
    ``jobs`` and ``cache_dir`` do).
    """
    return _default_spec


def set_default_backend(backend: "str | Backend", *, validate: bool = True) -> str:
    """Set the process-wide default backend; returns the previous spec.

    The CLI's global ``--backend`` flag calls this once at startup so
    every ensemble measured by an experiment inherits the setting,
    exactly like ``--jobs`` and :func:`repro.parallel.set_default_jobs`.
    The spec is validated (and the backend constructed) eagerly so a
    typo or missing GPU library fails at the flag, not mid-experiment.

    ``validate=False`` stores a spec string without resolving it.  The
    returned *previous* spec may never have been validated (it can come
    straight from the ``REPRO_BACKEND`` environment variable), so
    restore-style callers must use this mode — re-validating an
    inherited-but-broken spec on the way *out* would turn a successful
    command into a crash.  An unvalidated default still fails with the
    same clear error at first use.
    """
    global _default_spec
    previous = _default_spec
    if isinstance(backend, Backend):
        # Setting an *instance* as the default registers it under its
        # spec so ``resolve_backend(None)`` returns it.  A spec that
        # already names a different implementation is refused (the
        # same mismatch ``Backend.__reduce__`` guards against): the
        # cached backend would otherwise silently win and the caller's
        # instance would never be used.
        cached = _resolved.get(backend.spec)
        if cached is not None and type(cached) is not type(backend):
            raise BackendError(
                f"backend instance of type {type(backend).__name__} carries "
                f"spec {backend.spec!r}, which already names a "
                f"{type(cached).__name__}; give the custom backend a unique "
                "spec"
            )
        _resolved[backend.spec] = backend
        _default_spec = backend.spec
        return previous
    if validate:
        resolved = resolve_backend(backend)
        _default_spec = resolved.spec
        _resolved.setdefault(resolved.spec, resolved)
    else:
        if not isinstance(backend, str):
            raise BackendError(
                f"backend must be a spec string or a Backend, "
                f"got {type(backend).__name__}"
            )
        _default_spec = backend
    return previous


def available_backends() -> list[str]:
    """Spec strings of the backends importable in this environment.

    Always contains ``"numpy"`` and ``"array-api:numpy"`` (NumPy 2.x is
    its own array-API namespace); ``"cupy"`` and ``"numba"`` appear only
    when the corresponding package is installed (``"numba"`` also under
    the explicit ``REPRO_COMPILED_FALLBACK=1`` testing opt-in).  Used by
    the backend benchmark and the CI matrix to skip gracefully instead
    of failing on machines without a GPU stack or the numba extra.
    """
    specs = ["numpy", "array-api:numpy"]
    for optional in ("cupy", "numba"):
        try:
            importlib.import_module(optional)
        except ImportError:
            if optional == "numba":
                from repro.core.compiled import fallback_enabled

                if fallback_enabled():
                    specs.append(optional)
            continue
        specs.append(optional)
    return specs
