"""The :class:`Backend` protocol: the array vocabulary of the batch kernels.

A backend supplies exactly the operations the v2 batch kernels (and
the regular-degree ``sample_neighbors`` fast path) perform per round:
buffer creation, flat gathers, last-axis reductions, flat boolean
scatters, ``cumsum``, and RNG draws.  Everything else the kernels do —
basic slicing, boolean-mask compaction, in-place logical updates —
happens through the arrays' own operators, so a conforming backend's
arrays must support:

* basic-indexing ``__setitem__`` (slices, integers, ``...``);
* integer-array and boolean-mask ``__getitem__`` / ``__setitem__``;
* elementwise arithmetic, comparison, and bitwise operators
  (including the in-place forms ``|=`` / ``+=`` on views);
* view-semantics reshape on contiguous arrays (``ravel`` must return
  a writable view sharing the source's memory).

NumPy, CuPy, and PyTorch tensors all satisfy these; strictly-minimal
array-API namespaces (``array_api_strict``) do not, which is why the
generic implementation is documented as requiring the mutable
extensions rather than the bare standard.

Randomness is deliberately **not** abstracted to the device: both RNG
hooks draw from the host NumPy generator and transfer, which is what
keeps results bit-identical across backends for a fixed seed (see the
package docstring).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.base import Graph

#: How many graphs' device-side index arrays a backend keeps cached.
#: Kernels resolve the same graph once per shard per round-loop, so a
#: tiny cache amortises the host-to-device copy across an entire
#: ensemble; the bound keeps long sweeps over many graphs from pinning
#: device memory.
_GRAPH_CACHE_SIZE = 4


class Backend(ABC):
    """Abstract array backend behind the batch ensemble kernels.

    Subclasses implement the operation vocabulary below; the base
    class provides spec-based pickling (workers re-resolve the backend
    locally rather than serialising device state) and the per-backend
    cache of device-resident graph index arrays.

    ``dtype`` arguments are the strings ``"bool"`` or ``"int64"``;
    backends map them to their native dtype objects.  Operations with
    an ``out=`` parameter must *return* the result; in-place-capable
    backends write through ``out`` and return it, pure-functional ones
    ignore ``out`` and return a fresh array — kernels always bind the
    returned value, so both behaviours compose.
    """

    #: Spec string that re-resolves to an equivalent backend
    #: (``"numpy"``, ``"cupy"``, ``"array-api:<module>"``).
    spec: str = "numpy"

    #: True for backends whose arrays *are* host ``numpy.ndarray``s and
    #: whose results are bit-identical to the NumPy reference (the
    #: reference itself and the numba tier, which evolves plain host
    #: arrays through compiled loops).  The graph sampling fast path,
    #: the irregular-graph gate, and the host memory budget all key on
    #: this flag.
    is_numpy: bool = False

    #: True when the batch/sparse entry points should swap in the
    #: compiled (Numba-JIT) shard kernels from
    #: :mod:`repro.core.compiled` instead of the reference kernels.
    #: The backend instance still travels in the shard context (it
    #: pickles as its spec), but the compiled kernels only use it for
    #: graph residency — the round loops are jitted host code.
    provides_compiled_kernels: bool = False

    def __init__(self) -> None:
        self._graph_cache: dict[int, tuple[Any, Any]] = {}

    # -- identity / transport ------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable backend name (the spec string)."""
        return self.spec

    def __reduce__(self):
        # Backends ship to pool workers as their spec string and
        # re-resolve locally.  That only round-trips faithfully when
        # the spec actually names *this* implementation — a custom
        # subclass that inherited the default spec would silently come
        # back as the NumPy reference in every worker, so refuse to
        # pickle rather than swap backends behind the caller's back.
        from repro.backends import resolve_backend
        from repro.errors import BackendError

        try:
            resolved = resolve_backend(self.spec)
        except Exception as error:
            raise BackendError(
                f"backend {type(self).__name__}({self.spec!r}) cannot be "
                f"shipped to worker processes: its spec does not re-resolve "
                f"({error}); give it a resolvable spec or run with jobs=1"
            ) from None
        if type(resolved) is not type(self):
            raise BackendError(
                f"backend {type(self).__name__} pickles by spec, but "
                f"{self.spec!r} re-resolves to {type(resolved).__name__}; "
                "override `spec` with a value that names this backend or "
                "run with jobs=1"
            )
        return (resolve_backend, (self.spec,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"

    @abstractmethod
    def asarray(self, array: Any, dtype: str | None = None) -> Any:
        """Device array for host data (no copy when already resident)."""

    @abstractmethod
    def to_numpy(self, array: Any) -> np.ndarray:
        """Host ``numpy.ndarray`` view/copy of a device array."""

    # -- creation ------------------------------------------------------

    @abstractmethod
    def zeros(self, shape: Any, dtype: str) -> Any:
        """Zero-filled array."""

    @abstractmethod
    def empty(self, shape: Any, dtype: str) -> Any:
        """Uninitialised (or zero-filled, for functional backends) array."""

    @abstractmethod
    def full(self, shape: Any, value: Any, dtype: str) -> Any:
        """Constant-filled array."""

    @abstractmethod
    def arange(self, stop: int) -> Any:
        """``[0, stop)`` as int64."""

    @abstractmethod
    def tile(self, array: Any, reps: int) -> Any:
        """``reps`` concatenated copies of a 1-D array."""

    @abstractmethod
    def repeat(self, array: Any, reps: int) -> Any:
        """Each element of a 1-D array repeated ``reps`` times."""

    # -- shape / counting ----------------------------------------------

    @abstractmethod
    def ravel(self, array: Any) -> Any:
        """Flat **view** of a contiguous array (must share memory)."""

    def size(self, array: Any) -> int:
        """Total number of elements (namespace-agnostic)."""
        total = 1
        for extent in array.shape:
            total *= int(extent)
        return total

    # -- gather / scatter ----------------------------------------------

    @abstractmethod
    def take(self, array: Any, indices: Any, out: Any = None) -> Any:
        """Flat gather ``array[indices]`` for indices of any shape."""

    @abstractmethod
    def put_true(self, flat: Any, indices: Any) -> Any:
        """Flat boolean scatter ``flat[indices] = True``; returns ``flat``."""

    @abstractmethod
    def or_at(self, flat: Any, indices: Any, values: Any) -> Any:
        """``flat[indices] |= values`` for unique indices; returns ``flat``."""

    @abstractmethod
    def fill_false(self, array: Any) -> Any:
        """Reset a boolean buffer to all-False; returns the buffer."""

    # -- reductions / elementwise --------------------------------------

    @abstractmethod
    def any_along_last(self, array: Any, out: Any = None) -> Any:
        """Boolean ``any`` over the trailing axis."""

    @abstractmethod
    def sum_along_last(self, array: Any, out: Any = None) -> Any:
        """Int64 sum over the trailing axis."""

    @abstractmethod
    def greater(self, a: Any, b: Any, out: Any = None) -> Any:
        """Elementwise ``a > b`` (bool)."""

    @abstractmethod
    def cumsum(self, array: Any, axis: int) -> Any:
        """Cumulative sum along ``axis``.

        Consumed by the trace-aggregation path
        (:meth:`~repro.core.batch.BatchTraces.cumulative_counts`)
        rather than the round loop.
        """

    @abstractmethod
    def max_scalar(self, array: Any) -> int:
        """Largest element as a host ``int``."""

    @abstractmethod
    def any_scalar(self, array: Any) -> bool:
        """Whether any element is truthy, as a host ``bool``."""

    @abstractmethod
    def flatnonzero(self, array: Any) -> Any:
        """Indices of nonzero elements of the flattened array (int64)."""

    @abstractmethod
    def bincount(self, array: Any, minlength: int) -> Any:
        """Occurrence counts of non-negative ints, padded to ``minlength``."""

    # -- randomness (host-drawn: the seed contract) --------------------

    @abstractmethod
    def random(self, rng: np.random.Generator, count: int) -> Any:
        """``count`` uniform floats in ``[0, 1)`` drawn from the host rng."""

    @abstractmethod
    def uniform_draws(
        self, rng: np.random.Generator, bound: int, count: int, width: int
    ) -> Any:
        """``(count, width)`` host-drawn uniform int64 draws in ``[0, bound)``.

        Must consume the host generator exactly like
        :func:`repro.graphs.base.uniform_draws`, so every backend sees
        the same stream for the same seed.
        """

    # -- graph residency -----------------------------------------------

    def graph_indices(self, graph: "Graph") -> Any:
        """Device-resident copy of ``graph.indices``, cached per graph.

        The cache is keyed by object identity and bounded (FIFO, size
        :data:`_GRAPH_CACHE_SIZE`); entries hold a reference to the
        graph so an id is never reused while its row is alive.
        """
        key = id(graph)
        hit = self._graph_cache.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        # Upcast narrow (int32) storage once at residency time so the
        # kernels see the same int64 vocabulary on every backend.
        device = self.asarray(np.asarray(graph.indices, dtype=np.int64))
        if len(self._graph_cache) >= _GRAPH_CACHE_SIZE:
            self._graph_cache.pop(next(iter(self._graph_cache)))
        self._graph_cache[key] = (graph, device)
        return device
