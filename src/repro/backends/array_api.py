"""Generic backend over an array-API-compatible namespace.

Targets namespaces that implement the array API standard *plus* the
mutable extensions NumPy and CuPy share (fancy-index ``__setitem__``,
in-place operators on views, view-semantics reshape of contiguous
arrays) — see :mod:`repro.backends.base` for the exact contract.
NumPy 2.x itself qualifies, which is what the CI smoke path runs; CuPy
is the intended GPU target and resolves through the same class.

Operations that take ``out=`` are computed functionally and then
copied into ``out`` when one is given, so the kernels' aliasing
assumptions (writing through a flat view updates the parent buffer)
hold on every conforming namespace at the cost of one temporary per
call.  RNG draws happen on the host generator and transfer via
``asarray``, preserving the cross-backend seed contract.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import Backend
from repro.errors import BackendError


def _dtype_of(namespace: Any, name: str) -> Any:
    for attribute in (name, name + "_"):
        dtype = getattr(namespace, attribute, None)
        if dtype is not None:
            return dtype
    raise BackendError(
        f"array namespace {namespace.__name__!r} exposes no {name!r} dtype"
    )


class ArrayApiBackend(Backend):
    """Backend over any mutable array-API namespace (NumPy 2.x, CuPy)."""

    is_numpy = False

    def __init__(self, namespace: Any, *, spec: str | None = None) -> None:
        super().__init__()
        for required in ("asarray", "zeros", "take", "any", "reshape", "nonzero"):
            if not hasattr(namespace, required):
                raise BackendError(
                    f"{getattr(namespace, '__name__', namespace)!r} is not an "
                    f"array-API namespace (missing {required!r})"
                )
        self._xp = namespace
        self.spec = spec or f"array-api:{namespace.__name__}"
        self._bool = _dtype_of(namespace, "bool")
        self._int64 = _dtype_of(namespace, "int64")

    def _dtype(self, name: str) -> Any:
        return self._bool if name == "bool" else self._int64

    # -- transport -----------------------------------------------------

    def asarray(self, array: Any, dtype: str | None = None) -> Any:
        return self._xp.asarray(array, dtype=self._dtype(dtype) if dtype else None)

    def to_numpy(self, array: Any) -> np.ndarray:
        if hasattr(array, "get"):  # CuPy device arrays
            return np.asarray(array.get())
        return np.asarray(array)

    # -- creation ------------------------------------------------------

    def zeros(self, shape: Any, dtype: str) -> Any:
        return self._xp.zeros(shape, dtype=self._dtype(dtype))

    def empty(self, shape: Any, dtype: str) -> Any:
        return self._xp.empty(shape, dtype=self._dtype(dtype))

    def full(self, shape: Any, value: Any, dtype: str) -> Any:
        return self._xp.full(shape, value, dtype=self._dtype(dtype))

    def arange(self, stop: int) -> Any:
        return self._xp.arange(stop, dtype=self._int64)

    def tile(self, array: Any, reps: int) -> Any:
        return self._xp.tile(array, (reps,))

    def repeat(self, array: Any, reps: int) -> Any:
        return self._xp.repeat(array, reps)

    # -- shape ---------------------------------------------------------

    def ravel(self, array: Any) -> Any:
        # View-semantics reshape on contiguous buffers is part of the
        # backend contract; kernels write through the result.
        return self._xp.reshape(array, (-1,))

    # -- gather / scatter ----------------------------------------------

    def take(self, array: Any, indices: Any, out: Any = None) -> Any:
        # The standard's ``take`` is 1-D-indices only: flatten, gather,
        # restore the index shape.
        gathered = self._xp.take(array, self._xp.reshape(indices, (-1,)))
        gathered = self._xp.reshape(gathered, indices.shape)
        if out is not None:
            out[...] = gathered
            return out
        return gathered

    def put_true(self, flat: Any, indices: Any) -> Any:
        flat[indices] = True
        return flat

    def or_at(self, flat: Any, indices: Any, values: Any) -> Any:
        flat[indices] |= values
        return flat

    def fill_false(self, array: Any) -> Any:
        array[...] = False
        return array

    # -- reductions / elementwise --------------------------------------

    def any_along_last(self, array: Any, out: Any = None) -> Any:
        result = self._xp.any(array, axis=-1)
        if out is not None:
            out[...] = result
            return out
        return result

    def sum_along_last(self, array: Any, out: Any = None) -> Any:
        result = self._xp.sum(array, axis=-1, dtype=self._int64)
        if out is not None:
            out[...] = result
            return out
        return result

    def greater(self, a: Any, b: Any, out: Any = None) -> Any:
        result = a > b
        if out is not None:
            out[...] = result
            return out
        return result

    def cumsum(self, array: Any, axis: int) -> Any:
        cumulative = getattr(self._xp, "cumulative_sum", None)
        if cumulative is not None:
            return cumulative(array, axis=axis)
        return self._xp.cumsum(array, axis=axis)

    def max_scalar(self, array: Any) -> int:
        return int(self._xp.max(array))

    def any_scalar(self, array: Any) -> bool:
        return bool(self._xp.any(array))

    def flatnonzero(self, array: Any) -> Any:
        return self._xp.nonzero(self._xp.reshape(array, (-1,)))[0]

    def bincount(self, array: Any, minlength: int) -> Any:
        native = getattr(self._xp, "bincount", None)
        if native is not None:
            return native(array, minlength=minlength)
        # Minimal namespaces: count on the host, transfer back.
        counts = np.bincount(self.to_numpy(array), minlength=minlength)
        return self.asarray(counts, dtype="int64")

    # -- randomness (host-drawn) ---------------------------------------

    def random(self, rng: np.random.Generator, count: int) -> Any:
        return self._xp.asarray(rng.random(count))

    def uniform_draws(
        self, rng: np.random.Generator, bound: int, count: int, width: int
    ) -> Any:
        from repro.graphs.base import uniform_draws

        return self._xp.asarray(uniform_draws(rng, bound, count, width))
