"""The numba backend: host NumPy arrays, compiled shard kernels.

:class:`NumbaBackend` is deliberately thin.  It *is* the NumPy
reference backend as far as the array vocabulary goes (every op is
inherited verbatim, so anything that runs host-side — trace recording,
compaction bookkeeping, the odd reference-kernel call — is
bit-identical), but it sets :attr:`~repro.backends.base.Backend.
provides_compiled_kernels`, which makes the batch and sparse entry
points swap the reference shard kernels for the Numba-JIT round loops
in :mod:`repro.core.compiled`.

``is_numpy`` stays True: the compiled tier evolves plain host
``numpy.ndarray`` state and host-samples through the exact
``uniform_draws`` stream, so the irregular-graph gate does not apply,
the dense-state memory budget does, and ``sample_neighbors`` keeps its
zero-indirection host path.  The one vocabulary difference is
``graph_indices``: the compiled kernels gather CSR neighbours inline,
so the backend keeps the base class's *cached* upcast-at-residency
behaviour (int32 storage is upcast to int64 once per graph, not once
per shard round-loop) instead of the reference backend's uncached
pass-through.

Construction is where availability is enforced: requesting
``backend="numba"`` without numba installed raises
:class:`~repro.errors.BackendError` up front (install the
``cobra-repro[numba]`` extra), unless the pure-Python kernel fallback
has been explicitly opted into via ``REPRO_COMPILED_FALLBACK=1``
(testing only).  Spawn workers re-resolve the spec string and hit the
same gate, so a pool can never silently degrade.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.numpy_backend import NumpyBackend
from repro.errors import BackendError


class NumbaBackend(NumpyBackend):
    """Host-array backend that routes shard loops to compiled kernels."""

    spec = "numba"
    provides_compiled_kernels = True

    # Cached upcast-at-residency (see module docstring); NumpyBackend's
    # uncached override would re-upcast int32 indices on every call.
    graph_indices = Backend.graph_indices

    def __init__(self) -> None:
        from repro.core.compiled import NUMBA_AVAILABLE, compiled_available

        if not compiled_available():
            from repro.core.compiled import missing_numba_message

            raise BackendError(missing_numba_message())
        super().__init__()
        self.jit_enabled = NUMBA_AVAILABLE
