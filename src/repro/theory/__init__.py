"""Closed-form bounds and exact one-step expectations from the paper."""

from repro.theory.bounds import (
    cover_time_bound,
    dutta_cover_bound,
    fractional_growth_bound,
    growth_lower_bound,
    lemma2_round_budget,
    lemma3_round_budget,
    lemma4_round_budget,
    phase_boundary_size,
    spectral_condition_holds,
)
from repro.theory.growth import (
    expected_next_infected_size,
    growth_bound_ratio,
    minimum_growth_ratio,
)

__all__ = [
    "cover_time_bound",
    "dutta_cover_bound",
    "growth_lower_bound",
    "fractional_growth_bound",
    "lemma2_round_budget",
    "lemma3_round_budget",
    "lemma4_round_budget",
    "phase_boundary_size",
    "spectral_condition_holds",
    "expected_next_infected_size",
    "growth_bound_ratio",
    "minimum_growth_ratio",
]
