"""Exact one-step conditional expectations for BIPS (paper Eq. (3)).

The proof of Lemma 1 starts from the exact identity

``E(|A_{t+1}| | A_t = A) = 1 + Σ_{u ∈ Γ(A) \\ {v}} (1 - (1 - d_A(u)/r)^k)``

(vertices outside the inclusive neighbourhood ``Γ(A)`` contribute 0).
Computing this exactly for arbitrary infected sets lets experiment E5
verify Lemma 1 / Corollary 1 *state by state*, with no Monte-Carlo
noise: the lemma asserts the exact expectation dominates the spectral
lower bound for every infected set on every regular graph.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.core.process import resolve_vertex, resolve_vertex_set, validate_branching
from repro.graphs.base import Graph
from repro.theory.bounds import fractional_growth_bound, growth_lower_bound


def infected_neighbor_counts(graph: Graph, infected_mask: np.ndarray) -> np.ndarray:
    """``d_A(u)``: number of infected neighbours, for every vertex ``u``."""
    infected_mask = np.asarray(infected_mask, dtype=bool)
    if infected_mask.shape != (graph.n_vertices,):
        raise ValueError(
            f"infected_mask must have shape ({graph.n_vertices},), "
            f"got {infected_mask.shape}"
        )
    neighbor_is_infected = infected_mask[graph.indices].astype(np.int64)
    return np.add.reduceat(neighbor_is_infected, graph.indptr[:-1])


def expected_next_infected_size(
    graph: Graph,
    infected: int | Iterable[int] | np.ndarray,
    source: int,
    *,
    branching: float = 2.0,
    replacement: bool = True,
) -> float:
    """Exact ``E(|A_{t+1}| | A_t)`` for BIPS (paper Eq. (3), generalised).

    Parameters
    ----------
    graph:
        Any graph without isolated vertices.
    infected:
        The current infected set ``A_t`` (vertex, iterable, or boolean
        mask).  Must contain the source.
    source:
        The persistent source ``v``.
    branching:
        Sampling factor ``k`` (real ``>= 1``; fractional parts follow
        Corollary 1's one-plus-coin-flip semantics).
    replacement:
        With replacement (paper semantics) or distinct contacts; the
        without-replacement miss probability is hypergeometric,
        ``C(d - d_A, k) / C(d, k)``.
    """
    source = resolve_vertex(graph, source, role="source")
    mask = _as_mask(graph, infected)
    if not mask[source]:
        raise ValueError("the infected set must contain the source")
    mandatory, rho = validate_branching(branching)
    counts = infected_neighbor_counts(graph, mask).astype(np.float64)
    degrees = graph.degrees.astype(np.float64)
    if replacement:
        hit_fraction = counts / degrees
        miss = (1.0 - hit_fraction) ** mandatory
        if rho > 0.0:
            miss = miss * (1.0 - rho * hit_fraction)
    else:
        from repro.core.process import validate_replacement

        validate_replacement(graph, mandatory, rho, replacement)
        uninfected = degrees - counts
        miss = np.ones(graph.n_vertices, dtype=np.float64)
        for draw in range(mandatory):
            miss *= np.clip(uninfected - draw, 0.0, None) / (degrees - draw)
        if rho > 0.0:
            extra_miss = np.clip(uninfected - mandatory, 0.0, None) / (degrees - mandatory)
            miss *= (1.0 - rho) + rho * extra_miss
    probabilities = 1.0 - miss
    probabilities[source] = 1.0
    return float(probabilities.sum())


def growth_bound_ratio(
    graph: Graph,
    infected: int | Iterable[int] | np.ndarray,
    source: int,
    lam: float,
    *,
    branching: float = 2.0,
) -> float:
    """Exact expectation divided by the Lemma 1 / Corollary 1 bound.

    A value ``>= 1`` confirms the lemma for this state; experiment E5
    reports the minimum over many states.
    """
    mask = _as_mask(graph, infected)
    size = int(mask.sum())
    n = graph.n_vertices
    mandatory, rho = validate_branching(branching)
    if mandatory >= 2:
        bound = growth_lower_bound(size, n, lam)
    else:
        bound = fractional_growth_bound(size, n, lam, rho)
    exact = expected_next_infected_size(graph, mask, source, branching=branching)
    return exact / bound


def minimum_growth_ratio(
    graph: Graph,
    source: int,
    lam: float,
    *,
    branching: float = 2.0,
    n_random_sets: int = 200,
    seed: SeedLike = None,
) -> float:
    """Minimum bound ratio over random infected sets of every size.

    Samples ``n_random_sets`` uniformly random source-containing
    infected sets (sizes stratified from 1 to `n`) and returns the
    smallest exact-to-bound ratio observed.  Lemma 1 predicts the
    result is ``>= 1`` for ``k = 2`` on regular graphs.
    """
    source = resolve_vertex(graph, source, role="source")
    rng = ensure_generator(seed)
    n = graph.n_vertices
    others = np.array([u for u in range(n) if u != source], dtype=np.int64)
    worst = np.inf
    for i in range(n_random_sets):
        extra = int(round(i * (n - 1) / max(n_random_sets - 1, 1)))
        members = rng.choice(others, size=extra, replace=False) if extra else np.empty(0, int)
        mask = np.zeros(n, dtype=bool)
        mask[source] = True
        mask[members] = True
        worst = min(worst, growth_bound_ratio(graph, mask, source, lam, branching=branching))
    return float(worst)


def _as_mask(graph: Graph, infected: int | Iterable[int] | np.ndarray) -> np.ndarray:
    if isinstance(infected, np.ndarray) and infected.dtype == bool:
        if infected.shape != (graph.n_vertices,):
            raise ValueError(
                f"infected mask must have shape ({graph.n_vertices},), "
                f"got {infected.shape}"
            )
        return infected.copy()
    vertices = resolve_vertex_set(graph, infected, role="infected")
    mask = np.zeros(graph.n_vertices, dtype=bool)
    mask[vertices] = True
    return mask
