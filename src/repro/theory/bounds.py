"""The paper's closed-form bounds, verbatim.

Every formula in the paper's statements is reproduced here with its
source noted, so experiments can compare measurements against the
exact expressions (including the paper's explicit constants, which are
deliberately loose — the experiments check *shape*, the constants give
an upper envelope).
"""

from __future__ import annotations

import math


def cover_time_bound(n: int, lam: float) -> float:
    """Theorem 1 / 2 order function ``T = log(n) / (1 - λ)^3``.

    The theorems state ``COV(G) = O(T)`` and ``Infec(G) = O(T)``; this
    returns ``T`` itself (constant 1).
    """
    _check_n_lam(n, lam)
    return math.log(n) / (1.0 - lam) ** 3


def dutta_cover_bound(n: int) -> float:
    """Prior-work bound: Dutta et al. (SPAA 2013) proved `O(log² n)` for
    COBRA `k = 2` on constant-degree expanders.

    Returned as ``log²(n)`` (constant 1); Theorem 1 improves this to
    ``log n``, which the E1 measurements make visible — the measured
    cover times scale like ``log n``, well under this envelope.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return math.log(n) ** 2


def spectral_condition_holds(n: int, lam: float, *, constant: float = 1.0) -> bool:
    """The theorems' hypothesis ``1 - λ >= C sqrt(log(n) / n)``.

    The paper writes ``1 - λ ≫ sqrt(log n / n)``; ``constant`` plays
    the role of the suppressed "suitably large" ``C``.
    """
    _check_n_lam(n, lam)
    return (1.0 - lam) >= constant * math.sqrt(math.log(n) / n)


def growth_lower_bound(size: float, n: int, lam: float) -> float:
    """Lemma 1: ``E(|A_{t+1}| | A_t = A) >= |A| (1 + (1 - λ²)(1 - |A|/n))``.

    Valid for BIPS with ``k = 2`` on a connected regular graph.
    ``λ = 1`` (bipartite) is accepted: the bound degenerates to
    ``E >= |A|``, which the spectral argument still yields.
    """
    _check_n_lam(n, lam, allow_one=True)
    if not 0 <= size <= n:
        raise ValueError(f"size must be in [0, {n}], got {size}")
    return size * (1.0 + (1.0 - lam**2) * (1.0 - size / n))


def fractional_growth_bound(size: float, n: int, lam: float, rho: float) -> float:
    """Corollary 1: growth bound for branching ``1 + ρ``.

    ``E(|A_{t+1}| | A_t = A) >= |A| (1 + ρ (1 - λ²)(1 - |A|/n))``.
    """
    _check_n_lam(n, lam, allow_one=True)
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    if not 0 <= size <= n:
        raise ValueError(f"size must be in [0, {n}], got {size}")
    return size * (1.0 + rho * (1.0 - lam**2) * (1.0 - size / n))


def lemma2_round_budget(m: float, n: int, lam: float, *, confidence: float = 1.0) -> float:
    """Lemma 2: rounds to grow the infected set beyond ``m <= n/2``.

    ``T = 13 m / (1 - λ) + 24 C log(n) / (1 - λ)²`` guarantees
    ``|A_t| > m`` for some ``t <= T`` with probability
    ``1 - O(n^{-C})``; ``confidence`` is the paper's ``C``.
    """
    _check_n_lam(n, lam)
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    gap = 1.0 - lam
    return 13.0 * m / gap + 24.0 * confidence * math.log(n) / gap**2


def phase_boundary_size(n: int, lam: float, *, constant: float = 4000.0) -> float:
    """The small/large phase boundary ``m = K log(n) / (1 - λ)²``.

    Lemma 3 requires ``K = 4000`` (the paper's explicit constant); the
    proof of Theorem 2 applies Lemma 2 with this ``m``.
    """
    _check_n_lam(n, lam)
    return constant * math.log(n) / (1.0 - lam) ** 2


def lemma3_round_budget(n: int, lam: float) -> float:
    """Lemma 3: rounds from the phase boundary to ``9n/10`` coverage.

    ``23 log(n) / (1 - λ)`` rounds suffice w.h.p. once
    ``|A_t| >= 4000 log(n)/(1-λ)²``.
    """
    _check_n_lam(n, lam)
    return 23.0 * math.log(n) / (1.0 - lam)


def lemma4_round_budget(n: int, lam: float) -> float:
    """Lemma 4: rounds from ``9n/10`` coverage to full infection.

    ``8 log(n) / (1 - λ)`` rounds suffice with probability
    ``1 - n^{-5}``.
    """
    _check_n_lam(n, lam)
    return 8.0 * math.log(n) / (1.0 - lam)


def _check_n_lam(n: int, lam: float, *, allow_one: bool = False) -> None:
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    upper_ok = lam <= 1.0 if allow_one else lam < 1.0
    if not (0.0 <= lam and upper_ok):
        bracket = "[0, 1]" if allow_one else "[0, 1)"
        raise ValueError(f"lambda must be in {bracket}, got {lam}")
