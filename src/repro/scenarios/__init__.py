"""Declarative scenario layer: parameterized workloads for every experiment.

Every experiment ``E1`` .. ``E13`` runs from a typed :class:`Workload`
dataclass instead of hard-coded module constants.  The ``quick`` /
``full`` presets reproduce the paper defaults exactly (bit-identical
results, unchanged cache keys — golden-tested), and named
:class:`Scenario`\\ s layer sparse field overrides on top, opening new
size grids, degree sets, graph families, churn and loss regimes
without touching experiment code.

Entry points:

* ``run_experiment("E1", workload=...)`` /
  ``module.run(workload, seed)`` — run a concrete workload;
* :func:`get_scenario` / :func:`load_scenario` — named built-ins and
  JSON files;
* ``repro scenario list|info|run|validate`` and
  ``repro run E1 --set sizes=256,512`` on the CLI;
* ``"scenario"`` / ``"overrides"`` fields on campaign entries.
"""

from repro.scenarios.base import (
    PRESET_MODES,
    FieldSpec,
    Workload,
    resolve_workload,
    result_parameters,
    workload_label,
)
from repro.scenarios.families import GraphCase, GraphFamily
from repro.scenarios.registry import (
    Scenario,
    diversity_scenario_names,
    get_scenario,
    iter_scenarios,
    load_scenario,
    resolve_scenario,
    scenario_names,
    validate_scenario_dict,
)
from repro.scenarios.workloads import (
    WORKLOAD_TYPES,
    E1Workload,
    E2Workload,
    E3Workload,
    E4Workload,
    E5Workload,
    E6Workload,
    E7Workload,
    E8Workload,
    E9Workload,
    E10Workload,
    E11Workload,
    E12Workload,
    E13Workload,
)

__all__ = [
    "PRESET_MODES",
    "FieldSpec",
    "Workload",
    "resolve_workload",
    "result_parameters",
    "workload_label",
    "GraphCase",
    "GraphFamily",
    "Scenario",
    "get_scenario",
    "iter_scenarios",
    "load_scenario",
    "resolve_scenario",
    "scenario_names",
    "diversity_scenario_names",
    "validate_scenario_dict",
    "WORKLOAD_TYPES",
    "E1Workload",
    "E2Workload",
    "E3Workload",
    "E4Workload",
    "E5Workload",
    "E6Workload",
    "E7Workload",
    "E8Workload",
    "E9Workload",
    "E10Workload",
    "E11Workload",
    "E12Workload",
    "E13Workload",
]
