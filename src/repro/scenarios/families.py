"""Graph families as data: build a size-``n`` member from a description.

Scenario workloads name their substrate declaratively — ``{"kind":
"hypercube"}``, ``{"kind": "small_world", "degree": 8, "rewire":
0.2}`` — instead of baking a generator call into experiment code.
:class:`GraphFamily` validates the description and builds concrete
members through :mod:`repro.graphs.generators`.

Two invariants matter for reproducibility:

* the ``random_regular`` kind builds *exactly* what
  :func:`repro.experiments.sweep.expander_with_gap` builds for the
  same ``(n, degree, seed)`` — same seed derivation, same generator —
  so the preset workloads of E2 are bit-identical to the pre-scenario
  code;
* every kind validates its sizes up front (a hypercube needs a power
  of two, a torus a perfect ``d``-th power), so a bad scenario fails
  before any simulation work with an error naming the size.

:class:`GraphCase` is the sibling for *individual* graphs: a single
``(label, generator, args)`` description used by workloads that
measure a fixed list of graphs (E5's growth-bound cases) rather than
a family ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro._rng import SeedLike, derive_seed_sequence
from repro.errors import ScenarioError
from repro.graphs import generators, implicit
from repro.graphs.base import Graph

#: Family kinds and the parameters each accepts (``None`` = optional).
#: The ``*_implicit`` kinds build the same topologies as their
#: concrete namesakes but as :mod:`repro.graphs.implicit` backends —
#: neighbours computed on the fly, no CSR arrays — so million-vertex
#: ladders construct in O(1) memory.  They are separate kinds (not a
#: storage flag) so a scenario's serialised form, and therefore its
#: cache identity, states exactly what ran.
FAMILY_KINDS: dict[str, dict[str, Any]] = {
    "random_regular": {"degree": 8},
    "complete": {},
    "hypercube": {},
    "torus": {"dims": 2},
    "circulant": {"offsets": (1, 2, 5)},
    "hypercube_implicit": {},
    "torus_implicit": {"dims": 2},
    "circulant_implicit": {"offsets": (1, 2, 5)},
    "small_world": {"degree": 8, "rewire": 0.2},
    "power_law": {"attach": 4},
    "erdos_renyi": {"avg_degree": 8.0},
}


@dataclass(frozen=True)
class GraphFamily:
    """A declarative graph family: a kind plus its shape parameters.

    ``params`` holds only the keys the kind accepts (defaults filled
    in), so two descriptions of the same family serialise identically.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAMILY_KINDS:
            raise ScenarioError(
                f"unknown graph family {self.kind!r}; "
                f"known kinds: {', '.join(sorted(FAMILY_KINDS))}"
            )
        accepted = FAMILY_KINDS[self.kind]
        unknown = sorted(set(self.params) - set(accepted))
        if unknown:
            raise ScenarioError(
                f"graph family {self.kind!r} does not accept {unknown}; "
                f"parameters are {sorted(accepted)}"
            )
        merged = {**accepted, **self.params}
        normalised: dict[str, Any] = {}
        for key, value in merged.items():
            if key == "offsets":
                normalised[key] = tuple(int(item) for item in value)
            elif key in ("rewire", "avg_degree"):
                normalised[key] = float(value)
            else:
                normalised[key] = int(value)
        object.__setattr__(self, "params", normalised)
        self._validate_params()

    def _validate_params(self) -> None:
        params = self.params
        if self.kind in ("random_regular", "small_world") and params["degree"] < 2:
            raise ScenarioError(
                f"graph family {self.kind!r} needs degree >= 2, "
                f"got {params['degree']}"
            )
        if self.kind == "small_world":
            if params["degree"] % 2 != 0:
                raise ScenarioError(
                    f"small_world needs an even degree, got {params['degree']}"
                )
            if not 0.0 <= params["rewire"] <= 1.0:
                raise ScenarioError(
                    f"small_world rewire must be in [0, 1], got {params['rewire']}"
                )
        if self.kind in ("torus", "torus_implicit") and params["dims"] < 1:
            raise ScenarioError(f"{self.kind} needs dims >= 1, got {params['dims']}")
        if self.kind in ("circulant", "circulant_implicit") and not params["offsets"]:
            raise ScenarioError(f"{self.kind} needs at least one offset")
        if self.kind == "power_law" and params["attach"] < 1:
            raise ScenarioError(f"power_law needs attach >= 1, got {params['attach']}")
        if self.kind == "erdos_renyi" and params["avg_degree"] <= 0:
            raise ScenarioError(
                f"erdos_renyi needs avg_degree > 0, got {params['avg_degree']}"
            )

    # -- construction --------------------------------------------------

    @classmethod
    def from_value(cls, value: Any) -> "GraphFamily":
        """Parse a family from an instance, a kind string, or a dict."""
        if isinstance(value, GraphFamily):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", None)
            if not isinstance(kind, str):
                raise ScenarioError(
                    f"graph family description needs a string 'kind', got {value!r}"
                )
            return cls(kind=kind, params=data)
        raise ScenarioError(
            f"expected a graph family kind, description dict, or GraphFamily, "
            f"got {value!r}"
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (``kind`` plus the normalised parameters)."""
        return {
            "kind": self.kind,
            **{
                key: list(value) if isinstance(value, tuple) else value
                for key, value in sorted(self.params.items())
            },
        }

    # -- building members ----------------------------------------------

    def validate_size(self, n: int) -> None:
        """Reject sizes this family has no member of, naming the fix."""
        if n < 4:
            raise ScenarioError(f"graph family sizes must be >= 4, got {n}")
        if self.kind in ("hypercube", "hypercube_implicit") and n & (n - 1):
            raise ScenarioError(
                f"{self.kind} sizes must be powers of two, got {n}"
            )
        if self.kind in ("torus", "torus_implicit"):
            dims = self.params["dims"]
            side = round(n ** (1.0 / dims))
            if side**dims != n or side < 3:
                raise ScenarioError(
                    f"{self.kind}(dims={dims}) sizes must be side**{dims} with "
                    f"side >= 3, got {n}"
                )
        if self.kind == "random_regular":
            degree = self.params["degree"]
            if degree >= n or (n * degree) % 2:
                raise ScenarioError(
                    f"random_regular(degree={degree}) needs n > degree with "
                    f"n*degree even, got n={n}"
                )
        if self.kind in ("small_world", "power_law"):
            key = "degree" if self.kind == "small_world" else "attach"
            if self.params[key] >= n:
                raise ScenarioError(
                    f"{self.kind}({key}={self.params[key]}) needs n > {key}, got n={n}"
                )

    def build(self, n: int, seed: SeedLike = None) -> Graph:
        """A size-``n`` member of the family (seeded for random kinds)."""
        self.validate_size(n)
        params = self.params
        if self.kind == "random_regular":
            # Exactly expander_with_gap's construction: the preset path
            # must stay bit-identical to the pre-scenario experiments.
            rng = np.random.default_rng(derive_seed_sequence(seed))
            return generators.random_regular(n, params["degree"], seed=rng)
        if self.kind == "complete":
            return generators.complete(n)
        if self.kind == "hypercube":
            return generators.hypercube(n.bit_length() - 1)
        if self.kind == "torus":
            dims = params["dims"]
            side = round(n ** (1.0 / dims))
            return generators.torus((side,) * dims)
        if self.kind == "circulant":
            return generators.circulant(n, params["offsets"])
        if self.kind == "hypercube_implicit":
            return implicit.ImplicitHypercube(n.bit_length() - 1)
        if self.kind == "torus_implicit":
            dims = params["dims"]
            side = round(n ** (1.0 / dims))
            return implicit.ImplicitTorus((side,) * dims)
        if self.kind == "circulant_implicit":
            return implicit.ImplicitCirculant(n, params["offsets"])
        if self.kind == "small_world":
            rng = np.random.default_rng(derive_seed_sequence(seed))
            return generators.watts_strogatz(
                n, params["degree"], params["rewire"], seed=rng
            )
        if self.kind == "power_law":
            rng = np.random.default_rng(derive_seed_sequence(seed))
            return generators.barabasi_albert(n, params["attach"], seed=rng)
        assert self.kind == "erdos_renyi"
        rng = np.random.default_rng(derive_seed_sequence(seed))
        probability = min(1.0, params["avg_degree"] / (n - 1))
        return generators.erdos_renyi(n, probability, seed=rng, connected=True)

    def label(self) -> str:
        """Short human label used in plot titles and table rows.

        For ``random_regular`` this is the exact phrase the
        pre-scenario experiments printed, keeping preset reports
        byte-identical.
        """
        params = self.params
        if self.kind == "random_regular":
            return f"random {params['degree']}-regular"
        if self.kind == "complete":
            return "complete"
        if self.kind == "hypercube":
            return "hypercube"
        if self.kind == "torus":
            return f"{params['dims']}-D torus"
        if self.kind == "circulant":
            return f"circulant{params['offsets']}"
        if self.kind == "hypercube_implicit":
            return "hypercube (implicit)"
        if self.kind == "torus_implicit":
            return f"{params['dims']}-D torus (implicit)"
        if self.kind == "circulant_implicit":
            return f"circulant{params['offsets']} (implicit)"
        if self.kind == "small_world":
            return f"small-world (k={params['degree']}, rewire={params['rewire']})"
        if self.kind == "power_law":
            return f"power-law (attach={params['attach']})"
        return f"G(n, p) avg degree {params['avg_degree']}"


@dataclass(frozen=True)
class GraphCase:
    """One named graph built by a generator call: ``(label, generator, args)``.

    Workloads that measure a fixed list of graphs (E5) carry a tuple of
    these.  ``seed_offset`` marks generators that take a seed (the case
    receives ``run_seed + seed_offset``, reproducing the pre-scenario
    seeding); ``None`` means the generator is deterministic.
    """

    label: str
    generator: str
    args: tuple[Any, ...] = ()
    seed_offset: int | None = None

    def __post_init__(self) -> None:
        if not self.label or not isinstance(self.label, str):
            raise ScenarioError(f"graph case needs a non-empty label, got {self.label!r}")
        builder = getattr(generators, str(self.generator), None)
        if builder is None or not callable(builder):
            raise ScenarioError(
                f"graph case {self.label!r}: unknown generator {self.generator!r} "
                f"(see repro.graphs.generators)"
            )
        object.__setattr__(self, "args", _normalise_args(self.args))
        if self.seed_offset is not None:
            object.__setattr__(self, "seed_offset", int(self.seed_offset))

    @classmethod
    def from_value(cls, value: Any) -> "GraphCase":
        """Parse a case from an instance or a description dict."""
        if isinstance(value, GraphCase):
            return value
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - {"label", "generator", "args", "seed_offset"})
            if unknown:
                raise ScenarioError(f"graph case has unknown keys {unknown}")
            try:
                return cls(
                    label=value["label"],
                    generator=value["generator"],
                    args=tuple(value.get("args", ())),
                    seed_offset=value.get("seed_offset"),
                )
            except KeyError as missing:
                raise ScenarioError(f"graph case is missing {missing}") from None
        raise ScenarioError(f"expected a graph case description, got {value!r}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        data: dict[str, Any] = {
            "label": self.label,
            "generator": self.generator,
            "args": [list(arg) if isinstance(arg, tuple) else arg for arg in self.args],
        }
        if self.seed_offset is not None:
            data["seed_offset"] = self.seed_offset
        return data

    def build(self, seed: int = 0) -> Graph:
        """Build the graph (seeded generators get ``seed + seed_offset``)."""
        builder = getattr(generators, self.generator)
        if self.seed_offset is None:
            return builder(*self.args)
        return builder(*self.args, seed=seed + self.seed_offset)


def _normalise_args(args: Any) -> tuple[Any, ...]:
    if not isinstance(args, (list, tuple)):
        raise ScenarioError(f"graph case args must be a list, got {args!r}")
    normalised = []
    for arg in args:
        if isinstance(arg, (list, tuple)):
            normalised.append(tuple(arg))
        elif isinstance(arg, (bool, int, float, str)):
            normalised.append(arg)
        else:
            raise ScenarioError(f"graph case args must be scalars or lists, got {arg!r}")
    return tuple(normalised)


def nearest_valid_sizes(family: GraphFamily, sizes: tuple[int, ...]) -> tuple[int, ...]:
    """Snap a size grid onto the family's valid member sizes.

    Convenience for scenario authors: powers of two for hypercubes,
    perfect powers for tori (preferring odd sides, which keep the torus
    non-bipartite), parity fixes for regular families.  Sizes already
    valid pass through unchanged.
    """
    snapped = []
    for n in sizes:
        if family.kind in ("hypercube", "hypercube_implicit"):
            snapped.append(1 << max(2, round(math.log2(n))))
        elif family.kind in ("torus", "torus_implicit"):
            dims = family.params["dims"]
            side = max(3, round(n ** (1.0 / dims)))
            if side % 2 == 0:
                side += 1
            snapped.append(side**dims)
        elif family.kind == "random_regular":
            degree = family.params["degree"]
            n = max(n, degree + 1)
            if (n * degree) % 2:
                n += 1
            snapped.append(n)
        else:
            snapped.append(n)
    return tuple(dict.fromkeys(snapped))
