"""Workload machinery: typed, validated, canonically serialisable.

A *workload* is the complete declarative description of what one
experiment run computes — the size grid, degree set, sample counts,
branching grids, loss rates, … that used to live only in module-level
``UPPER_CASE`` constants.  Each experiment module defines a frozen
dataclass deriving from :class:`Workload` (see
:mod:`repro.scenarios.workloads`) plus a ``preset(mode)`` factory that
reproduces today's ``quick`` / ``full`` constants exactly.

The machinery here gives every workload class uniform behaviour:

* **Coercion + validation.**  Field values are normalised through the
  class's :data:`FIELDS` specs on construction (``[256, 512]`` and
  ``"256,512"`` both become ``(256, 512)``), and invalid values raise
  :class:`~repro.errors.ScenarioError` naming the field.
* **Canonical serialisation.**  :meth:`Workload.to_dict` emits plain
  JSON-shaped data; passed through
  :func:`repro.cache.canonical_json`, it is the workload's identity
  and becomes part of the result-cache key for scenario runs.
* **Overrides.**  :meth:`Workload.with_overrides` applies a sparse
  ``{field: value}`` mapping (the CLI's ``--set``, a campaign entry's
  ``"overrides"``, a scenario file) on top of a base workload,
  rejecting unknown field names.

Preset workloads deliberately keep the *legacy* cache-key format (the
spec + ``UPPER_CASE`` constant scrape of
:func:`repro.experiments.resolved_parameters`), so refactoring the
experiments onto workloads invalidated no cached results — golden
tests pin those keys.  Only bespoke workloads are keyed by their
canonical JSON.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, replace
from typing import Any, Callable, ClassVar, Mapping

from repro.errors import ScenarioError

#: The reserved preset names every experiment ships.
PRESET_MODES = ("quick", "full")


def _reject(field_name: str, message: str) -> ScenarioError:
    return ScenarioError(f"workload field {field_name!r}: {message}")


# ---------------------------------------------------------------------------
# Field specs: one coercion + validation rule per workload field.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSpec:
    """How one workload field coerces and validates its value.

    ``coerce`` receives ``(field_name, raw_value)`` and returns the
    normalised value or raises :class:`ScenarioError`.
    """

    coerce: Callable[[str, Any], Any]
    doc: str = ""


def _parse_scalar(token: str) -> Any:
    token = token.strip()
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _as_sequence(name: str, value: Any) -> list[Any]:
    """A raw field value as a list of scalar items.

    Accepts tuples/lists, a single scalar, or a comma-separated string
    (the CLI ``--set sizes=256,512`` form).
    """
    if isinstance(value, str):
        items = [_parse_scalar(part) for part in value.split(",") if part.strip()]
        if not items:
            raise _reject(name, f"expected at least one value, got {value!r}")
        return items
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _coerce_int(name: str, value: Any) -> int:
    if isinstance(value, str):
        value = _parse_scalar(value)
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value == int(value):
            return int(value)
        raise _reject(name, f"expected an integer, got {value!r}")
    return value


def _coerce_float(name: str, value: Any) -> float:
    if isinstance(value, str):
        value = _parse_scalar(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _reject(name, f"expected a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise _reject(name, f"expected a finite number, got {value!r}")
    return value


def int_field(minimum: int | None = None, doc: str = "") -> FieldSpec:
    """An integer field with an optional lower bound."""

    def coerce(name: str, value: Any) -> int:
        result = _coerce_int(name, value)
        if minimum is not None and result < minimum:
            raise _reject(name, f"must be >= {minimum}, got {result}")
        return result

    return FieldSpec(coerce, doc)


def float_field(
    minimum: float | None = None,
    maximum: float | None = None,
    doc: str = "",
) -> FieldSpec:
    """A finite-float field with optional inclusive bounds."""

    def coerce(name: str, value: Any) -> float:
        result = _coerce_float(name, value)
        if minimum is not None and result < minimum:
            raise _reject(name, f"must be >= {minimum}, got {result}")
        if maximum is not None and result > maximum:
            raise _reject(name, f"must be <= {maximum}, got {result}")
        return result

    return FieldSpec(coerce, doc)


def int_tuple_field(
    minimum: int | None = None,
    min_items: int = 1,
    doc: str = "",
) -> FieldSpec:
    """A non-empty tuple of integers, each with an optional lower bound."""

    def coerce(name: str, value: Any) -> tuple[int, ...]:
        items = tuple(_coerce_int(name, item) for item in _as_sequence(name, value))
        if len(items) < min_items:
            raise _reject(name, f"needs at least {min_items} value(s), got {items!r}")
        if minimum is not None:
            for item in items:
                if item < minimum:
                    raise _reject(name, f"every value must be >= {minimum}, got {item}")
        return items

    return FieldSpec(coerce, doc)


def float_tuple_field(
    minimum: float | None = None,
    maximum: float | None = None,
    min_items: int = 1,
    doc: str = "",
) -> FieldSpec:
    """A non-empty tuple of finite floats with optional inclusive bounds."""

    def coerce(name: str, value: Any) -> tuple[float, ...]:
        items = tuple(_coerce_float(name, item) for item in _as_sequence(name, value))
        if len(items) < min_items:
            raise _reject(name, f"needs at least {min_items} value(s), got {items!r}")
        for item in items:
            if minimum is not None and item < minimum:
                raise _reject(name, f"every value must be >= {minimum}, got {item}")
            if maximum is not None and item > maximum:
                raise _reject(name, f"every value must be <= {maximum}, got {item}")
        return items

    return FieldSpec(coerce, doc)


def object_field(
    from_value: Callable[[Any], Any],
    doc: str = "",
) -> FieldSpec:
    """A structured field (e.g. a graph family) with its own parser.

    ``from_value`` receives the raw value (already-built instance,
    dict, or string) and returns the structured object; its
    :class:`ScenarioError`\\ s pass through annotated with the field
    name.
    """

    def coerce(name: str, value: Any) -> Any:
        try:
            return from_value(value)
        except ScenarioError as error:
            raise _reject(name, str(error)) from None

    return FieldSpec(coerce, doc)


def choice_field(options: tuple[str, ...], doc: str = "") -> FieldSpec:
    """A string field restricted to a fixed set of options."""

    def coerce(name: str, value: Any) -> str:
        if not isinstance(value, str) or value not in options:
            raise _reject(
                name,
                f"must be one of {', '.join(repr(o) for o in options)}, "
                f"got {value!r}",
            )
        return value

    return FieldSpec(coerce, doc)


def object_tuple_field(
    from_value: Callable[[Any], Any],
    min_items: int = 1,
    doc: str = "",
) -> FieldSpec:
    """A non-empty tuple of structured items parsed by ``from_value``."""

    def coerce(name: str, value: Any) -> tuple[Any, ...]:
        if not isinstance(value, (list, tuple)):
            raise _reject(name, f"expected a list, got {value!r}")
        if len(value) < min_items:
            raise _reject(name, f"needs at least {min_items} item(s), got {len(value)}")
        items = []
        for item in value:
            try:
                items.append(from_value(item))
            except ScenarioError as error:
                raise _reject(name, str(error)) from None
        return tuple(items)

    return FieldSpec(coerce, doc)


# ---------------------------------------------------------------------------
# The workload base class.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """Base class of the per-experiment workload dataclasses.

    Subclasses are frozen dataclasses whose fields each have a
    :class:`FieldSpec` in the class-level :data:`FIELDS` mapping.
    Construction coerces and validates every field; equality is plain
    dataclass equality on the normalised values, which is what makes
    "is this workload exactly the quick/full preset?" a safe check.
    """

    #: One :class:`FieldSpec` per dataclass field, in field order.
    FIELDS: ClassVar[dict[str, FieldSpec]] = {}

    def __post_init__(self) -> None:
        cls = type(self)
        declared = {spec.name for spec in fields(self)}
        if set(cls.FIELDS) != declared:  # pragma: no cover - definition bug
            raise ScenarioError(
                f"{cls.__name__}.FIELDS must cover exactly the dataclass fields; "
                f"specs: {sorted(cls.FIELDS)}, fields: {sorted(declared)}"
            )
        for name, spec in cls.FIELDS.items():
            value = spec.coerce(name, getattr(self, name))
            object.__setattr__(self, name, value)
        self.validate()

    def validate(self) -> None:
        """Cross-field validation hook; subclasses may override."""

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-shaped form: tuples as lists, objects via ``to_dict``."""
        return {spec.name: _jsonable(getattr(self, spec.name)) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workload":
        """Inverse of :meth:`to_dict`; unknown keys are errors.

        Fields with dataclass defaults may be omitted (so descriptions
        written before a field existed keep loading); fields without a
        default are required.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"{cls.__name__} description must be an object, "
                f"got {type(data).__name__}"
            )
        declared = [spec.name for spec in fields(cls)]
        unknown = sorted(set(data) - set(declared))
        if unknown:
            raise ScenarioError(
                f"{cls.__name__} has no field(s) {unknown}; "
                f"fields are {declared}"
            )
        required = {
            spec.name
            for spec in fields(cls)
            if spec.default is MISSING and spec.default_factory is MISSING
        }
        missing = sorted(required - set(data))
        if missing:
            raise ScenarioError(f"{cls.__name__} description is missing {missing}")
        return cls(**{name: data[name] for name in declared if name in data})

    # -- overrides -----------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Workload":
        """A copy with ``overrides`` applied (coerced and re-validated).

        Unknown field names raise :class:`ScenarioError` listing the
        workload's actual fields, so a typoed override fails loudly
        instead of silently running the base workload.
        """
        if not isinstance(overrides, Mapping):
            raise ScenarioError(
                f"overrides must be a mapping of field names to values, "
                f"got {type(overrides).__name__}"
            )
        declared = [spec.name for spec in fields(self)]
        unknown = sorted(set(overrides) - set(declared))
        if unknown:
            raise ScenarioError(
                f"{type(self).__name__} has no field(s) {unknown}; "
                f"fields are {declared}"
            )
        if not overrides:
            return self
        return replace(self, **dict(overrides))

    def describe(self) -> str:
        """One-line ``field=value`` summary for CLI listings."""
        parts = []
        for spec in fields(self):
            value = _jsonable(getattr(self, spec.name))
            parts.append(f"{spec.name}={value!r}")
        return ", ".join(parts)


def _jsonable(value: Any) -> Any:
    """A field value as plain JSON-shaped data."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def overrides_digest(overrides: Mapping[str, Any]) -> str:
    """Short stable digest of an overrides mapping, for result-file names.

    Two different override sets on the same experiment/seed must not
    write to the same file; eight canonical-JSON digest characters keep
    the names distinct and reproducible.
    """
    import hashlib

    from repro.cache import canonical_json  # deferred: avoids an import cycle

    payload = canonical_json(dict(overrides))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


# ---------------------------------------------------------------------------
# Workload resolution shared by every experiment's ``run``.
# ---------------------------------------------------------------------------


def resolve_workload(
    workload_type: type,
    preset: Callable[[str], Workload],
    workload: Any = None,
    mode: str | None = None,
) -> Workload:
    """Normalise a ``run(workload, mode=...)`` call to one workload.

    Accepts the workload positionally (an instance, or a preset name
    string) or the legacy ``mode=`` keyword; passing both is an error.
    ``None``/``None`` means the ``quick`` preset, preserving the old
    ``run()`` default.  Bad preset names raise the same ``ValueError``
    the old ``run(mode=...)`` signature raised.
    """
    if workload is not None and mode is not None:
        raise ScenarioError(
            f"pass either a workload or mode=, not both "
            f"(got workload={workload!r} and mode={mode!r})"
        )
    if workload is None:
        workload = mode if mode is not None else "quick"
    if isinstance(workload, str):
        if workload not in PRESET_MODES:
            raise ValueError(f"mode must be 'quick' or 'full', got {workload!r}")
        return preset(workload)
    if isinstance(workload, workload_type):
        return workload
    raise ScenarioError(
        f"expected a {workload_type.__name__} (or 'quick'/'full'), "
        f"got {type(workload).__name__}"
    )


def result_parameters(
    label: str, workload: Workload, legacy: dict[str, Any]
) -> dict[str, Any]:
    """The ``parameters`` dict an experiment result reports.

    Preset runs keep the exact legacy dict (bit-identical reports);
    scenario runs report the full workload, which is self-describing.
    """
    if label != "scenario":
        return legacy
    return {"workload": workload.to_dict()}


def workload_label(preset: Callable[[str], Workload], workload: Workload) -> str:
    """``"quick"``, ``"full"``, or ``"scenario"`` for a resolved workload.

    Preset-equality is what routes a run onto the legacy cache-key
    format (see the module docstring), and what stamps
    ``ExperimentResult.mode``; any workload not exactly equal to a
    preset is a ``"scenario"``.
    """
    for mode in PRESET_MODES:
        if workload == preset(mode):
            return mode
    return "scenario"
