"""Named scenarios: paper presets plus diversity regimes, and JSON files.

A :class:`Scenario` binds an experiment to a declarative workload
description — a ``base`` preset (``quick``/``full``) plus sparse field
``overrides``.  Scenarios stay declarative until :meth:`Scenario.
workload` resolves them against the live experiment module, so
monkeypatched constants and lazy imports both behave.

The built-in registry ships:

* the paper defaults, ``e1-quick`` … ``e13-full`` (empty overrides);
* *diversity* scenarios that run the paper's claims on regimes beyond
  the reproduction defaults — hypercube / torus / power-law /
  small-world graph families, heavier churn, harsher message loss,
  thinner branching surpluses — the axes the related COBRA/BIPS
  literature varies.

Scenario JSON files (see :func:`load_scenario`) carry the same fields
as :meth:`Scenario.to_dict`; ``repro scenario validate`` checks them
against this schema, and ``repro campaign`` accepts them directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import ScenarioError
from repro.scenarios.base import PRESET_MODES, Workload

#: Keys a scenario description may carry.
_SCENARIO_KEYS = frozenset({"name", "description", "experiment_id", "base", "overrides"})


@dataclass(frozen=True)
class Scenario:
    """A named, declarative experiment configuration."""

    name: str
    experiment_id: str
    description: str = ""
    base: str = "quick"
    overrides: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario needs a non-empty string name, got {self.name!r}")
        if self.base not in PRESET_MODES:
            raise ScenarioError(
                f"scenario {self.name!r}: base must be one of {list(PRESET_MODES)}, "
                f"got {self.base!r}"
            )
        if not isinstance(self.overrides, Mapping):
            raise ScenarioError(
                f"scenario {self.name!r}: overrides must be an object, "
                f"got {type(self.overrides).__name__}"
            )
        object.__setattr__(self, "overrides", dict(self.overrides))

    def workload(self) -> Workload:
        """Resolve to a concrete workload against the live experiment module.

        Raises :class:`ScenarioError` (with the scenario name) if the
        experiment id is unknown or an override does not fit the
        experiment's workload type.
        """
        from repro.errors import ExperimentError
        from repro.experiments import get_experiment  # deferred: import cycle

        try:
            module = get_experiment(self.experiment_id)
            return module.preset(self.base).with_overrides(self.overrides)
        except ExperimentError as error:  # ScenarioError included
            raise ScenarioError(f"scenario {self.name!r}: {error}") from None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, matching the scenario-file schema."""
        data: dict[str, Any] = {
            "name": self.name,
            "experiment_id": self.experiment_id,
            "base": self.base,
        }
        if self.description:
            data["description"] = self.description
        if self.overrides:
            data["overrides"] = dict(self.overrides)
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "Scenario":
        """Parse and validate a scenario description strictly.

        Unknown keys, a missing name or experiment id, a bad base
        preset, and overrides that do not fit the experiment's workload
        are all :class:`ScenarioError`\\ s naming the problem — a
        malformed scenario file fails before any work is done.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario description must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - _SCENARIO_KEYS)
        if unknown:
            raise ScenarioError(
                f"scenario description has unknown keys {unknown}; "
                f"allowed keys are {sorted(_SCENARIO_KEYS)}"
            )
        for key in ("name", "experiment_id"):
            if key not in data or not isinstance(data[key], str) or not data[key]:
                raise ScenarioError(
                    f"scenario description needs a non-empty string {key!r}, got {data!r}"
                )
        description = data.get("description", "")
        if not isinstance(description, str):
            raise ScenarioError(
                f"scenario {data['name']!r}: description must be a string, "
                f"got {description!r}"
            )
        scenario = cls(
            name=data["name"],
            experiment_id=data["experiment_id"],
            description=description,
            base=data.get("base", "quick"),
            overrides=data.get("overrides", {}),
        )
        scenario.workload()  # resolve eagerly: bad ids/overrides fail here
        return scenario


def validate_scenario_dict(data: Any) -> Scenario:
    """Validate a scenario description against the schema; returns it parsed."""
    return Scenario.from_dict(data)


def load_scenario(path: str | Path) -> Scenario:
    """Load and validate one scenario JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise ScenarioError(f"cannot read scenario file {path}: {error}") from None
    except ValueError as error:
        raise ScenarioError(f"scenario file {path} is not valid JSON: {error}") from None
    try:
        return Scenario.from_dict(data)
    except ScenarioError as error:
        raise ScenarioError(f"scenario file {path}: {error}") from None


def _looks_like_file(name: str) -> bool:
    return "/" in name or "\\" in name or name.endswith(".json")


def resolve_scenario(name_or_path: str) -> Scenario:
    """A scenario by registry name, or from a JSON file path."""
    if _looks_like_file(name_or_path):
        return load_scenario(name_or_path)
    return get_scenario(name_or_path)


# ---------------------------------------------------------------------------
# Built-in registry.
# ---------------------------------------------------------------------------

#: Diversity scenarios: the paper's claims on regimes beyond the
#: reproduction defaults.  Sizes are chosen so every scenario runs in
#: seconds from the CLI.
_DIVERSITY: tuple[Scenario, ...] = (
    Scenario(
        name="e1-wide-degrees",
        experiment_id="E1",
        description=(
            "Theorem 1's degree independence stressed on a wider degree set "
            "(4..64) over a smaller size grid"
        ),
        overrides={"sizes": (128, 256, 512, 1024), "degrees": (4, 16, 64), "samples": 8},
    ),
    Scenario(
        name="e2-hypercube",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on hypercubes — bipartite (lambda = 1), so the "
            "theorems are vacuous, yet both processes stay logarithmic"
        ),
        overrides={
            "sizes": (64, 128, 256, 512),
            "samples": 8,
            "family": {"kind": "hypercube"},
        },
    ),
    Scenario(
        name="e2-torus-2d",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on 2-D tori (odd sides) — a non-expander family "
            "where completion grows polynomially, not logarithmically"
        ),
        overrides={
            "sizes": (81, 225, 441),
            "samples": 8,
            "family": {"kind": "torus", "dims": 2},
        },
    ),
    Scenario(
        name="e2-small-world",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on Watts-Strogatz small-world graphs (k=8, 20% "
            "rewiring) — locally clustered, globally short"
        ),
        overrides={
            "sizes": (128, 256, 512),
            "samples": 8,
            "family": {"kind": "small_world", "degree": 8, "rewire": 0.2},
        },
    ),
    Scenario(
        name="e2-power-law",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on Barabasi-Albert power-law graphs — strongly "
            "irregular hubs, outside the paper's regular setting"
        ),
        overrides={
            "sizes": (128, 256, 512),
            "samples": 8,
            "family": {"kind": "power_law", "attach": 4},
        },
    ),
    Scenario(
        name="e2-power-law-sparse",
        experiment_id="E2",
        description=(
            "the power-law regime rerun on the sparse-frontier engine at "
            "64x the diversity sizes — irregular hubs, rounds costing the "
            "frontier instead of samples x n"
        ),
        overrides={
            "sizes": (2048, 8192, 32768),
            "samples": 8,
            "family": {"kind": "power_law", "attach": 4},
            "engine": "sparse",
        },
    ),
    Scenario(
        name="e2-torus-implicit-1m",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on a million-vertex 3-D implicit torus: "
            "neighbours computed on the fly (no CSR arrays), sparse-"
            "frontier engine — runs to full completion in ~1 GB RSS "
            "where the dense engines would need terabytes"
        ),
        overrides={
            "sizes": (29_791, 103_823, 1_030_301),
            "samples": 2,
            "family": {"kind": "torus_implicit", "dims": 3},
            "engine": "sparse",
        },
    ),
    Scenario(
        name="e1-event-expander",
        experiment_id="E1",
        description=(
            "Theorem 1 under asynchronous Gillespie clocks: the continuous-time "
            "event engine at transmission rate 2 on a compact expander ladder"
        ),
        overrides={
            "sizes": (128, 256, 512),
            "degrees": (8,),
            "samples": 6,
            "engine": "event",
            "transmission_rate": 2.0,
        },
    ),
    Scenario(
        name="e2-event-sparse",
        experiment_id="E2",
        description=(
            "BIPS vs COBRA on 2-D tori via the event engine — the sparse-"
            "frontier regime where event cost beats rounds x n"
        ),
        overrides={
            "sizes": (49, 121, 225),
            "samples": 6,
            "family": {"kind": "torus", "dims": 2},
            "engine": "event",
        },
    ),
    Scenario(
        name="e2-heterogeneous-rates",
        experiment_id="E2",
        description=(
            "per-edge transmission-rate heterogeneity on circulants — a fast "
            "(0,1) contact and a throttled (1,2) contact, event engine only"
        ),
        overrides={
            "sizes": (65, 129),
            "samples": 6,
            "family": {"kind": "circulant", "offsets": (1, 2)},
            "engine": "event",
            "edge_rate_overrides": ((0, 1, 4.0), (1, 2, 0.25)),
        },
    ),
    Scenario(
        name="e3-thin-surplus",
        experiment_id="E3",
        description=(
            "Theorem 3 near the boundary: branching surpluses down to "
            "rho = 0.05 on a compact ladder"
        ),
        overrides={"sizes": (128, 256, 512, 1024), "rhos": (0.05, 0.1, 0.2), "samples": 8},
    ),
    Scenario(
        name="e12-rapid-churn",
        experiment_id="E12",
        description=(
            "dynamic graphs under heavy churn only: a fresh expander every "
            "1-2 rounds vs static, on a compact ladder"
        ),
        overrides={"sizes": (64, 128, 256), "samples": 6, "periods": (1, 2, 10_000_000)},
    ),
    Scenario(
        name="e13-harsh-loss",
        experiment_id="E13",
        description=(
            "message loss pushed toward the (1-p)k = 1 threshold, with a "
            "fine sweep across criticality"
        ),
        overrides={
            "n": 512,
            "loss_rates": (0.0, 0.3, 0.45),
            "critical_sweep": (0.45, 0.5, 0.55),
            "samples": 120,
        },
    ),
)


def _builtin_scenarios() -> dict[str, Scenario]:
    from repro.experiments import experiment_ids  # deferred: import cycle

    registry: dict[str, Scenario] = {}
    for experiment_id in experiment_ids():
        for mode in PRESET_MODES:
            name = f"{experiment_id.lower()}-{mode}"
            registry[name] = Scenario(
                name=name,
                experiment_id=experiment_id,
                description=f"paper defaults for {experiment_id} at {mode} scale",
                base=mode,
            )
    for scenario in _DIVERSITY:
        if scenario.name in registry:  # pragma: no cover - definition bug
            raise ScenarioError(f"duplicate built-in scenario {scenario.name!r}")
        registry[scenario.name] = scenario
    return registry


def scenario_names() -> list[str]:
    """All built-in scenario names (presets first, then diversity)."""
    return list(_builtin_scenarios())


def diversity_scenario_names() -> list[str]:
    """The built-in scenarios beyond the paper's quick/full defaults."""
    return [scenario.name for scenario in _DIVERSITY]


def get_scenario(name: str) -> Scenario:
    """A built-in scenario by name (case-insensitive)."""
    registry = _builtin_scenarios()
    scenario = registry.get(name) or registry.get(name.lower())
    if scenario is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; run 'repro scenario list' or pass a "
            f"scenario JSON file path"
        )
    return scenario


def iter_scenarios() -> Iterator[Scenario]:
    """All built-in scenarios in registry order."""
    yield from _builtin_scenarios().values()
