"""The thirteen experiment workload dataclasses, E1 through E13.

Each class mirrors one experiment module's parameter surface: every
``UPPER_CASE`` constant the old ``run(mode=...)`` read is now a
validated field.  The ``quick``/``full`` presets are built *by the
experiment modules themselves* (``preset(mode)`` there reads the live
module constants, so micro-scale monkeypatching keeps working); these
classes only define the shape, coercion rules, and cross-field
validation.

Field values accept scenario-friendly spellings — ``"256,512"`` from
the CLI's ``--set``, plain JSON lists from scenario files, family
descriptions as kind strings or dicts — and normalise to tuples and
structured objects, so equal workloads compare equal however they were
written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import ScenarioError
from repro.scenarios.base import (
    FieldSpec,
    Workload,
    choice_field,
    float_field,
    float_tuple_field,
    int_field,
    int_tuple_field,
    object_field,
    object_tuple_field,
)
from repro.scenarios.families import GraphCase, GraphFamily

#: Engine names the engine-aware workloads accept (the seam of
#: :func:`repro.experiments.sweep.measure_cobra_cover` and friends).
ENGINE_CHOICES = ("process", "batch", "compiled", "event", "sparse")


def _edge_rate_triple(item):
    """One ``(u, v, rate)`` scenario entry, normalised to a tuple."""
    if not isinstance(item, (list, tuple)) or len(item) != 3:
        raise ScenarioError(f"expected a [u, v, rate] triple, got {item!r}")
    u, v, rate = item
    if (
        isinstance(u, bool)
        or isinstance(v, bool)
        or not isinstance(u, int)
        or not isinstance(v, int)
    ):
        raise ScenarioError(f"edge endpoints must be integers, got {item!r}")
    if u < 0 or v < 0:
        raise ScenarioError(f"edge endpoints must be >= 0, got {item!r}")
    if u == v:
        raise ScenarioError(f"edge endpoints must differ (no self-loops), got {item!r}")
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        raise ScenarioError(f"edge rate must be a number, got {item!r}")
    rate = float(rate)
    if rate != rate or rate in (float("inf"), float("-inf")) or rate < 0.0:
        raise ScenarioError(f"edge rate must be a finite number >= 0, got {rate}")
    return (u, v, rate)


def _require_event_engine(experiment: str, engine: str, rate_options) -> None:
    """Reject rate fields left non-default while a round engine is selected."""
    if engine == "event":
        return
    used = sorted(name for name, non_default in rate_options.items() if non_default)
    if used:
        raise ScenarioError(
            f"{experiment} field(s) {', '.join(used)} only apply to the "
            f"continuous-time engine; set engine='event' (got engine={engine!r})"
        )


@dataclass(frozen=True)
class E1Workload(Workload):
    """E1 — COBRA cover on random regular expanders: `n` × `r` grid."""

    sizes: tuple[int, ...]
    degrees: tuple[int, ...]
    samples: int
    branching: float = 2.0
    engine: str = "batch"
    transmission_rate: float = 1.0

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sizes": int_tuple_field(minimum=8, doc="graph sizes n of the ladder"),
        "degrees": int_tuple_field(minimum=3, doc="regular degrees r to sweep"),
        "samples": int_field(minimum=1, doc="cover-time replicas per (n, r) cell"),
        "branching": float_field(minimum=1.0, doc="COBRA branching factor k"),
        "engine": choice_field(ENGINE_CHOICES, doc="measurement engine"),
        "transmission_rate": float_field(
            minimum=1e-9, doc="event-engine firing rate per active site"
        ),
    }

    def validate(self) -> None:
        smallest = min(self.sizes)
        for degree in self.degrees:
            if degree >= smallest:
                raise ScenarioError(
                    f"E1 degree {degree} must be below the smallest size {smallest}"
                )
        _require_event_engine(
            "E1", self.engine, {"transmission_rate": self.transmission_rate != 1.0}
        )


@dataclass(frozen=True)
class E2Workload(Workload):
    """E2 — BIPS infection vs COBRA cover on one graph-family ladder."""

    sizes: tuple[int, ...]
    samples: int
    family: GraphFamily
    engine: str = "batch"
    transmission_rate: float = 1.0
    recovery_rate: float = 0.0
    edge_rate_overrides: tuple[tuple[int, int, float], ...] = ()

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sizes": int_tuple_field(minimum=8, doc="graph sizes n of the ladder"),
        "samples": int_field(minimum=1, doc="replicas per size"),
        "family": object_field(
            GraphFamily.from_value, doc="graph family the ladder is built from"
        ),
        "engine": choice_field(ENGINE_CHOICES, doc="measurement engine"),
        "transmission_rate": float_field(
            minimum=1e-9, doc="event-engine firing rate per armed vertex"
        ),
        "recovery_rate": float_field(
            minimum=0.0, doc="event-engine spontaneous recovery rate (BIPS)"
        ),
        "edge_rate_overrides": object_tuple_field(
            _edge_rate_triple,
            min_items=0,
            doc="per-edge contact-rate overrides as [u, v, rate] triples",
        ),
    }

    def validate(self) -> None:
        for n in self.sizes:
            self.family.validate_size(n)
        _require_event_engine(
            "E2",
            self.engine,
            {
                "transmission_rate": self.transmission_rate != 1.0,
                "recovery_rate": self.recovery_rate != 0.0,
                "edge_rate_overrides": bool(self.edge_rate_overrides),
            },
        )
        for u, v, _rate in self.edge_rate_overrides:
            for endpoint in (u, v):
                if endpoint >= min(self.sizes):
                    raise ScenarioError(
                        f"E2 edge_rate_overrides endpoint {endpoint} must fit "
                        f"the smallest ladder size {min(self.sizes)}"
                    )


@dataclass(frozen=True)
class E3Workload(Workload):
    """E3 — fractional branching ``1 + rho`` on a fixed-degree ladder."""

    sizes: tuple[int, ...]
    rhos: tuple[float, ...]
    samples: int
    degree: int

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sizes": int_tuple_field(minimum=8, doc="graph sizes n of the ladder"),
        "rhos": float_tuple_field(minimum=1e-6, doc="branching surpluses rho > 0"),
        "samples": int_field(minimum=1, doc="replicas per (rho, n) cell"),
        "degree": int_field(minimum=3, doc="regular degree of the expanders"),
    }


@dataclass(frozen=True)
class E4Workload(Workload):
    """E4 — the exact + Monte-Carlo duality check."""

    trials: int
    exact_t_max: int
    mc_n: int = 200
    mc_degree: int = 6
    mc_source: int = 117
    mc_checkpoints: tuple[int, ...] = (1, 2, 3, 5, 8)

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "trials": int_field(minimum=10, doc="Monte-Carlo trials per estimate"),
        "exact_t_max": int_field(minimum=1, doc="horizon of the exact tier"),
        "mc_n": int_field(minimum=16, doc="Monte-Carlo expander size"),
        "mc_degree": int_field(minimum=3, doc="Monte-Carlo expander degree"),
        "mc_source": int_field(minimum=1, doc="BIPS source vertex of the MC check"),
        "mc_checkpoints": int_tuple_field(minimum=1, doc="rounds t compared"),
    }

    def validate(self) -> None:
        if self.mc_source >= self.mc_n:
            raise ScenarioError(
                f"E4 mc_source {self.mc_source} must be below mc_n {self.mc_n}"
            )
        if self.mc_degree >= self.mc_n:
            raise ScenarioError(
                f"E4 mc_degree {self.mc_degree} must be below mc_n {self.mc_n}"
            )


@dataclass(frozen=True)
class E5Workload(Workload):
    """E5 — the one-step growth bound over a list of graph cases."""

    sampled_sets: int
    cases: tuple[GraphCase, ...]
    branchings: tuple[float, ...] = (2.0, 1.5, 1.25)
    exhaustive_limit: int = 12

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sampled_sets": int_field(minimum=10, doc="random infected sets per case"),
        "cases": object_tuple_field(GraphCase.from_value, doc="graphs to check"),
        "branchings": float_tuple_field(minimum=1.0, doc="branching factors 1 + rho"),
        "exhaustive_limit": int_field(
            minimum=2, doc="max vertices for exhaustive subset enumeration"
        ),
    }

    def validate(self) -> None:
        if self.exhaustive_limit > 22:
            raise ScenarioError(
                f"E5 exhaustive_limit {self.exhaustive_limit} would enumerate "
                f"2**{self.exhaustive_limit} subsets; keep it <= 22"
            )


@dataclass(frozen=True)
class E6Workload(Workload):
    """E6 — three-phase BIPS growth trajectories."""

    sizes: tuple[int, ...]
    trajectories: int
    degree: int
    boundary_constant: float = 1.0
    branching: float = 2.0

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sizes": int_tuple_field(minimum=32, doc="graph sizes n of the ladder"),
        "trajectories": int_field(minimum=1, doc="recorded trajectories per size"),
        "degree": int_field(minimum=3, doc="regular degree of the expanders"),
        "boundary_constant": float_field(
            minimum=1e-9, doc="K in the phase boundary m = K log n/(1-lambda)^2"
        ),
        "branching": float_field(minimum=1.0, doc="BIPS branching factor k"),
    }


@dataclass(frozen=True)
class E7Workload(Workload):
    """E7 — complete graphs, tori, and the k=1 random-walk baseline."""

    complete_sizes: tuple[int, ...]
    torus2d_sides: tuple[int, ...]
    torus3d_sides: tuple[int, ...]
    walk_sizes: tuple[int, ...]
    samples: int
    walk_degree: int = 8

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "complete_sizes": int_tuple_field(minimum=4, doc="complete-graph sizes"),
        "torus2d_sides": int_tuple_field(minimum=3, doc="2-D torus side lengths"),
        "torus3d_sides": int_tuple_field(minimum=3, doc="3-D torus side lengths"),
        "walk_sizes": int_tuple_field(minimum=8, doc="k=1 walk expander sizes"),
        "samples": int_field(minimum=1, doc="replicas per cell"),
        "walk_degree": int_field(minimum=3, doc="degree of the walk expanders"),
    }


@dataclass(frozen=True)
class E8Workload(Workload):
    """E8 — cover time vs spectral gap on circulants and regulars."""

    circulant_n: int
    chords: tuple[int, ...]
    regular_n: int
    degrees: tuple[int, ...]
    samples: int

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "circulant_n": int_field(minimum=16, doc="circulant family size"),
        "chords": int_tuple_field(minimum=1, doc="chord counts j of C_n(1..j)"),
        "regular_n": int_field(minimum=16, doc="random-regular family size"),
        "degrees": int_tuple_field(minimum=3, doc="random-regular degrees"),
        "samples": int_field(minimum=1, doc="replicas per graph"),
    }

    def validate(self) -> None:
        if self.circulant_n % 2 == 0:
            raise ScenarioError(
                f"E8 circulant_n must be odd (non-bipartite for every chord "
                f"set), got {self.circulant_n}"
            )
        for j in self.chords:
            if 2 * j >= self.circulant_n:
                raise ScenarioError(
                    f"E8 chord count {j} needs circulant_n > 2j, "
                    f"got {self.circulant_n}"
                )
        for degree in self.degrees:
            if degree >= self.regular_n:
                raise ScenarioError(
                    f"E8 degree {degree} must be below regular_n {self.regular_n}"
                )


@dataclass(frozen=True)
class E9Workload(Workload):
    """E9 — branching factor vs transmission budget on one expander."""

    n: int
    r: int
    branchings: tuple[float, ...]
    samples: int

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "n": int_field(minimum=32, doc="expander size"),
        "r": int_field(minimum=3, doc="expander degree"),
        "branchings": float_tuple_field(minimum=1.0, doc="COBRA branching factors"),
        "samples": int_field(minimum=1, doc="replicas per protocol"),
    }


@dataclass(frozen=True)
class E10Workload(Workload):
    """E10 — persistent-source ablation (BIPS vs plain SIS)."""

    n: int
    r: int
    sis_trials: int
    bips_trials: int
    round_cap: int = 2000

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "n": int_field(minimum=32, doc="expander size"),
        "r": int_field(minimum=3, doc="expander degree"),
        "sis_trials": int_field(minimum=10, doc="plain-SIS trials per branching"),
        "bips_trials": int_field(minimum=5, doc="BIPS trials"),
        "round_cap": int_field(minimum=10, doc="round cap per trial"),
    }


@dataclass(frozen=True)
class E11Workload(Workload):
    """E11 — geometric tails and concentration of completion times."""

    tail_n: int
    tail_r: int
    tail_samples: int
    ladder: tuple[int, ...]
    ladder_samples: int

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "tail_n": int_field(minimum=64, doc="fixed expander size for the tails"),
        "tail_r": int_field(minimum=3, doc="expander degree"),
        "tail_samples": int_field(minimum=100, doc="completion times sampled"),
        "ladder": int_tuple_field(minimum=32, doc="sizes of the concentration ladder"),
        "ladder_samples": int_field(minimum=20, doc="replicas per ladder size"),
    }


@dataclass(frozen=True)
class E12Workload(Workload):
    """E12 — COBRA/BIPS on evolving expanders."""

    sizes: tuple[int, ...]
    samples: int
    degree: int
    periods: tuple[int, ...] = (1, 4, 10_000_000)

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "sizes": int_tuple_field(minimum=16, doc="graph sizes n of the ladder"),
        "samples": int_field(minimum=1, doc="replicas per (period, n) cell"),
        "degree": int_field(minimum=3, doc="regular degree of the expanders"),
        "periods": int_tuple_field(
            minimum=1, doc="re-sampling periods (>= 10_000_000 = static)"
        ),
    }


@dataclass(frozen=True)
class E13Workload(Workload):
    """E13 — COBRA/BIPS under independent message loss."""

    n: int
    r: int
    loss_rates: tuple[float, ...]
    critical_sweep: tuple[float, ...]
    samples: int
    round_cap: int = 3000
    exact_t_max: int = 10

    FIELDS: ClassVar[dict[str, FieldSpec]] = {
        "n": int_field(minimum=64, doc="expander size"),
        "r": int_field(minimum=3, doc="expander degree"),
        "loss_rates": float_tuple_field(
            minimum=0.0, maximum=0.49, doc="supercritical loss rates p ((1-p)k > 1)"
        ),
        "critical_sweep": float_tuple_field(
            minimum=0.0, maximum=0.95, doc="loss rates swept across (1-p)k = 1"
        ),
        "samples": int_field(minimum=10, doc="replicas per loss rate"),
        "round_cap": int_field(minimum=100, doc="round cap per replica"),
        "exact_t_max": int_field(minimum=1, doc="horizon of the exact lossy duality"),
    }

    def validate(self) -> None:
        if 0.0 not in self.loss_rates:
            raise ScenarioError(
                "E13 loss_rates must include 0.0 (the lossless reference "
                "the slowdown is measured against)"
            )


#: Workload class per experiment id (presentation order).
WORKLOAD_TYPES: dict[str, type[Workload]] = {
    "E1": E1Workload,
    "E2": E2Workload,
    "E3": E3Workload,
    "E4": E4Workload,
    "E5": E5Workload,
    "E6": E6Workload,
    "E7": E7Workload,
    "E8": E8Workload,
    "E9": E9Workload,
    "E10": E10Workload,
    "E11": E11Workload,
    "E12": E12Workload,
    "E13": E13Workload,
}
