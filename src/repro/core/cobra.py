"""The COBRA (COalescing-BRAnching) random walk of Dutta et al. / the paper.

Process definition (paper §1):  given the active set ``C_t``, every
vertex ``v ∈ C_t`` independently chooses ``k`` neighbours uniformly at
random **with replacement**, and ``C_{t+1}`` is exactly the set of
chosen vertices.  Duplicated choices coalesce; an active vertex leaves
the active set unless some vertex (possibly itself) chooses it.

Cover semantics follow the paper's definition
``cov(u) = min{T : ⋃_{t=1..T} C_t = V}`` — the initial set ``C_0`` does
*not* count as covered unless re-chosen.  Pass
``include_start_in_cover=True`` for the more permissive convention.

Fractional branching (Theorem 3): ``branching = 1 + ρ`` makes every
active vertex push once, plus a second time with probability ``ρ``.
Any real ``branching >= 1`` is supported.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.core.process import (
    RoundRecord,
    SpreadingProcess,
    resolve_vertex_set,
    validate_branching,
    validate_loss,
    validate_replacement,
)
from repro.graphs.base import Graph


class CobraProcess(SpreadingProcess):
    """A COBRA process on a graph.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    start:
        Initial active set ``C_0``: a vertex or an iterable of vertices.
    branching:
        Branching factor ``k`` (any real ``>= 1``; the paper's main
        setting is ``2``).
    seed:
        Randomness source (int, ``SeedSequence``, ``Generator`` or
        ``None``).
    include_start_in_cover:
        When true, count ``C_0`` as covered at round 0 instead of the
        paper's union-from-round-1 convention.
    track_first_hits:
        Record the first round each vertex becomes active, enabling
        :meth:`first_hit_times` (hitting times ``Hit_{C_0}(v)``,
        with round 0 counting for the start set).
    replacement:
        The paper's processes sample *with* replacement (default).
        ``False`` draws distinct neighbours instead — an extension;
        the duality with without-replacement BIPS still holds (the
        proof of Theorem 4 only needs the choice-set laws to match).
    loss_probability:
        Independent per-message loss (extension): each push is dropped
        with this probability.  A round in which every message of
        every token is lost kills the process (``is_extinct``); the
        duality with equally-lossy BIPS still holds exactly.
    """

    def __init__(
        self,
        graph: Graph,
        start: int | Iterable[int],
        *,
        branching: float = 2.0,
        seed: SeedLike = None,
        include_start_in_cover: bool = False,
        track_first_hits: bool = True,
        replacement: bool = True,
        loss_probability: float = 0.0,
    ) -> None:
        super().__init__(graph, seed=seed)
        self._mandatory, self._rho = validate_branching(branching)
        validate_replacement(graph, self._mandatory, self._rho, replacement)
        self._replacement = bool(replacement)
        self._loss = validate_loss(loss_probability, replacement)
        self._branching = float(branching)
        start_vertices = resolve_vertex_set(graph, start, role="start")
        n = graph.n_vertices
        self._active = np.zeros(n, dtype=bool)
        self._active[start_vertices] = True
        self._covered = np.zeros(n, dtype=bool)
        if include_start_in_cover:
            self._covered[start_vertices] = True
        self._covered_count = int(self._covered.sum())
        self._cover_time: int | None = self._round_index if self._covered_count == n else None
        self._track_first_hits = track_first_hits
        if track_first_hits:
            self._first_hit = np.full(n, -1, dtype=np.int64)
            self._first_hit[start_vertices] = 0
        else:
            self._first_hit = None

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    @property
    def branching(self) -> float:
        """The branching factor ``k`` (possibly fractional)."""
        return self._branching

    @property
    def replacement(self) -> bool:
        """Whether neighbour draws are with replacement (paper semantics)."""
        return self._replacement

    @property
    def loss_probability(self) -> float:
        """Per-message loss probability (0 = the paper's lossless setting)."""
        return self._loss

    @property
    def is_extinct(self) -> bool:
        """Whether every token died to message loss (lossy runs only)."""
        return self._round_index > 0 and self.active_count == 0

    @property
    def active_mask(self) -> np.ndarray:
        return self._active.copy()

    @property
    def active_count(self) -> int:
        return int(self._active.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._covered.copy()

    @property
    def cumulative_count(self) -> int:
        return self._covered_count

    @property
    def is_complete(self) -> bool:
        """Whether every vertex has been covered."""
        return self._covered_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        """The cover time ``cov`` if coverage is complete, else ``None``."""
        return self._cover_time

    @property
    def cover_time(self) -> int | None:
        """Alias for :attr:`completion_time` using the paper's name."""
        return self._cover_time

    def first_hit_times(self) -> np.ndarray:
        """Per-vertex first activation round (-1 if never active yet).

        ``first_hit_times()[v]`` realises the paper's hitting time
        ``Hit_{C_0}(v)`` for this run; start vertices report 0.
        """
        if self._first_hit is None:
            raise RuntimeError("first-hit tracking was disabled for this process")
        return self._first_hit.copy()

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _draw_choices(self, active_vertices: np.ndarray) -> tuple[np.ndarray, int]:
        """All neighbour choices made this round, flattened, plus count."""
        graph = self._graph
        rng = self._rng
        if self._rho <= 0.0:
            if self._replacement:
                picks = graph.sample_neighbors(active_vertices, self._mandatory, rng)
            else:
                picks = graph.sample_distinct_neighbors(
                    active_vertices, self._mandatory, rng
                )
            chosen = picks.ravel()
            return chosen, chosen.size
        # Fractional branching: a coin per active vertex decides whether
        # it pushes k or k+1 times this round.
        extra_mask = rng.random(active_vertices.size) < self._rho
        base_sources = active_vertices[~extra_mask]
        extra_sources = active_vertices[extra_mask]
        parts: list[np.ndarray] = []
        if self._replacement:
            if base_sources.size:
                parts.append(graph.sample_neighbors(base_sources, self._mandatory, rng).ravel())
            if extra_sources.size:
                parts.append(
                    graph.sample_neighbors(extra_sources, self._mandatory + 1, rng).ravel()
                )
        else:
            if base_sources.size:
                parts.append(
                    graph.sample_distinct_neighbors(base_sources, self._mandatory, rng).ravel()
                )
            if extra_sources.size:
                parts.append(
                    graph.sample_distinct_neighbors(
                        extra_sources, self._mandatory + 1, rng
                    ).ravel()
                )
        chosen = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return chosen, chosen.size

    def step(self) -> RoundRecord:
        """Advance ``C_t -> C_{t+1}``: branch, push, coalesce.

        With message loss the chosen set is thinned after sampling; an
        all-lost round empties the active set (the process dies and
        subsequent steps record an unchanged empty state).
        """
        active_vertices = np.flatnonzero(self._active)
        if active_vertices.size == 0:
            if self._loss > 0.0:
                # A lossy run that died stays dead: absorbing state.
                self._round_index += 1
                return RoundRecord(
                    round_index=self._round_index,
                    active_count=0,
                    cumulative_count=self._covered_count,
                    newly_reached=0,
                    transmissions=0,
                )
            # Unreachable for a correctly initialised lossless process
            # (every active vertex always produces at least one choice),
            # but a stale/foreign state should fail loudly rather than loop.
            raise RuntimeError("COBRA active set is empty; process state is invalid")
        chosen, transmissions = self._draw_choices(active_vertices)
        if self._loss > 0.0 and chosen.size:
            chosen = chosen[self._rng.random(chosen.size) >= self._loss]
        next_active = np.zeros(self._graph.n_vertices, dtype=bool)
        next_active[chosen] = True
        self._active = next_active
        self._round_index += 1

        newly = next_active & ~self._covered
        newly_count = int(newly.sum())
        if newly_count:
            self._covered |= next_active
            self._covered_count += newly_count
        if self._first_hit is not None and newly_count:
            self._first_hit[newly] = self._round_index
        if self._cover_time is None and self._covered_count == self._graph.n_vertices:
            self._cover_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=int(next_active.sum()),
            cumulative_count=self._covered_count,
            newly_reached=newly_count,
            transmissions=transmissions,
        )
