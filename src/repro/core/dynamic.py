"""COBRA and BIPS on evolving graphs (an extension beyond the paper).

The paper analyses a static graph; the natural follow-up question —
studied by the same authors in later work on COBRA in dynamic
networks — is whether the logarithmic cover time survives when the
graph is re-drawn while the process runs.  This module provides:

* :class:`EvolvingRegularGraph` — a graph *provider* that re-samples a
  connected random `r`-regular graph every ``period`` rounds (period 1
  = a fresh graph each round; larger periods interpolate towards the
  static case);
* :class:`DynamicCobraProcess` / :class:`DynamicBipsProcess` — the two
  processes with the underlying graph queried from a provider at every
  round.

A **provider** is any callable ``(round_index) -> Graph`` over a fixed
vertex set.  Providers must be deterministic per round index (calling
them twice with the same index must return the same snapshot); sources
of randomness belong inside the provider, seeded independently of the
process, so one graph trajectory can be replayed against many process
seeds.  Only with-replacement sampling is supported (the paper's
setting).  Experiment E12 measures the cover-time scaling across
re-sampling periods.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.core.process import (
    RoundRecord,
    SpreadingProcess,
    resolve_vertex_set,
    validate_branching,
)
from repro.errors import ProcessError
from repro.graphs.base import Graph
from repro.graphs.generators import random_regular

#: A graph provider: maps the (1-based) round index to the snapshot in
#: force during that round.  Must be deterministic per index.
GraphProvider = Callable[[int], Graph]


class EvolvingRegularGraph:
    """Provider that re-samples a random `r`-regular graph periodically.

    Parameters
    ----------
    n, r:
        Vertex count and degree of every snapshot.
    period:
        Rounds between re-samples; ``1`` draws a fresh graph every
        round, large values approach the static case.
    seed:
        Seed of the snapshot sequence (independent of any process
        randomness).
    """

    def __init__(self, n: int, r: int, *, period: int = 1, seed: SeedLike = None) -> None:
        if period < 1:
            raise ProcessError(f"period must be >= 1, got {period}")
        self._n = n
        self._r = r
        self._period = period
        self._rng = ensure_generator(seed)
        self._current: Graph | None = None
        self._current_epoch = -1

    @property
    def n_vertices(self) -> int:
        """Vertex count of every snapshot."""
        return self._n

    @property
    def period(self) -> int:
        """Rounds between re-samples."""
        return self._period

    def __call__(self, round_index: int) -> Graph:
        """The snapshot in force during ``round_index`` (1-based).

        Round indices must be queried in non-decreasing order (the
        processes do); revisiting an older epoch is not supported.
        """
        epoch = (round_index - 1) // self._period
        if epoch < self._current_epoch:
            raise ProcessError(
                f"EvolvingRegularGraph cannot rewind to epoch {epoch} "
                f"(currently at {self._current_epoch})"
            )
        if epoch != self._current_epoch:
            self._current = random_regular(self._n, self._r, seed=self._rng)
            self._current_epoch = epoch
        assert self._current is not None
        return self._current


def static_provider(graph: Graph) -> GraphProvider:
    """Wrap a fixed graph as a provider (the degenerate dynamic case)."""
    return lambda round_index: graph


class _DynamicProcessBase(SpreadingProcess):
    """Shared plumbing: fetch and validate the per-round snapshot."""

    def __init__(self, provider: GraphProvider, *, seed: SeedLike = None) -> None:
        first = provider(1)
        super().__init__(first, seed=seed)
        self._provider = provider
        self._n = first.n_vertices

    @property
    def graph(self) -> Graph:
        """The most recently used snapshot."""
        return self._graph

    def _graph_for_round(self, round_index: int) -> Graph:
        graph = self._provider(round_index)
        if graph.n_vertices != self._n:
            raise ProcessError(
                f"provider changed the vertex set at round {round_index}: "
                f"got {graph.n_vertices}, expected {self._n}"
            )
        self._graph = graph
        return graph


class DynamicCobraProcess(_DynamicProcessBase):
    """COBRA where each round's pushes use that round's graph snapshot.

    Parameters
    ----------
    provider:
        Graph provider ``(round_index) -> Graph``.
    start:
        Initial active set (validated against snapshot 1's vertex set).
    branching:
        Branching factor (real ``>= 1``); with-replacement sampling.
    seed:
        Randomness source for the process's own draws.
    include_start_in_cover:
        As in :class:`~repro.core.cobra.CobraProcess`.
    """

    def __init__(
        self,
        provider: GraphProvider,
        start: int | Iterable[int],
        *,
        branching: float = 2.0,
        seed: SeedLike = None,
        include_start_in_cover: bool = False,
    ) -> None:
        super().__init__(provider, seed=seed)
        self._mandatory, self._rho = validate_branching(branching)
        start_vertices = resolve_vertex_set(self._graph, start, role="start")
        self._active = np.zeros(self._n, dtype=bool)
        self._active[start_vertices] = True
        self._covered = np.zeros(self._n, dtype=bool)
        if include_start_in_cover:
            self._covered[start_vertices] = True
        self._cover_time: int | None = (
            0 if int(self._covered.sum()) == self._n else None
        )

    @property
    def active_mask(self) -> np.ndarray:
        return self._active.copy()

    @property
    def active_count(self) -> int:
        return int(self._active.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._covered.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._covered.sum())

    @property
    def is_complete(self) -> bool:
        return self.cumulative_count == self._n

    @property
    def completion_time(self) -> int | None:
        return self._cover_time

    def step(self) -> RoundRecord:
        """One COBRA round on the current snapshot."""
        graph = self._graph_for_round(self._round_index + 1)
        active_vertices = np.flatnonzero(self._active)
        if active_vertices.size == 0:
            raise RuntimeError("COBRA active set is empty; process state is invalid")
        picks = graph.sample_neighbors(active_vertices, self._mandatory, self._rng)
        chosen = picks.ravel()
        transmissions = chosen.size
        if self._rho > 0.0:
            branch = self._rng.random(active_vertices.size) < self._rho
            sources = active_vertices[branch]
            if sources.size:
                extra = graph.sample_neighbors(sources, 1, self._rng).ravel()
                chosen = np.concatenate([chosen, extra])
                transmissions += extra.size
        next_active = np.zeros(self._n, dtype=bool)
        next_active[chosen] = True
        self._active = next_active
        self._round_index += 1
        newly = next_active & ~self._covered
        newly_count = int(newly.sum())
        if newly_count:
            self._covered |= next_active
        if self._cover_time is None and self.cumulative_count == self._n:
            self._cover_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=int(next_active.sum()),
            cumulative_count=self.cumulative_count,
            newly_reached=newly_count,
            transmissions=transmissions,
        )


class DynamicBipsProcess(_DynamicProcessBase):
    """BIPS where each round's contacts use that round's graph snapshot."""

    def __init__(
        self,
        provider: GraphProvider,
        source: int,
        *,
        branching: float = 2.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(provider, seed=seed)
        self._mandatory, self._rho = validate_branching(branching)
        source = int(source)
        if not 0 <= source < self._n:
            raise ProcessError(f"source {source} outside the dynamic vertex set")
        self._source = source
        self._infected = np.zeros(self._n, dtype=bool)
        self._infected[source] = True
        self._ever = self._infected.copy()
        self._infection_time: int | None = None
        self._all_vertices = np.arange(self._n, dtype=np.int64)

    @property
    def source(self) -> int:
        """The persistent source vertex."""
        return self._source

    @property
    def active_mask(self) -> np.ndarray:
        return self._infected.copy()

    @property
    def active_count(self) -> int:
        return int(self._infected.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._ever.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._ever.sum())

    @property
    def is_complete(self) -> bool:
        return self.active_count == self._n

    @property
    def completion_time(self) -> int | None:
        return self._infection_time

    def step(self) -> RoundRecord:
        """One BIPS round on the current snapshot."""
        graph = self._graph_for_round(self._round_index + 1)
        picks = graph.sample_neighbors(self._all_vertices, self._mandatory, self._rng)
        next_infected = self._infected[picks].any(axis=1)
        transmissions = picks.size - self._mandatory
        if self._rho > 0.0:
            coin = self._rng.random(self._n) < self._rho
            coin[self._source] = False
            sources = self._all_vertices[coin]
            if sources.size:
                extra = graph.sample_neighbors(sources, 1, self._rng).ravel()
                next_infected[sources] |= self._infected[extra]
                transmissions += extra.size
        next_infected[self._source] = True
        self._infected = next_infected
        self._round_index += 1
        newly = next_infected & ~self._ever
        newly_count = int(newly.sum())
        if newly_count:
            self._ever |= next_infected
        if self._infection_time is None and self.active_count == self._n:
            self._infection_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=self.active_count,
            cumulative_count=self.cumulative_count,
            newly_reached=newly_count,
            transmissions=transmissions,
        )
