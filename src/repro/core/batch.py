"""Batched ensemble simulation v2: many independent replicas, one array.

The experiment ensembles run hundreds of independent replicas of the
same configuration.  Stepping them one by one pays NumPy call overhead
per replica per round; the batch engines here evolve all replicas
simultaneously as ``(R, n)`` boolean matrices.

The v2 kernels are *allocation-lean*: every per-round buffer (the
next-state matrix, the newly-covered scratch, the flat vertex/offset
index vectors) is allocated once per shard and reused through
``out=`` / in-place operations, active/covered updates scatter through
a single flat ``ravel``-indexed assignment instead of a Python loop
over draws, and finished replicas are *compacted out* of the live
block (their rows physically removed) rather than masked, so the
per-round cost tracks the unfinished population exactly.

Semantics are identical to :class:`~repro.core.cobra.CobraProcess` and
:class:`~repro.core.bips.BipsProcess` with replacement sampling (the
paper's setting), for any real branching factor ``>= 1`` including the
fractional ``k = 1 + ρ`` regime of Theorem 3; the test suite checks
distributional agreement against the sequential engines.

Two output modes share one kernel per process:

* the *times* engines (:func:`batch_cobra_cover_times`,
  :func:`batch_bips_infection_times`) return the ``(R,)`` completion
  times;
* the *trace* engines (:func:`batch_cobra_traces`,
  :func:`batch_bips_traces`) additionally record per-round
  active / newly-covered / transmission counts as ``(R, T)`` arrays
  (a :class:`BatchTraces`), so message-accounting and phase-curve
  ensembles (E9, E6) ride the same fast path.  Recording consumes no
  extra randomness: for a fixed seed the trace engines' completion
  times are bit-identical to the times engines'.

Both engines shard their replicas into about
:data:`~repro.parallel.DEFAULT_SHARD_COUNT` fixed blocks seeded by
``SeedSequence.spawn`` children indexed by shard position.  The shard
decomposition depends only on ``n_replicas`` and ``shard_size`` —
never on ``jobs`` — so every returned array is bit-identical whether
the shards run inline (``jobs=1``) or across a process pool
(``jobs>1``).  When the pool would *spawn* workers (no ``fork``), the
graph ships once through a :class:`~repro.parallel.SharedGraph`
segment and reattaches zero-copy in each worker.

The kernels run against the :class:`~repro.backends.Backend` protocol
(``backend=`` on every entry point): the default NumPy backend keeps
the original in-place ops verbatim — bit-identical to the pre-backend
engines at every ``jobs`` count — while the array-API backend runs the
same kernels on any conforming namespace (CuPy for GPUs).  Randomness
is always drawn on the host generator, so a fixed seed produces
bit-identical results on every deterministic backend, and the replica
bookkeeping (completion times, replica ids, trace matrices) stays on
the host regardless of where the ``(R, n)`` evolution happens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, ensure_generator, spawn_seed_sequences
from repro.backends import Backend, resolve_backend
from repro.core.process import (
    resolve_vertex,
    validate_branching,
)
from repro.core.runner import default_max_rounds
from repro.errors import BackendError, CoverTimeoutError, InfectionTimeoutError
from repro.graphs.base import Graph
from repro.parallel import (
    acquire_shared_graph,
    map_shards,
    pool_start_method,
    resolve_shared_graph,
    shard_bounds,
    will_pool,
)


@dataclass(frozen=True)
class BatchTraces:
    """Per-round curves of a batched ensemble, one row per replica.

    All matrices share the shape ``(n_replicas, rounds)``; column
    ``t`` describes round ``t + 1``.  A replica's columns beyond its
    completion round are zero (nothing happens after completion), so
    row sums and row maxima are meaningful without masking.

    **Timeout contract.**  Under ``raise_on_timeout=False`` a replica
    that never completes is reported with ``completion_times == -1``
    and its row stays *fully populated* through every recorded round —
    a timed-out replica keeps evolving until ``max_rounds``, so unlike
    a completed replica it has no trailing zero columns.  The
    aggregate helpers (:meth:`total_transmissions`,
    :meth:`peak_transmissions`, :meth:`cumulative_counts`) therefore
    include timed-out rows *as observed up to the round cap*: totals
    are truncated at ``max_rounds`` and peaks are over the observed
    rounds.  For COBRA a timed-out row's cumulative count stays below
    ``n`` (coverage is monotone and is the completion criterion); for
    BIPS the completion criterion is *simultaneous* full infection, so
    a timed-out row never shows ``n`` in ``active_counts`` but its
    cumulative (ever-infected) count may still reach ``n``.  This is
    deliberate — the rows describe what the truncated run did, not an
    estimate of a complete run.  Callers comparing against completed
    runs should filter with :meth:`completed_mask`.

    Attributes
    ----------
    completion_times:
        ``(R,)`` completion round per replica; ``-1`` marks a timeout.
    active_counts:
        ``|C_t|`` (COBRA) / ``|A_t|`` (BIPS) after each round.
    newly_counts:
        Vertices covered (COBRA) / ever-infected (BIPS) for the first
        time in each round.
    transmissions:
        Messages sent in each round (BIPS: contacts made, the
        persistent source excluded, matching the sequential engines).
    initial_active:
        ``|C_0|`` / ``|A_0|`` — the batch engines start from a single
        vertex, so this is 1.
    initial_cumulative:
        Covered/infected count at round 0 (0 for COBRA under the
        paper's convention, 1 with ``include_start_in_cover``; 1 for
        BIPS).
    """

    completion_times: np.ndarray
    active_counts: np.ndarray
    newly_counts: np.ndarray
    transmissions: np.ndarray
    initial_active: int
    initial_cumulative: int

    @property
    def n_replicas(self) -> int:
        """Number of replicas (rows)."""
        return int(self.completion_times.size)

    @property
    def rounds(self) -> int:
        """Number of recorded rounds ``T`` (columns)."""
        return int(self.active_counts.shape[1])

    def completed_mask(self) -> np.ndarray:
        """``(R,)`` boolean mask of replicas that reached their goal.

        ``False`` rows timed out (``completion_times == -1``; only
        possible under ``raise_on_timeout=False``) and carry truncated
        curves — see the class docstring's timeout contract.
        """
        return self.completion_times >= 0

    def cumulative_counts(self) -> np.ndarray:
        """``(R, T)`` covered/ever-infected totals after each round.

        A timed-out COBRA row plateaus below ``n``; a timed-out BIPS
        row may still reach ``n`` here while never completing, because
        completion requires all vertices *simultaneously* infected
        (timeout contract above).
        """
        # Trace matrices are host-resident whatever backend evolved the
        # state, so the aggregation runs the reference backend's cumsum
        # — the one protocol op the trace path (not the round loop)
        # consumes.
        xp = resolve_backend("numpy")
        return self.initial_cumulative + xp.cumsum(self.newly_counts, axis=1)

    def total_transmissions(self) -> np.ndarray:
        """``(R,)`` messages summed over each replica's whole run.

        For a timed-out row this is the total over the rounds actually
        run (truncated at ``max_rounds``), a *lower bound* on what a
        completed run would have sent.
        """
        return self.transmissions.sum(axis=1)

    def peak_transmissions(self) -> np.ndarray:
        """``(R,)`` largest per-round message count of each replica.

        Timed-out rows contribute the peak over their observed rounds.
        """
        return self.transmissions.max(axis=1)

    def active_trajectory(self, replica: int) -> np.ndarray:
        """``[|A_0|, |A_1|, ..., |A_T_r|]`` for one replica.

        Index = round, starting at round 0; a timed-out replica's
        trajectory spans all recorded rounds.
        """
        stop = int(self.completion_times[replica])
        if stop < 0:
            stop = self.rounds
        head = np.asarray([self.initial_active], dtype=np.int64)
        return np.concatenate([head, self.active_counts[replica, :stop]])


class _ShardTraceRecorder:
    """Per-round counters of one shard, scattered by replica id.

    The kernels hand in live-block vectors (one entry per *unfinished*
    replica); the recorder scatters them into fixed ``(R, capacity)``
    matrices, doubling the round capacity as needed, so recording adds
    no per-round allocation in the steady state.  Recording is a
    host-side concern: kernels transfer their per-round count vectors
    with :meth:`~repro.backends.Backend.to_numpy` (free on the NumPy
    backend), so trace matrices are ordinary host arrays whatever
    backend evolved the state.
    """

    def __init__(self, n_replicas: int) -> None:
        self._n = n_replicas
        self._capacity = 64
        self._active = np.zeros((n_replicas, self._capacity), dtype=np.int64)
        self._newly = np.zeros((n_replicas, self._capacity), dtype=np.int64)
        self._transmissions = np.zeros((n_replicas, self._capacity), dtype=np.int64)
        self._rounds = 0

    def record(
        self,
        replica_ids: np.ndarray,
        active: np.ndarray,
        newly: np.ndarray,
        transmissions: np.ndarray,
    ) -> None:
        if self._rounds == self._capacity:
            self._capacity *= 2
            grow = lambda a: np.concatenate([a, np.zeros_like(a)], axis=1)  # noqa: E731
            self._active = grow(self._active)
            self._newly = grow(self._newly)
            self._transmissions = grow(self._transmissions)
        column = self._rounds
        self._active[replica_ids, column] = active
        self._newly[replica_ids, column] = newly
        self._transmissions[replica_ids, column] = transmissions
        self._rounds += 1

    def finalize(self, completion_times: np.ndarray) -> tuple[np.ndarray, ...]:
        rounds = self._rounds
        return (
            completion_times,
            self._active[:, :rounds].copy(),
            self._newly[:, :rounds].copy(),
            self._transmissions[:, :rounds].copy(),
        )


def _cobra_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray | tuple[np.ndarray, ...]:
    """One shard of COBRA replicas; ``-1`` marks a timeout.

    Returns the cover times, or ``(times, active, newly,
    transmissions)`` matrices when tracing is requested.  All array
    work flows through the shipped backend; completion times and
    replica-id bookkeeping stay host-side.
    """
    graph, start, mandatory, rho, max_rounds, include_start_in_cover, record, backend = (
        context
    )
    xp = resolve_backend(backend)
    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    # Rows are padded to a power-of-two pitch so the flat active
    # positions decompose into (row base, vertex) with a mask instead
    # of an integer division; padding columns are never set.
    stride = 1 << (n - 1).bit_length() if n > 1 else 1
    vertex_mask = stride - 1

    # Row i of every buffer belongs to replica ``replica_ids[i]``; rows
    # of finished replicas are compacted away, so ``[:live]`` is always
    # the whole unfinished population and nothing else.
    active = xp.zeros((n_replicas, stride), "bool")
    active[:, start] = True
    covered = xp.zeros((n_replicas, stride), "bool")
    if include_start_in_cover:
        covered[:, start] = True
    # Scratch for the per-round counts; fully recomputed from
    # ``covered`` before every read, so no initial fill is needed.
    covered_counts = xp.empty(n_replicas, "int64")
    cover_times = np.full(n_replicas, -1, dtype=np.int64)
    replica_ids = np.arange(n_replicas)
    scratch = xp.zeros((n_replicas, stride), "bool")
    newly = xp.empty((n_replicas, stride), "bool") if record else None
    recorder = _ShardTraceRecorder(n_replicas) if record else None

    live = n_replicas
    for round_index in range(1, max_rounds + 1):
        if live == 0:
            break
        flat_active = xp.ravel(active[:live])
        positions = xp.flatnonzero(flat_active)
        columns = positions & vertex_mask
        bases = positions - columns
        picks = graph.sample_neighbors(columns, mandatory, rng, backend=xp)
        next_state = xp.fill_false(scratch[:live])
        flat_next = xp.ravel(next_state)
        # Single flat scatter for all mandatory draws of all replicas.
        picks += bases[:, None]
        xp.put_true(flat_next, picks)
        branch = None
        if rho > 0.0:
            branch = xp.random(rng, xp.size(columns)) < rho
            if xp.any_scalar(branch):
                extra = xp.ravel(
                    graph.sample_neighbors(columns[branch], 1, rng, backend=xp)
                )
                xp.put_true(flat_next, bases[branch] + extra)
        cumulative = covered[:live]
        if recorder is not None:
            fresh = xp.greater(next_state, cumulative, out=newly[:live])  # next & ~covered
            fresh_counts = xp.sum_along_last(fresh)
            rows = bases // stride
            transmissions = xp.bincount(rows, live) * mandatory
            if branch is not None:
                transmissions = transmissions + xp.bincount(rows[branch], live)
            recorder.record(
                replica_ids[:live],
                xp.to_numpy(xp.sum_along_last(next_state)),
                xp.to_numpy(fresh_counts),
                xp.to_numpy(transmissions),
            )
        cumulative |= next_state
        counts = xp.sum_along_last(cumulative, out=covered_counts[:live])
        if xp.max_scalar(counts) == n:
            done = counts == n
            keep = ~done
            done_np = xp.to_numpy(done)
            keep_np = ~done_np
            cover_times[replica_ids[:live][done_np]] = round_index
            live = int(keep_np.sum())
            active[:live] = next_state[keep]
            covered[:live] = cumulative[keep]
            replica_ids[:live] = replica_ids[: keep_np.size][keep_np]
        else:
            active, scratch = scratch, active

    if recorder is None:
        return cover_times
    return recorder.finalize(cover_times)


def _bips_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray | tuple[np.ndarray, ...]:
    """One shard of BIPS replicas; ``-1`` marks a timeout.

    Returns the infection times, or the trace matrices when requested.
    """
    graph, source, mandatory, rho, max_rounds, record, backend = context
    xp = resolve_backend(backend)
    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices

    infected = xp.zeros((n_replicas, n), "bool")
    infected[:, source] = True
    infection_times = np.full(n_replicas, -1, dtype=np.int64)
    replica_ids = np.arange(n_replicas)
    scratch = xp.empty((n_replicas, n), "bool")
    # Every vertex of every live replica samples each round; the flat
    # vertex list and the per-slot state-row offsets never change, so
    # both are built once and sliced to the live block.
    flat_vertices = xp.tile(xp.arange(n), n_replicas)
    row_offsets = xp.repeat(xp.arange(n_replicas) * n, n)
    hits_buffer = xp.empty((n_replicas * n, mandatory), "bool")
    recorder = _ShardTraceRecorder(n_replicas) if record else None
    if recorder is not None:
        ever_infected = xp.empty((n_replicas, n), "bool")
        ever_infected[...] = infected
        newly = xp.empty((n_replicas, n), "bool")

    live = n_replicas
    for round_index in range(1, max_rounds + 1):
        if live == 0:
            break
        slots = live * n
        vertices = flat_vertices[:slots]
        picks = graph.sample_neighbors(vertices, mandatory, rng, backend=xp)
        picks += row_offsets[:slots, None]
        state_flat = xp.ravel(infected[:live])
        hits = xp.take(state_flat, picks, out=hits_buffer[:slots])
        next_state = scratch[:live]
        next_flat = xp.any_along_last(hits, out=xp.ravel(next_state))
        coin = None
        n_extra = 0
        if rho > 0.0:
            coin = xp.random(rng, slots) < rho
            extra_slots = xp.flatnonzero(coin)
            n_extra = xp.size(extra_slots)
            if n_extra:
                extra = xp.ravel(
                    graph.sample_neighbors(vertices[extra_slots], 1, rng, backend=xp)
                )
                xp.or_at(
                    next_flat,
                    extra_slots,
                    xp.take(state_flat, extra + row_offsets[extra_slots]),
                )
        next_state[:, source] = True
        counts = xp.sum_along_last(next_state)
        if recorder is not None:
            fresh = xp.greater(next_state, ever_infected[:live], out=newly[:live])
            fresh_counts = xp.sum_along_last(fresh)
            ever_infected[:live] |= next_state
            # Contacts per replica, the persistent source's excluded
            # (its draws exist only for vectorisation, like the
            # sequential engine).
            transmissions = xp.full(live, (n - 1) * mandatory, "int64")
            if coin is not None and n_extra:
                non_source = vertices[extra_slots] != source
                transmissions = transmissions + xp.bincount(
                    extra_slots[non_source] // n, live
                )
            recorder.record(
                replica_ids[:live],
                xp.to_numpy(counts),
                xp.to_numpy(fresh_counts),
                xp.to_numpy(transmissions),
            )
        done = counts == n
        # Gate the device-to-host mask transfer on a scalar check, like
        # the COBRA kernel: most rounds finish nothing, and the
        # steady-state loop should stay transfer-free on GPU backends.
        if xp.any_scalar(done):
            done_np = xp.to_numpy(done)
            keep = ~done
            keep_np = ~done_np
            infection_times[replica_ids[:live][done_np]] = round_index
            live = int(keep_np.sum())
            infected[:live] = next_state[keep]
            replica_ids[:live] = replica_ids[: keep_np.size][keep_np]
            if recorder is not None:
                ever_infected[:live] = ever_infected[: keep_np.size][keep]
        else:
            infected, scratch = scratch, infected

    if recorder is None:
        return infection_times
    return recorder.finalize(infection_times)


def _resolve_engine_backend(graph: Graph, backend: "str | Backend | None") -> Backend:
    """Resolve and validate the backend for one batch entry point.

    Non-NumPy backends only support the regular-degree sampling fast
    path, so irregular graphs are rejected here — before any shard is
    seeded — with a clear error instead of failing mid-kernel.
    """
    resolved = resolve_backend(backend)
    if not resolved.is_numpy and not graph.is_regular:
        raise BackendError(
            f"backend {resolved.spec!r} supports only regular graphs "
            f"(the degree-regular sampling fast path); graph "
            f"{graph.name!r} has degrees "
            f"{graph.min_degree}..{graph.max_degree}"
        )
    return resolved


def _resolve_shard_kernel(engine_backend: Backend, process: str):
    """Pick the shard kernel the resolved backend should run.

    Backends that provide compiled kernels (the numba tier) get the
    Numba-JIT shards from :mod:`repro.core.compiled` — warmed here, in
    the parent, so the on-disk compile cache is populated before any
    worker pool starts and spawn workers never pay the JIT cost.
    Everything else runs the reference kernels above.  Both kernel
    families are module-level functions, so either pickles to spawn
    workers.
    """
    if engine_backend.provides_compiled_kernels:
        from repro.core import compiled

        compiled.ensure_warm()
        if process == "cobra":
            return compiled.compiled_cobra_shard
        return compiled.compiled_bips_shard
    return _cobra_shard if process == "cobra" else _bips_shard


def _check_memory_budget(
    graph: Graph,
    engine_backend: Backend,
    process: str,
    n_replicas: int,
    mandatory: int,
    record: bool,
    shard_size: int | None,
    jobs: int | None,
) -> None:
    """Fail fast when the dense ``(R, n)`` state cannot fit in memory.

    Host-memory estimation only applies to the NumPy reference backend
    — device backends budget their own memory.
    """
    if not engine_backend.is_numpy:
        return
    from repro.core.memory import check_dense_state_budget

    check_dense_state_budget(
        graph,
        process=process,
        n_replicas=n_replicas,
        mandatory=mandatory,
        record=record,
        shard_size=shard_size,
        jobs=jobs,
    )


def _run_sharded(
    kernel,
    graph: Graph,
    parameters: tuple,
    n_replicas: int,
    seed: SeedLike,
    shard_size: int | None,
    jobs: int | None,
) -> list:
    """Shard ``n_replicas`` rows, seed each shard, run, return raw results.

    When the shards will run on a spawn-started pool (no ``fork``) the
    graph is published through a :class:`~repro.parallel.SharedGraph`
    so every worker reattaches the CSR arrays zero-copy instead of
    unpickling its own copy.  Inside an active
    :func:`~repro.parallel.shared_graph_scope` (experiment runs and
    campaign entries open one) the publication is cached and reused
    across every ensemble call on the same graph — one copy per graph
    per scope; otherwise the segments are freed before returning, even
    on error.  A backend travelling in ``parameters`` pickles as its
    spec string and re-resolves inside each worker.
    """
    bounds = shard_bounds(n_replicas, shard_size)
    seeds = spawn_seed_sequences(seed, len(bounds))
    tasks = [(start, stop, shard_seed) for (start, stop), shard_seed in zip(bounds, seeds)]
    # Graphs that pickle to a few bytes (implicit topologies) ship
    # directly — publishing them would require CSR arrays they don't
    # have, and there is nothing worth sharing anyway.
    compact = getattr(graph, "ships_compactly", False)
    if not compact and will_pool(jobs, len(tasks)) and pool_start_method() != "fork":
        handle, caller_owns = acquire_shared_graph(graph)
        try:
            return map_shards(kernel, (handle, *parameters), tasks, jobs=jobs)
        finally:
            if caller_owns:
                handle.unlink()
    return map_shards(kernel, (graph, *parameters), tasks, jobs=jobs)


def _merge_traces(results: list) -> tuple[np.ndarray, ...]:
    """Concatenate per-shard trace tuples, padding rounds to the longest."""
    times = np.concatenate([shard[0] for shard in results])
    rounds = max(shard[1].shape[1] for shard in results)

    def stack(position: int) -> np.ndarray:
        padded = [
            np.pad(shard[position], ((0, 0), (0, rounds - shard[position].shape[1])))
            if shard[position].shape[1] < rounds
            else shard[position]
            for shard in results
        ]
        return np.concatenate(padded, axis=0)

    return times, stack(1), stack(2), stack(3)


def _check_timeouts(
    times: np.ndarray,
    raise_on_timeout: bool,
    process_name: str,
    goal: str,
    graph: Graph,
    max_rounds: int,
    error_cls: type = CoverTimeoutError,
) -> None:
    timed_out = int((times < 0).sum())
    if timed_out and raise_on_timeout:
        raise error_cls(
            f"{timed_out}/{times.size} {process_name} replicas on {graph.name} "
            f"did not {goal} within {max_rounds} rounds"
        )


def batch_cobra_cover_times(
    graph: Graph,
    start: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    include_start_in_cover: bool = False,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> np.ndarray:
    """Cover times of ``n_replicas`` independent COBRA runs.

    Equivalent in distribution to ``n_replicas`` independent
    :class:`~repro.core.cobra.CobraProcess` runs from ``start`` (with
    replacement sampling), but evolved as boolean matrices, one shard
    of ``shard_size`` replicas at a time.  ``jobs`` distributes the
    shards over a process pool (``None`` = the process-wide default,
    ``0`` = one worker per CPU); for a fixed ``seed`` and
    ``shard_size`` the result is bit-identical for every ``jobs``.
    ``backend`` selects the array backend (``None`` = the process-wide
    default, normally NumPy); deterministic backends are bit-identical
    to each other because all draws come from the host generator.

    Returns an int64 array of length ``n_replicas``; timeouts raise
    :class:`~repro.errors.CoverTimeoutError` (default) or are reported
    as ``-1``.
    """
    mandatory, rho = validate_branching(branching)
    start = resolve_vertex(graph, start, role="start")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    engine_backend = _resolve_engine_backend(graph, backend)
    _check_memory_budget(
        graph, engine_backend, "cobra", n_replicas, mandatory, False, shard_size, jobs
    )
    parameters = (
        start, mandatory, rho, max_rounds, include_start_in_cover, False, engine_backend,
    )
    kernel = _resolve_shard_kernel(engine_backend, "cobra")
    times = np.concatenate(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(times, raise_on_timeout, "COBRA", "cover", graph, max_rounds)
    return times


def batch_cobra_traces(
    graph: Graph,
    start: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    include_start_in_cover: bool = False,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> BatchTraces:
    """Per-round curves of ``n_replicas`` independent COBRA runs.

    The trace sibling of :func:`batch_cobra_cover_times`: same kernel,
    same randomness (for a fixed seed the ``completion_times`` are
    bit-identical to the times engine's output), but each round's
    active / newly-covered / transmission counts are recorded per
    replica, so message-accounting ensembles leave the sequential
    path.  Sharding, ``jobs``, and ``backend`` follow the same
    seed-stable contract.  With ``raise_on_timeout=False`` timed-out
    rows stay in the returned matrices — see the
    :class:`BatchTraces` timeout contract.
    """
    mandatory, rho = validate_branching(branching)
    start = resolve_vertex(graph, start, role="start")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    engine_backend = _resolve_engine_backend(graph, backend)
    _check_memory_budget(
        graph, engine_backend, "cobra", n_replicas, mandatory, True, shard_size, jobs
    )
    parameters = (
        start, mandatory, rho, max_rounds, include_start_in_cover, True, engine_backend,
    )
    kernel = _resolve_shard_kernel(engine_backend, "cobra")
    times, active, newly, transmissions = _merge_traces(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(times, raise_on_timeout, "COBRA", "cover", graph, max_rounds)
    return BatchTraces(
        completion_times=times,
        active_counts=active,
        newly_counts=newly,
        transmissions=transmissions,
        initial_active=1,
        initial_cumulative=1 if include_start_in_cover else 0,
    )


def batch_bips_infection_times(
    graph: Graph,
    source: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> np.ndarray:
    """Infection times of ``n_replicas`` independent BIPS runs.

    All vertices of all unfinished replicas sample each round, so the
    inner loop is a single ``(U·n, k)`` gather for `U` unfinished
    replicas per shard.  Sharding, ``jobs``, and ``backend`` follow
    the same seed-stable contract as
    :func:`batch_cobra_cover_times`.  Timeouts raise
    :class:`~repro.errors.InfectionTimeoutError` (default) or are
    reported as ``-1``.
    """
    mandatory, rho = validate_branching(branching)
    source = resolve_vertex(graph, source, role="source")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    engine_backend = _resolve_engine_backend(graph, backend)
    _check_memory_budget(
        graph, engine_backend, "bips", n_replicas, mandatory, False, shard_size, jobs
    )
    parameters = (source, mandatory, rho, max_rounds, False, engine_backend)
    kernel = _resolve_shard_kernel(engine_backend, "bips")
    times = np.concatenate(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(
        times, raise_on_timeout, "BIPS", "infect", graph, max_rounds,
        error_cls=InfectionTimeoutError,
    )
    return times


def batch_bips_traces(
    graph: Graph,
    source: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> BatchTraces:
    """Per-round curves of ``n_replicas`` independent BIPS runs.

    The trace sibling of :func:`batch_bips_infection_times` (same
    kernel and randomness; bit-identical ``completion_times``), used by
    the phase-curve ensembles.  ``active_counts`` are the infected-set
    sizes ``|A_t|`` the proof of Theorem 2 tracks.  Timeouts raise
    :class:`~repro.errors.InfectionTimeoutError`; with
    ``raise_on_timeout=False`` timed-out rows stay in the matrices
    under the :class:`BatchTraces` timeout contract.
    """
    mandatory, rho = validate_branching(branching)
    source = resolve_vertex(graph, source, role="source")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    engine_backend = _resolve_engine_backend(graph, backend)
    _check_memory_budget(
        graph, engine_backend, "bips", n_replicas, mandatory, True, shard_size, jobs
    )
    parameters = (source, mandatory, rho, max_rounds, True, engine_backend)
    kernel = _resolve_shard_kernel(engine_backend, "bips")
    times, active, newly, transmissions = _merge_traces(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(
        times, raise_on_timeout, "BIPS", "infect", graph, max_rounds,
        error_cls=InfectionTimeoutError,
    )
    return BatchTraces(
        completion_times=times,
        active_counts=active,
        newly_counts=newly,
        transmissions=transmissions,
        initial_active=1,
        initial_cumulative=1,
    )
