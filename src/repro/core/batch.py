"""Batched ensemble simulation: many independent replicas, one array.

The experiment ensembles run hundreds of independent replicas of the
same configuration.  Stepping them one by one pays NumPy call overhead
per replica per round; the batch engines here evolve all replicas
simultaneously as ``(R, n)`` boolean matrices, which makes ensemble
measurement 10–50× faster for small graphs and large `R`.

Semantics are identical to :class:`~repro.core.cobra.CobraProcess` and
:class:`~repro.core.bips.BipsProcess` with replacement sampling (the
paper's setting), for any real branching factor ``>= 1`` including the
fractional ``k = 1 + ρ`` regime of Theorem 3; the test suite checks
distributional agreement against the sequential engines.  Completed
replicas are frozen (their rows stop being simulated) so the loop cost
tracks the unfinished population.

Both engines shard their replicas into about
:data:`~repro.parallel.DEFAULT_SHARD_COUNT` fixed blocks seeded by
``SeedSequence.spawn`` children indexed by shard position.  The shard
decomposition depends only on ``n_replicas`` and ``shard_size`` —
never on ``jobs`` — so the returned array is bit-identical whether the
shards run inline (``jobs=1``) or across a process pool (``jobs>1``).
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, ensure_generator, spawn_seed_sequences
from repro.core.process import (
    resolve_vertex,
    validate_branching,
)
from repro.core.runner import default_max_rounds
from repro.errors import CoverTimeoutError
from repro.graphs.base import Graph
from repro.parallel import map_shards, shard_bounds


def _sample_columns(
    graph: Graph, vertices: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform neighbour draws for a flat vertex array, shape ``(len, k)``."""
    return graph.sample_neighbors(vertices, k, rng)


def _cobra_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """Cover times for one shard of replicas; ``-1`` marks a timeout."""
    graph, start, mandatory, rho, max_rounds, include_start_in_cover = context
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices

    active = np.zeros((n_replicas, n), dtype=bool)
    active[:, start] = True
    covered = np.zeros((n_replicas, n), dtype=bool)
    if include_start_in_cover:
        covered[:, start] = True
    cover_times = np.full(n_replicas, -1, dtype=np.int64)
    unfinished = np.arange(n_replicas)
    covered_counts = covered.sum(axis=1)

    for round_index in range(1, max_rounds + 1):
        if unfinished.size == 0:
            break
        rows, columns = np.nonzero(active[unfinished])
        replica_of_row = unfinished[rows]
        picks = _sample_columns(graph, columns, mandatory, rng)
        next_active = np.zeros((n_replicas, n), dtype=bool)
        for draw in range(mandatory):
            next_active[replica_of_row, picks[:, draw]] = True
        if rho > 0.0:
            branch = rng.random(columns.size) < rho
            if branch.any():
                extra = _sample_columns(graph, columns[branch], 1, rng).ravel()
                next_active[replica_of_row[branch], extra] = True
        active[unfinished] = next_active[unfinished]
        newly = next_active[unfinished] & ~covered[unfinished]
        covered[unfinished] |= next_active[unfinished]
        covered_counts[unfinished] += newly.sum(axis=1)
        done = unfinished[covered_counts[unfinished] == n]
        if done.size:
            cover_times[done] = round_index
            unfinished = unfinished[covered_counts[unfinished] < n]

    return cover_times


def _bips_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """Infection times for one shard of replicas; ``-1`` marks a timeout."""
    graph, source, mandatory, rho, max_rounds = context
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices

    infected = np.zeros((n_replicas, n), dtype=bool)
    infected[:, source] = True
    infection_times = np.full(n_replicas, -1, dtype=np.int64)
    unfinished = np.arange(n_replicas)
    all_vertices = np.arange(n, dtype=np.int64)

    for round_index in range(1, max_rounds + 1):
        if unfinished.size == 0:
            break
        u_count = unfinished.size
        flat_vertices = np.tile(all_vertices, u_count)
        picks = _sample_columns(graph, flat_vertices, mandatory, rng)
        picks = picks.reshape(u_count, n, mandatory)
        state = infected[unfinished]
        row_of = np.arange(u_count)[:, None, None]
        next_state = state[row_of, picks].any(axis=2)
        if rho > 0.0:
            coin = rng.random((u_count, n)) < rho
            extra = _sample_columns(graph, flat_vertices, 1, rng).reshape(u_count, n)
            next_state |= coin & state[np.arange(u_count)[:, None], extra]
        next_state[:, source] = True
        infected[unfinished] = next_state
        counts = next_state.sum(axis=1)
        done_mask = counts == n
        done = unfinished[done_mask]
        if done.size:
            infection_times[done] = round_index
            unfinished = unfinished[~done_mask]

    return infection_times


def _run_sharded(
    kernel,
    context: tuple,
    n_replicas: int,
    seed: SeedLike,
    shard_size: int | None,
    jobs: int | None,
) -> np.ndarray:
    """Shard ``n_replicas`` rows, seed each shard, run, and concatenate."""
    bounds = shard_bounds(n_replicas, shard_size)
    seeds = spawn_seed_sequences(seed, len(bounds))
    tasks = [(start, stop, shard_seed) for (start, stop), shard_seed in zip(bounds, seeds)]
    return np.concatenate(map_shards(kernel, context, tasks, jobs=jobs))


def batch_cobra_cover_times(
    graph: Graph,
    start: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    include_start_in_cover: bool = False,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
) -> np.ndarray:
    """Cover times of ``n_replicas`` independent COBRA runs.

    Equivalent in distribution to ``n_replicas`` independent
    :class:`~repro.core.cobra.CobraProcess` runs from ``start`` (with
    replacement sampling), but evolved as boolean matrices, one shard
    of ``shard_size`` replicas at a time.  ``jobs`` distributes the
    shards over a process pool (``None`` = the process-wide default,
    ``0`` = one worker per CPU); for a fixed ``seed`` and
    ``shard_size`` the result is bit-identical for every ``jobs``.

    Returns an int64 array of length ``n_replicas``; timeouts raise
    (default) or are reported as ``-1``.
    """
    mandatory, rho = validate_branching(branching)
    start = resolve_vertex(graph, start, role="start")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    context = (graph, start, mandatory, rho, max_rounds, include_start_in_cover)
    times = _run_sharded(_cobra_shard, context, n_replicas, seed, shard_size, jobs)
    timed_out = int((times < 0).sum())
    if timed_out and raise_on_timeout:
        raise CoverTimeoutError(
            f"{timed_out}/{n_replicas} COBRA replicas on {graph.name} "
            f"did not cover within {max_rounds} rounds"
        )
    return times


def batch_bips_infection_times(
    graph: Graph,
    source: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
) -> np.ndarray:
    """Infection times of ``n_replicas`` independent BIPS runs.

    All vertices of all unfinished replicas sample each round, so the
    inner loop is a single ``(U·n, k)`` gather for `U` unfinished
    replicas per shard.  Sharding and ``jobs`` follow the same
    seed-stable contract as :func:`batch_cobra_cover_times`.
    """
    mandatory, rho = validate_branching(branching)
    source = resolve_vertex(graph, source, role="source")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    context = (graph, source, mandatory, rho, max_rounds)
    times = _run_sharded(_bips_shard, context, n_replicas, seed, shard_size, jobs)
    timed_out = int((times < 0).sum())
    if timed_out and raise_on_timeout:
        raise CoverTimeoutError(
            f"{timed_out}/{n_replicas} BIPS replicas on {graph.name} "
            f"did not infect within {max_rounds} rounds"
        )
    return times
