"""Fail-fast memory budgeting for the dense batch/trace engines.

The dense kernels allocate several ``(shard_rows, n)``-shaped buffers
per *concurrently running* shard.  At million-vertex scale a mis-sized
call no longer fails with a Python exception — the worker pool gets
OOM-killed mid-campaign, which surfaces as an opaque
``BrokenProcessPool`` (or a dead machine) long after the mistake.  The
guard here estimates the dense allocation up front from the same
quantities the kernels use, compares it against the available physical
memory, and raises a clear :class:`~repro.errors.ExperimentError`
naming the required bytes and the sparse-engine escape hatch *before*
any shard is seeded.

Deliberately approximate and permissive: the estimate counts only the
dominant ``(rows, n)``-proportional buffers (not frontier arrays, trace
recorders, or interpreter overhead) and only trips when even that
underestimate exceeds what the machine can offer.  Set
``REPRO_DENSE_STATE_LIMIT_BYTES`` to override the detected limit (CI
and tests pin it; ``0`` disables the guard).
"""

from __future__ import annotations

import os

from repro.errors import ExperimentError
from repro.graphs.base import Graph
from repro.parallel import resolve_jobs, shard_bounds, will_pool

#: Environment override for the byte budget; ``0`` disables the guard.
LIMIT_ENV = "REPRO_DENSE_STATE_LIMIT_BYTES"


def dense_state_limit_bytes() -> int | None:
    """The byte budget the dense engines may plan against, or ``None``.

    The :data:`LIMIT_ENV` variable wins when set (``0`` disables the
    guard); otherwise the available *physical* memory reported by
    ``sysconf`` is used.  Platforms exposing neither return ``None``
    and the guard stays silent.
    """
    override = os.environ.get(LIMIT_ENV)
    if override is not None:
        limit = int(override)
        return limit if limit > 0 else None
    try:
        pages = os.sysconf("SC_AVPHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (AttributeError, OSError, ValueError):
        return None
    if pages <= 0 or page_size <= 0:
        return None
    return pages * page_size


def estimate_dense_shard_bytes(
    process: str, n_vertices: int, shard_rows: int, mandatory: int, record: bool
) -> int:
    """Dominant dense-state bytes of one running shard.

    Mirrors the allocations in :mod:`repro.core.batch`: COBRA keeps
    three (four when tracing) ``(rows, stride)`` bool matrices at a
    power-of-two column pitch; BIPS keeps two (four when tracing)
    ``(rows, n)`` bool matrices, two ``(rows·n,)`` int64 index vectors,
    and the ``(rows·n, mandatory)`` bool hits buffer.
    """
    if process == "cobra":
        stride = 1 << (n_vertices - 1).bit_length() if n_vertices > 1 else 1
        matrices = 4 if record else 3
        return matrices * shard_rows * stride
    if process == "bips":
        bool_matrices = 4 if record else 2
        per_row = bool_matrices * n_vertices + 16 * n_vertices + n_vertices * mandatory
        return shard_rows * per_row
    raise ValueError(f"unknown process {process!r}")


def check_dense_state_budget(
    graph: Graph,
    *,
    process: str,
    n_replicas: int,
    mandatory: int,
    record: bool,
    shard_size: int | None,
    jobs: int | None,
) -> None:
    """Raise :class:`ExperimentError` if the dense state cannot fit.

    Estimates the per-shard allocation times the number of shards that
    will actually run at once (1 inline, ``min(jobs, shards)`` under a
    pool) and compares it to :func:`dense_state_limit_bytes`.
    """
    limit = dense_state_limit_bytes()
    if limit is None:
        return
    bounds = shard_bounds(n_replicas, shard_size)
    widest = max(stop - start for start, stop in bounds)
    per_shard = estimate_dense_shard_bytes(
        process, graph.n_vertices, widest, mandatory, record
    )
    concurrent = (
        min(resolve_jobs(jobs), len(bounds)) if will_pool(jobs, len(bounds)) else 1
    )
    required = per_shard * concurrent
    if required <= limit:
        return
    raise ExperimentError(
        f"dense {process.upper()} state needs ~{required:,} bytes "
        f"({concurrent} concurrent shard(s) × {per_shard:,} bytes for "
        f"{widest} replicas × {graph.n_vertices} vertices) but only "
        f"{limit:,} bytes are available; use engine='sparse' (frontier-"
        f"proportional state), shrink shard_size/jobs, or raise "
        f"{LIMIT_ENV}"
    )
