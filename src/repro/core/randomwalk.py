"""Simple and multiple random walks, the `k = 1` end of the spectrum.

A COBRA process with branching factor 1 started from a single vertex
*is* a simple random walk, whose cover time on any graph is
``Ω(n log n)`` — the paper's argument for why some branching is
necessary for logarithmic cover time.  Running ``w`` independent
walkers gives the classical "multiple random walks" process of
Alon et al. / Elsässer & Sauerwald, included as a further baseline.

Cover semantics: walker start positions count as visited at round 0
(the standard random-walk convention; pass
``include_start_in_cover=False`` for the COBRA-style union-from-round-1
convention used when cross-checking against ``CobraProcess`` with
``branching=1``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.core.process import RoundRecord, SpreadingProcess, resolve_vertex_set
from repro.errors import ProcessError
from repro.graphs.base import Graph


class RandomWalkProcess(SpreadingProcess):
    """One or more independent simple random walks covering a graph.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    start:
        Starting vertex for every walker, or an iterable giving each
        walker's start (walkers may share a vertex).
    n_walkers:
        Number of walkers when ``start`` is a single vertex; ignored
        when ``start`` is an iterable (its length decides).
    seed:
        Randomness source.
    include_start_in_cover:
        Whether start positions count as visited at round 0
        (default true, the random-walk convention).
    """

    def __init__(
        self,
        graph: Graph,
        start: int | Iterable[int],
        *,
        n_walkers: int = 1,
        seed: SeedLike = None,
        include_start_in_cover: bool = True,
    ) -> None:
        super().__init__(graph, seed=seed)
        if isinstance(start, (int, np.integer)):
            if n_walkers < 1:
                raise ProcessError(f"n_walkers must be >= 1, got {n_walkers}")
            starts = np.full(n_walkers, int(start), dtype=np.int64)
            resolve_vertex_set(graph, int(start), role="start")
        else:
            starts = np.asarray(list(start), dtype=np.int64)
            if starts.size == 0:
                raise ProcessError("start iterable must be non-empty")
            resolve_vertex_set(graph, starts.tolist(), role="start")
        self._positions = starts
        n = graph.n_vertices
        self._visited = np.zeros(n, dtype=bool)
        if include_start_in_cover:
            self._visited[starts] = True
        self._visited_count = int(self._visited.sum())
        self._cover_time: int | None = 0 if self._visited_count == n else None

    @property
    def n_walkers(self) -> int:
        """Number of walkers."""
        return int(self._positions.size)

    @property
    def positions(self) -> np.ndarray:
        """Current walker positions (a copy)."""
        return self._positions.copy()

    @property
    def active_mask(self) -> np.ndarray:
        """Mask of vertices currently occupied by at least one walker."""
        mask = np.zeros(self._graph.n_vertices, dtype=bool)
        mask[self._positions] = True
        return mask

    @property
    def active_count(self) -> int:
        return int(np.unique(self._positions).size)

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._visited.copy()

    @property
    def cumulative_count(self) -> int:
        return self._visited_count

    @property
    def is_complete(self) -> bool:
        """Whether every vertex has been visited."""
        return self._visited_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        """The cover time once every vertex is visited, else ``None``."""
        return self._cover_time

    def step(self) -> RoundRecord:
        """Move every walker to a uniform random neighbour."""
        graph = self._graph
        self._positions = graph.sample_neighbors(self._positions, 1, self._rng).ravel()
        self._round_index += 1
        before = self._visited_count
        self._visited[self._positions] = True
        self._visited_count = int(self._visited.sum())
        if self._cover_time is None and self._visited_count == graph.n_vertices:
            self._cover_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=self.active_count,
            cumulative_count=self._visited_count,
            newly_reached=self._visited_count - before,
            transmissions=self.n_walkers,
        )
