"""Process engines: COBRA, BIPS, and the comparison baselines.

All engines share the :class:`~repro.core.process.SpreadingProcess`
interface: construct with a graph, a starting configuration, a
branching factor and a seed; call :meth:`step` (or use the runners in
:mod:`repro.core.runner`) and read round records off the returned
:class:`~repro.core.process.RoundRecord` objects.
"""

from repro.core.batch import (
    BatchTraces,
    batch_bips_infection_times,
    batch_bips_traces,
    batch_cobra_cover_times,
    batch_cobra_traces,
)
from repro.core.bips import BipsProcess
from repro.core.cobra import CobraProcess
from repro.core.dynamic import (
    DynamicBipsProcess,
    DynamicCobraProcess,
    EvolvingRegularGraph,
    static_provider,
)
from repro.core.event import (
    SisEventResult,
    event_bips_infection_times,
    event_cobra_cover_times,
    event_sis_times,
    resolve_edge_rates,
)
from repro.core.process import RoundRecord, SpreadingProcess, Trace
from repro.core.pull import PullProcess
from repro.core.push import PushProcess
from repro.core.pushpull import PushPullProcess
from repro.core.randomwalk import RandomWalkProcess
from repro.core.runner import (
    RunResult,
    default_max_rounds,
    run_process,
    sample_completion_times,
)
from repro.core.sis import SisProcess
from repro.core.sparse import sparse_bips_infection_times, sparse_cobra_cover_times

__all__ = [
    "SpreadingProcess",
    "RoundRecord",
    "Trace",
    "CobraProcess",
    "BipsProcess",
    "SisProcess",
    "PushProcess",
    "PullProcess",
    "PushPullProcess",
    "RandomWalkProcess",
    "RunResult",
    "run_process",
    "sample_completion_times",
    "default_max_rounds",
    "batch_cobra_cover_times",
    "batch_bips_infection_times",
    "batch_cobra_traces",
    "batch_bips_traces",
    "BatchTraces",
    "sparse_cobra_cover_times",
    "sparse_bips_infection_times",
    "event_cobra_cover_times",
    "event_bips_infection_times",
    "event_sis_times",
    "SisEventResult",
    "resolve_edge_rates",
    "DynamicCobraProcess",
    "DynamicBipsProcess",
    "EvolvingRegularGraph",
    "static_provider",
]
