"""The push–pull rumour-spreading protocol (Karp et al. style).

Each round, **every** vertex (informed or not) contacts one neighbour
chosen uniformly at random.  The rumour crosses the contact edge in
both directions: an informed caller informs its callee (*push*), and an
uninformed caller learns from an informed callee (*pull*).  This is the
strongest classical baseline; it also spends `n` contacts per round
from the first round onwards, which is the per-round budget COBRA's
design avoids.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.core.process import RoundRecord, SpreadingProcess, resolve_vertex_set
from repro.graphs.base import Graph


class PushPullProcess(SpreadingProcess):
    """Push–pull rumour spreading from an initial informed set.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    start:
        Initially informed vertex or vertices.
    seed:
        Randomness source.
    """

    def __init__(
        self,
        graph: Graph,
        start: int | Iterable[int],
        *,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        start_vertices = resolve_vertex_set(graph, start, role="start")
        n = graph.n_vertices
        self._informed = np.zeros(n, dtype=bool)
        self._informed[start_vertices] = True
        self._completion_time: int | None = (
            0 if int(self._informed.sum()) == n else None
        )
        self._all_vertices = np.arange(n, dtype=np.int64)

    @property
    def active_mask(self) -> np.ndarray:
        return self._informed.copy()

    @property
    def active_count(self) -> int:
        return int(self._informed.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._informed.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._informed.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every vertex is informed."""
        return self.active_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        return self._completion_time

    def step(self) -> RoundRecord:
        """Every vertex contacts one uniform neighbour; rumour crosses both ways."""
        graph = self._graph
        informed = self._informed
        contacts = graph.sample_neighbors(self._all_vertices, 1, self._rng).ravel()
        before = int(informed.sum())
        next_informed = informed.copy()
        # Pull: a caller learns from an informed callee.
        next_informed |= informed[contacts]
        # Push: an informed caller informs its callee.
        next_informed[contacts[informed]] = True
        self._informed = next_informed
        self._round_index += 1
        after = int(next_informed.sum())
        if self._completion_time is None and after == graph.n_vertices:
            self._completion_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=after,
            cumulative_count=after,
            newly_reached=after - before,
            transmissions=graph.n_vertices,
        )
