"""Plain SIS refresh dynamics *without* a persistent source.

This is the ablation counterpart of :class:`~repro.core.bips.BipsProcess`
(experiment E10): identical per-round sampling, but no vertex is
permanently infected, so the all-susceptible state is absorbing and the
epidemic can die out.  The paper motivates BIPS precisely by the
persistent-source property ("a particular host can become persistently
infected" — the BVDV example), and the ablation quantifies what the
source buys: BIPS reaches full infection w.h.p. while plain SIS started
from a single vertex goes extinct with constant probability per round
until it either takes off or dies.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.errors import InfectionTimeoutError
from repro.core.process import (
    RoundRecord,
    SpreadingProcess,
    resolve_vertex_set,
    validate_branching,
    validate_replacement,
)
from repro.graphs.base import Graph


class SisProcess(SpreadingProcess):
    """SIS refresh dynamics: BIPS sampling with no persistent source.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    initial:
        Initially infected vertex or vertices.
    branching:
        Sampling factor ``k`` (real, ``>= 1``).
    seed:
        Randomness source.
    replacement:
        Contact neighbours with replacement (default, paper semantics)
        or distinct neighbours.
    """

    timeout_error = InfectionTimeoutError

    def __init__(
        self,
        graph: Graph,
        initial: int | Iterable[int],
        *,
        branching: float = 2.0,
        seed: SeedLike = None,
        replacement: bool = True,
    ) -> None:
        super().__init__(graph, seed=seed)
        self._mandatory, self._rho = validate_branching(branching)
        validate_replacement(graph, self._mandatory, self._rho, replacement)
        self._replacement = bool(replacement)
        self._branching = float(branching)
        initial_vertices = resolve_vertex_set(graph, initial, role="initial")
        n = graph.n_vertices
        self._infected = np.zeros(n, dtype=bool)
        self._infected[initial_vertices] = True
        self._ever_infected = self._infected.copy()
        self._infection_time: int | None = (
            0 if int(self._infected.sum()) == n else None
        )
        self._extinction_time: int | None = None
        self._all_vertices = np.arange(n, dtype=np.int64)

    @property
    def branching(self) -> float:
        """The sampling factor ``k`` (possibly fractional)."""
        return self._branching

    @property
    def active_mask(self) -> np.ndarray:
        return self._infected.copy()

    @property
    def active_count(self) -> int:
        return int(self._infected.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._ever_infected.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._ever_infected.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every vertex is simultaneously infected."""
        return self.active_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        return self._infection_time

    @property
    def is_extinct(self) -> bool:
        """Whether the infection has died out (absorbing)."""
        return self.active_count == 0

    @property
    def extinction_time(self) -> int | None:
        """Round at which the infected set first became empty, or ``None``."""
        return self._extinction_time

    def step(self) -> RoundRecord:
        """Advance one round; the empty state is absorbing."""
        graph = self._graph
        rng = self._rng
        infected = self._infected
        if not infected.any():
            self._round_index += 1
            return RoundRecord(
                round_index=self._round_index,
                active_count=0,
                cumulative_count=self.cumulative_count,
                newly_reached=0,
                transmissions=0,
            )
        def sample(vertices: np.ndarray, count: int) -> np.ndarray:
            if self._replacement:
                return graph.sample_neighbors(vertices, count, rng)
            return graph.sample_distinct_neighbors(vertices, count, rng)

        if self._rho > 0.0:
            extra_mask = rng.random(graph.n_vertices) < self._rho
            base_vertices = self._all_vertices[~extra_mask]
            extra_vertices = self._all_vertices[extra_mask]
            next_infected = np.zeros(graph.n_vertices, dtype=bool)
            transmissions = 0
            if base_vertices.size:
                picks = sample(base_vertices, self._mandatory)
                next_infected[base_vertices] = infected[picks].any(axis=1)
                transmissions += picks.size
            if extra_vertices.size:
                picks = sample(extra_vertices, self._mandatory + 1)
                next_infected[extra_vertices] = infected[picks].any(axis=1)
                transmissions += picks.size
        else:
            picks = sample(self._all_vertices, self._mandatory)
            next_infected = infected[picks].any(axis=1)
            transmissions = picks.size
        self._infected = next_infected
        self._round_index += 1

        newly = next_infected & ~self._ever_infected
        newly_count = int(newly.sum())
        if newly_count:
            self._ever_infected |= next_infected
        current = int(next_infected.sum())
        if self._infection_time is None and current == graph.n_vertices:
            self._infection_time = self._round_index
        if self._extinction_time is None and current == 0:
            self._extinction_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=current,
            cumulative_count=int(self._ever_infected.sum()),
            newly_reached=newly_count,
            transmissions=transmissions,
        )
