"""Numba-compiled shard kernels: the CPU fast tier behind ``backend="numba"``.

The dense batch kernels (:mod:`repro.core.batch`) and the sparse
frontier kernels (:mod:`repro.core.sparse`) spend their rounds in a
handful of NumPy calls whose temporaries and per-call overhead dominate
at scale.  This module re-states those round loops as Numba
``@njit(parallel=True, cache=True)`` kernels — one fused pass per round
over the live replica block — and exposes shard functions with the
exact ``map_shards`` signature of the reference kernels, so the batch
and sparse entry points can swap them in per call when the resolved
backend provides compiled kernels (:class:`~repro.backends.numba_backend.
NumbaBackend`).

**The seed contract survives compilation.**  Every random draw still
comes from the host NumPy generator, consumed in the exact order of the
reference kernels:

* On the regular power-of-two-degree fast path (the expander workloads
  and the golden-parity graphs) only the raw 64-bit words of
  :func:`~repro.graphs.base.uniform_draws` are drawn on the host —
  the same ``rng.integers(0, 2**64, ...)`` call, word for word — and
  the deterministic bit-slice expansion moves inside the jitted kernel.
* Everywhere else (non-power-of-two or irregular degrees, implicit
  topologies) the picks are host-sampled through
  :meth:`~repro.graphs.base.Graph.sample_neighbors` exactly as the
  reference kernels do, and the kernels fuse the scatter/gather work.

All per-round reductions are boolean/integer (no float accumulation
order to disturb), so for a fixed seed the compiled shards are
**bit-identical** to the NumPy reference on every path — dense *and*
sparse — at every ``jobs`` count; the parity suite asserts this against
the checked-in goldens.

Numba itself is optional (the ``cobra-repro[numba]`` extra).  When it
is absent the decorators degrade to identity functions and ``prange``
to ``range``, so the kernels run as pure Python: far too slow for real
work, but exactly right for correctness tests on machines without
numba.  That fallback must be opted into via ``REPRO_COMPILED_FALLBACK=1``
— otherwise requesting ``backend="numba"`` raises a clear
:class:`~repro.errors.BackendError` instead of silently running 100×
slower than the NumPy reference.

JIT cost is paid once per machine, not once per worker:
``cache=True`` persists compiled artefacts on disk and
:func:`ensure_warm` (called by the entry points before any pool is
started) compiles every kernel in the parent process, so spawned
``jobs=N`` workers load the on-disk cache instead of recompiling.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.backends import resolve_backend
from repro.core.batch import _ShardTraceRecorder
from repro.errors import GraphPropertyError

#: Environment variable that opts into running the kernels as pure
#: Python when numba is not installed (testing only; orders of
#: magnitude slower than the NumPy reference engines).
FALLBACK_ENV = "REPRO_COMPILED_FALLBACK"

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common CI/container case
    NUMBA_AVAILABLE = False

    def njit(*args: Any, **kwargs: Any) -> Callable:
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(function: Callable) -> Callable:
            return function

        return decorate

    prange = range


def fallback_enabled() -> bool:
    """Whether the pure-Python kernel fallback has been opted into."""
    return os.environ.get(FALLBACK_ENV, "") == "1"


def compiled_available() -> bool:
    """Whether the compiled tier can run here (numba or explicit fallback)."""
    return NUMBA_AVAILABLE or fallback_enabled()


def missing_numba_message() -> str:
    """The error text for requesting the compiled tier without numba."""
    return (
        "backend 'numba' requested but numba is not installed; "
        "pip install 'cobra-repro[numba]' to enable the compiled kernel "
        f"tier (or set {FALLBACK_ENV}=1 to run the compiled kernels as "
        "pure Python — testing only, far slower than backend='numpy')"
    )


_EMPTY_INT = np.zeros(0, dtype=np.int64)
_EMPTY_BOOL = np.zeros(0, dtype=np.bool_)


def _sampling_plan(graph, xp) -> tuple[bool, int, int, int, np.ndarray]:
    """Choose the per-shard sampling mode for a dense compiled kernel.

    Returns ``(words_mode, degree, bits, per_word, indices)``.  Words
    mode — host draws only the raw 64-bit words and the kernel
    bit-slices them against the resident CSR ``indices`` — needs a
    materialised regular graph whose degree is a power of two ``>= 2``
    (the expander workloads).  Everything else (irregular, non-power-
    of-two, implicit topologies) host-samples picks through
    ``graph.sample_neighbors`` exactly like the reference kernels.
    """
    degree = graph.regular_degree if graph.is_regular else 0
    if degree >= 2 and degree & (degree - 1) == 0:
        try:
            indices = xp.graph_indices(graph)
        except GraphPropertyError:
            indices = None  # implicit topology: no CSR to gather from
        if indices is not None:
            bits = degree.bit_length() - 1
            return True, degree, bits, 64 // bits, indices
    return False, 0, 1, 64, _EMPTY_INT


def _draw_words(rng: np.random.Generator, total: int, per_word: int) -> np.ndarray:
    """The raw 64-bit words :func:`uniform_draws` would consume for ``total`` draws."""
    return rng.integers(0, 2**64, size=-(-total // per_word), dtype=np.uint64)


# ----------------------------------------------------------------------
# Dense COBRA round kernels
# ----------------------------------------------------------------------


@njit(cache=True, parallel=True)
def _cobra_round_words(
    next_state,
    covered,
    covered_counts,
    active_counts,
    newly_counts,
    columns,
    row_starts,
    words,
    indices,
    degree,
    bits,
    per_word,
    samples,
    use_branch,
    branch,
    extras,
    live,
):  # pragma: no cover - measured via outputs, not line coverage
    n = next_state.shape[1]
    mask = np.uint64(degree - 1)
    for i in prange(live):
        row = next_state[i]
        for v in range(n):
            row[v] = False
        for p in range(row_starts[i], row_starts[i + 1]):
            base = columns[p] * degree
            first = p * samples
            for j in range(samples):
                t = first + j
                shift = np.uint64((t % per_word) * bits)
                draw = np.int64((words[t // per_word] >> shift) & mask)
                row[indices[base + draw]] = True
            if use_branch and branch[p]:
                row[extras[p]] = True
        cov = covered[i]
        active = 0
        fresh = 0
        for v in range(n):
            if row[v]:
                active += 1
                if not cov[v]:
                    cov[v] = True
                    fresh += 1
        active_counts[i] = active
        newly_counts[i] = fresh
        covered_counts[i] += fresh


@njit(cache=True, parallel=True)
def _cobra_round_picks(
    next_state,
    covered,
    covered_counts,
    active_counts,
    newly_counts,
    row_starts,
    picks,
    use_branch,
    branch,
    extras,
    live,
):  # pragma: no cover
    n = next_state.shape[1]
    samples = picks.shape[1]
    for i in prange(live):
        row = next_state[i]
        for v in range(n):
            row[v] = False
        for p in range(row_starts[i], row_starts[i + 1]):
            for j in range(samples):
                row[picks[p, j]] = True
            if use_branch and branch[p]:
                row[extras[p]] = True
        cov = covered[i]
        active = 0
        fresh = 0
        for v in range(n):
            if row[v]:
                active += 1
                if not cov[v]:
                    cov[v] = True
                    fresh += 1
        active_counts[i] = active
        newly_counts[i] = fresh
        covered_counts[i] += fresh


@njit(cache=True, parallel=True)
def _collect_frontier(state, keep, offsets, out_columns):  # pragma: no cover
    n = state.shape[1]
    for i in prange(keep.size):
        row = state[keep[i]]
        position = offsets[i]
        for v in range(n):
            if row[v]:
                out_columns[position] = v
                position += 1


# ----------------------------------------------------------------------
# Dense BIPS round kernels
# ----------------------------------------------------------------------


@njit(cache=True, parallel=True)
def _bips_round_words(
    infected,
    next_state,
    counts,
    words,
    indices,
    degree,
    bits,
    per_word,
    samples,
    use_coin,
    coin,
    extras,
    source,
    live,
):  # pragma: no cover
    n = infected.shape[1]
    mask = np.uint64(degree - 1)
    for i in prange(live):
        current = infected[i]
        row = next_state[i]
        base_draw = i * n * samples
        infected_count = 0
        for v in range(n):
            hit = False
            first = base_draw + v * samples
            base = v * degree
            for j in range(samples):
                t = first + j
                shift = np.uint64((t % per_word) * bits)
                draw = np.int64((words[t // per_word] >> shift) & mask)
                if current[indices[base + draw]]:
                    hit = True
                    break
            if not hit and use_coin:
                slot = i * n + v
                if coin[slot] and current[extras[slot]]:
                    hit = True
            if v == source:
                hit = True
            row[v] = hit
            if hit:
                infected_count += 1
        counts[i] = infected_count


@njit(cache=True, parallel=True)
def _bips_round_picks(
    infected,
    next_state,
    counts,
    picks,
    use_coin,
    coin,
    extras,
    source,
    live,
):  # pragma: no cover
    n = infected.shape[1]
    samples = picks.shape[1]
    for i in prange(live):
        current = infected[i]
        row = next_state[i]
        infected_count = 0
        for v in range(n):
            slot = i * n + v
            hit = False
            for j in range(samples):
                if current[picks[slot, j]]:
                    hit = True
                    break
            if not hit and use_coin and coin[slot] and current[extras[slot]]:
                hit = True
            if v == source:
                hit = True
            row[v] = hit
            if hit:
                infected_count += 1
        counts[i] = infected_count


# ----------------------------------------------------------------------
# Sparse frontier kernels (serial: bitset words are shared across pairs)
# ----------------------------------------------------------------------


@njit(cache=True)
def _sparse_cobra_update(keys, n, covered, covered_counts):  # pragma: no cover
    keys.sort()
    out_rep = np.empty(keys.size, np.int64)
    out_vtx = np.empty(keys.size, np.int64)
    unique = 0
    fresh = 0
    previous = np.int64(-1)
    for index in range(keys.size):
        key = keys[index]
        if unique > 0 and key == previous:
            continue
        previous = key
        replica = key // n
        vertex = key - replica * n
        out_rep[unique] = replica
        out_vtx[unique] = vertex
        unique += 1
        word = vertex >> 6
        bit = np.uint64(1) << np.uint64(vertex & 63)
        if (covered[replica, word] & bit) == np.uint64(0):
            covered[replica, word] |= bit
            covered_counts[replica] += 1
            fresh += 1
    return out_rep[:unique], out_vtx[:unique], fresh


@njit(cache=True)
def _dedup_keys(keys, n):  # pragma: no cover
    keys.sort()
    out_rep = np.empty(keys.size, np.int64)
    out_vtx = np.empty(keys.size, np.int64)
    unique = 0
    previous = np.int64(-1)
    for index in range(keys.size):
        key = keys[index]
        if unique > 0 and key == previous:
            continue
        previous = key
        replica = key // n
        out_rep[unique] = replica
        out_vtx[unique] = key - replica * n
        unique += 1
    return out_rep[:unique], out_vtx[:unique]


@njit(cache=True)
def _sparse_bips_round(
    armed_rep,
    armed_vtx,
    picks,
    use_coin,
    coin,
    extras,
    old_rep,
    old_vtx,
    live_reps,
    source,
    infected_bits,
):  # pragma: no cover
    armed = armed_rep.size
    samples = picks.shape[1]
    one = np.uint64(1)
    hit = np.zeros(armed, np.bool_)
    for a in range(armed):
        replica = armed_rep[a]
        landed = False
        for j in range(samples):
            pick = picks[a, j]
            if (infected_bits[replica, pick >> 6] & (one << np.uint64(pick & 63))) != 0:
                landed = True
                break
        if not landed and use_coin and coin[a]:
            extra = extras[a]
            if (infected_bits[replica, extra >> 6] & (one << np.uint64(extra & 63))) != 0:
                landed = True
        hit[a] = landed
    # Rebuild the bitset incrementally, exactly like the NumPy sparse
    # kernel: clear the old frontier's bits, then set the new one's.
    for t in range(old_rep.size):
        vertex = old_vtx[t]
        infected_bits[old_rep[t], vertex >> 6] &= ~(one << np.uint64(vertex & 63))
    new_rep = np.empty(armed + live_reps.size, np.int64)
    new_vtx = np.empty(armed + live_reps.size, np.int64)
    size = 0
    for a in range(armed):
        if hit[a] and armed_vtx[a] != source:
            new_rep[size] = armed_rep[a]
            new_vtx[size] = armed_vtx[a]
            size += 1
    for t in range(live_reps.size):
        new_rep[size] = live_reps[t]
        new_vtx[size] = source
        size += 1
    for t in range(size):
        vertex = new_vtx[t]
        infected_bits[new_rep[t], vertex >> 6] |= one << np.uint64(vertex & 63)
    return new_rep[:size], new_vtx[:size]


# ----------------------------------------------------------------------
# Warm-up / compile-cache handling
# ----------------------------------------------------------------------

_warmed = False


def ensure_warm() -> None:
    """Compile (or cache-load) every kernel once, in this process.

    The entry points call this in the parent before starting any worker
    pool: with ``cache=True`` the compiled artefacts land on disk here,
    so spawned workers load them instead of each paying the JIT cost —
    and concurrent workers never race to compile the same signature.
    A no-op without numba (the pure-Python fallback needs no warm-up)
    and after the first call.
    """
    global _warmed
    if _warmed or not NUMBA_AVAILABLE:
        return
    one_bool = np.zeros((1, 2), dtype=np.bool_)
    counts = np.zeros(1, dtype=np.int64)
    scalars = np.zeros(1, dtype=np.int64)
    row_starts = np.asarray([0, 1], dtype=np.int64)
    words = np.zeros(1, dtype=np.uint64)
    indices = np.zeros(4, dtype=np.int64)
    flags = np.zeros(2, dtype=np.bool_)
    slots = np.zeros(2, dtype=np.int64)
    _cobra_round_words(
        one_bool.copy(), one_bool.copy(), counts.copy(), scalars.copy(), scalars.copy(),
        scalars.copy(), row_starts, words, indices, 2, 1, 64, 1,
        True, flags[:1], slots[:1], 1,
    )
    _cobra_round_picks(
        one_bool.copy(), one_bool.copy(), counts.copy(), scalars.copy(), scalars.copy(),
        row_starts, np.zeros((1, 1), dtype=np.int64), True, flags[:1], slots[:1], 1,
    )
    state = one_bool.copy()
    state[0, 0] = True
    _collect_frontier(state, scalars.copy(), row_starts, np.zeros(1, dtype=np.int64))
    _bips_round_words(
        one_bool.copy(), one_bool.copy(), counts.copy(), words, indices, 2, 1, 64, 1,
        True, flags, slots, 0, 1,
    )
    _bips_round_picks(
        one_bool.copy(), one_bool.copy(), counts.copy(), np.zeros((2, 1), dtype=np.int64),
        True, flags, slots, 0, 1,
    )
    bitset = np.zeros((1, 1), dtype=np.uint64)
    _sparse_cobra_update(np.zeros(1, dtype=np.int64), 2, bitset.copy(), counts.copy())
    _dedup_keys(np.zeros(1, dtype=np.int64), 2)
    _sparse_bips_round(
        scalars.copy(), scalars.copy(), np.zeros((1, 1), dtype=np.int64),
        True, flags[:1], slots[:1], scalars.copy(), scalars.copy(), scalars.copy(),
        0, bitset.copy(),
    )
    _warmed = True


# ----------------------------------------------------------------------
# Dense shard functions (``map_shards`` signature, same context tuples
# as the reference kernels in repro.core.batch)
# ----------------------------------------------------------------------


def compiled_cobra_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray | tuple[np.ndarray, ...]:
    """One shard of COBRA replicas through the compiled round kernels.

    Drop-in replacement for :func:`repro.core.batch._cobra_shard`:
    same context tuple, same host-RNG consumption order, bit-identical
    cover times and traces for a fixed seed.  The live frontier is kept
    as a ``(columns, row_starts)`` pair list instead of a padded bool
    matrix, so host-side sampling cost tracks the active set.
    """
    graph, start, mandatory, rho, max_rounds, include_start_in_cover, record, backend = (
        context
    )
    from repro.parallel import resolve_shared_graph

    xp = resolve_backend(backend)
    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    words_mode, degree, bits, per_word, indices = _sampling_plan(graph, xp)

    next_state = np.zeros((n_replicas, n), dtype=np.bool_)
    covered = np.zeros((n_replicas, n), dtype=np.bool_)
    covered_counts = np.zeros(n_replicas, dtype=np.int64)
    if include_start_in_cover:
        covered[:, start] = True
        covered_counts[:] = 1
    active_counts = np.empty(n_replicas, dtype=np.int64)
    newly_counts = np.empty(n_replicas, dtype=np.int64)
    cover_times = np.full(n_replicas, -1, dtype=np.int64)
    replica_ids = np.arange(n_replicas, dtype=np.int64)
    recorder = _ShardTraceRecorder(n_replicas) if record else None

    columns = np.full(n_replicas, start, dtype=np.int64)
    row_starts = np.arange(n_replicas + 1, dtype=np.int64)

    live = n_replicas
    for round_index in range(1, max_rounds + 1):
        if live == 0:
            break
        position_count = columns.size
        picks = _EMPTY_INT
        words = np.zeros(0, dtype=np.uint64)
        if words_mode:
            words = _draw_words(rng, position_count * mandatory, per_word)
        else:
            picks = graph.sample_neighbors(columns, mandatory, rng)
        branch = None
        use_branch = False
        branch_flags = _EMPTY_BOOL
        extras = _EMPTY_INT
        if rho > 0.0:
            branch = rng.random(position_count) < rho
            if branch.any():
                extra = graph.sample_neighbors(columns[branch], 1, rng).reshape(-1)
                extras = np.zeros(position_count, dtype=np.int64)
                extras[branch] = extra
                branch_flags = branch
                use_branch = True
        if words_mode:
            _cobra_round_words(
                next_state, covered, covered_counts, active_counts, newly_counts,
                columns, row_starts, words, indices, degree, bits, per_word,
                mandatory, use_branch, branch_flags, extras, live,
            )
        else:
            _cobra_round_picks(
                next_state, covered, covered_counts, active_counts, newly_counts,
                row_starts, picks, use_branch, branch_flags, extras, live,
            )
        if recorder is not None:
            per_row = np.diff(row_starts)
            transmissions = per_row * mandatory
            if branch is not None:
                rows = np.repeat(np.arange(live, dtype=np.int64), per_row)
                transmissions = transmissions + np.bincount(
                    rows[branch], minlength=live
                )
            recorder.record(
                replica_ids[:live],
                active_counts[:live],
                newly_counts[:live],
                transmissions,
            )
        if int(covered_counts[:live].max()) == n:
            done = covered_counts[:live] == n
            cover_times[replica_ids[:live][done]] = round_index
            keep_rows = np.flatnonzero(~done)
            new_live = keep_rows.size
            covered[:new_live] = covered[keep_rows]
            covered_counts[:new_live] = covered_counts[keep_rows]
            replica_ids[:new_live] = replica_ids[:live][~done]
        else:
            keep_rows = np.arange(live, dtype=np.int64)
            new_live = live
        offsets = np.zeros(new_live + 1, dtype=np.int64)
        np.cumsum(active_counts[keep_rows], out=offsets[1:])
        columns = np.empty(int(offsets[-1]), dtype=np.int64)
        if new_live:
            _collect_frontier(next_state, keep_rows, offsets, columns)
        row_starts = offsets
        live = new_live

    if recorder is None:
        return cover_times
    return recorder.finalize(cover_times)


def compiled_bips_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray | tuple[np.ndarray, ...]:
    """One shard of BIPS replicas through the compiled round kernels.

    Drop-in replacement for :func:`repro.core.batch._bips_shard` with
    the same context tuple and RNG stream: bit-identical infection
    times and traces for a fixed seed.  The per-round ``(U·n, k)``
    gather/any/scatter pipeline fuses into one pass over each replica
    row.
    """
    graph, source, mandatory, rho, max_rounds, record, backend = context
    from repro.parallel import resolve_shared_graph

    xp = resolve_backend(backend)
    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    words_mode, degree, bits, per_word, indices = _sampling_plan(graph, xp)

    infected = np.zeros((n_replicas, n), dtype=np.bool_)
    infected[:, source] = True
    next_state = np.empty((n_replicas, n), dtype=np.bool_)
    counts = np.empty(n_replicas, dtype=np.int64)
    infection_times = np.full(n_replicas, -1, dtype=np.int64)
    replica_ids = np.arange(n_replicas, dtype=np.int64)
    flat_vertices = None if words_mode else np.tile(np.arange(n, dtype=np.int64), n_replicas)
    recorder = _ShardTraceRecorder(n_replicas) if record else None
    if recorder is not None:
        ever_infected = infected.copy()

    live = n_replicas
    for round_index in range(1, max_rounds + 1):
        if live == 0:
            break
        slots = live * n
        picks = _EMPTY_INT
        words = np.zeros(0, dtype=np.uint64)
        if words_mode:
            words = _draw_words(rng, slots * mandatory, per_word)
        else:
            picks = graph.sample_neighbors(flat_vertices[:slots], mandatory, rng)
        use_coin = False
        coin_flags = _EMPTY_BOOL
        extras = _EMPTY_INT
        extra_slots = None
        n_extra = 0
        if rho > 0.0:
            coin = rng.random(slots) < rho
            extra_slots = np.flatnonzero(coin)
            n_extra = extra_slots.size
            if n_extra:
                extra = graph.sample_neighbors(extra_slots % n, 1, rng).reshape(-1)
                extras = np.zeros(slots, dtype=np.int64)
                extras[extra_slots] = extra
                coin_flags = coin
                use_coin = True
        if words_mode:
            _bips_round_words(
                infected, next_state, counts, words, indices, degree, bits,
                per_word, mandatory, use_coin, coin_flags, extras, source, live,
            )
        else:
            _bips_round_picks(
                infected, next_state, counts, picks, use_coin, coin_flags,
                extras, source, live,
            )
        if recorder is not None:
            fresh = next_state[:live] & ~ever_infected[:live]
            fresh_counts = fresh.sum(axis=1)
            ever_infected[:live] |= next_state[:live]
            transmissions = np.full(live, (n - 1) * mandatory, dtype=np.int64)
            if n_extra:
                non_source = (extra_slots % n) != source
                transmissions = transmissions + np.bincount(
                    extra_slots[non_source] // n, minlength=live
                )
            recorder.record(
                replica_ids[:live], counts[:live], fresh_counts, transmissions
            )
        done = counts[:live] == n
        if done.any():
            infection_times[replica_ids[:live][done]] = round_index
            keep_rows = np.flatnonzero(~done)
            new_live = keep_rows.size
            infected[:new_live] = next_state[keep_rows]
            replica_ids[:new_live] = replica_ids[:live][~done]
            if recorder is not None:
                ever_infected[:new_live] = ever_infected[keep_rows]
            live = new_live
        else:
            infected, next_state = next_state, infected

    if recorder is None:
        return infection_times
    return recorder.finalize(infection_times)


# ----------------------------------------------------------------------
# Sparse shard functions (same context tuples as repro.core.sparse)
# ----------------------------------------------------------------------


def compiled_sparse_cobra_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """Sparse-frontier COBRA shard with compiled coalescing and bitsets.

    Mirrors :func:`repro.core.sparse._sparse_cobra_shard` draw for draw
    (host sampling on the frontier, ascending dedup order), replacing
    the ``np.unique`` / fancy-gather / ``bitwise_or.at`` pipeline with
    one compiled sort-dedup-test-scatter pass — bit-identical cover
    times for a fixed seed.
    """
    graph, start, mandatory, rho, max_rounds, include_start_in_cover = context
    from repro.parallel import resolve_shared_graph

    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    n_words = (n + 63) // 64

    covered = np.zeros((n_replicas, n_words), dtype=np.uint64)
    covered_counts = np.zeros(n_replicas, dtype=np.int64)
    cover_times = np.full(n_replicas, -1, dtype=np.int64)
    if include_start_in_cover:
        covered[:, start >> 6] |= np.uint64(1) << np.uint64(start & 63)
        covered_counts[:] = 1

    rep = np.arange(n_replicas, dtype=np.int64)
    vtx = np.full(n_replicas, start, dtype=np.int64)

    for round_index in range(1, max_rounds + 1):
        if rep.size == 0:
            break
        picks = graph.sample_neighbors(vtx, mandatory, rng)
        new_rep = np.repeat(rep, mandatory)
        new_vtx = picks.reshape(-1)
        if rho > 0.0:
            branch = rng.random(vtx.size) < rho
            if branch.any():
                extra = graph.sample_neighbors(vtx[branch], 1, rng).reshape(-1)
                new_rep = np.concatenate([new_rep, rep[branch]])
                new_vtx = np.concatenate([new_vtx, extra])
        keys = new_rep * n + new_vtx
        rep, vtx, n_fresh = _sparse_cobra_update(keys, n, covered, covered_counts)
        if n_fresh:
            finished = covered_counts == n
            if finished.any():
                newly_done = finished & (cover_times < 0)
                cover_times[newly_done] = round_index
                keep = cover_times[rep] < 0
                rep = rep[keep]
                vtx = vtx[keep]
    return cover_times


def compiled_sparse_bips_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """Sparse-frontier BIPS shard with compiled bitset tests and rebuild.

    Mirrors :func:`repro.core.sparse._sparse_bips_shard` draw for draw:
    the armed-set expansion and all sampling stay on the host, while
    key dedup, the per-pick bitset hit tests, and the incremental
    bitset rebuild run compiled — bit-identical infection times for a
    fixed seed.
    """
    graph, source, mandatory, rho, max_rounds = context
    from repro.parallel import resolve_shared_graph

    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    n_words = (n + 63) // 64

    infected_bits = np.zeros((n_replicas, n_words), dtype=np.uint64)
    infection_times = np.full(n_replicas, -1, dtype=np.int64)
    infected_bits[:, source >> 6] |= np.uint64(1) << np.uint64(source & 63)

    rep = np.arange(n_replicas, dtype=np.int64)
    vtx = np.full(n_replicas, source, dtype=np.int64)

    for round_index in range(1, max_rounds + 1):
        if rep.size == 0:
            break
        neighbor_counts, flat = graph.neighborhoods(vtx)
        candidate_rep = np.concatenate([rep, np.repeat(rep, neighbor_counts)])
        candidate_vtx = np.concatenate([vtx, flat])
        armed_rep, armed_vtx = _dedup_keys(candidate_rep * n + candidate_vtx, n)

        picks = graph.sample_neighbors(armed_vtx, mandatory, rng)
        use_coin = False
        coin_flags = _EMPTY_BOOL
        extras = _EMPTY_INT
        if rho > 0.0:
            coin = rng.random(armed_vtx.size) < rho
            if coin.any():
                extra = graph.sample_neighbors(armed_vtx[coin], 1, rng).reshape(-1)
                extras = np.zeros(armed_vtx.size, dtype=np.int64)
                extras[coin] = extra
                coin_flags = coin
                use_coin = True
        live_reps = np.unique(rep)
        rep, vtx = _sparse_bips_round(
            armed_rep, armed_vtx, picks, use_coin, coin_flags, extras,
            rep, vtx, live_reps, source, infected_bits,
        )
        infected_counts = np.bincount(rep, minlength=n_replicas)
        finished = infected_counts == n
        if finished.any():
            infection_times[finished & (infection_times < 0)] = round_index
            keep = infection_times[rep] < 0
            rep = rep[keep]
            vtx = vtx[keep]
    return infection_times
