"""The pull-only rumour-spreading protocol.

Each round, every **uninformed** vertex contacts one neighbour chosen
uniformly at random and learns the rumour iff the contact is informed.
The mirror image of push: fast in the endgame (each straggler keeps
asking) but slow to ignite from a single source on sparse graphs.
Completes the classical baseline family (push, pull, push–pull) for
the E9-style budget comparisons.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.core.process import RoundRecord, SpreadingProcess, resolve_vertex_set
from repro.graphs.base import Graph


class PullProcess(SpreadingProcess):
    """Pull rumour spreading from an initial informed set.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    start:
        Initially informed vertex or vertices.
    seed:
        Randomness source.
    """

    def __init__(
        self,
        graph: Graph,
        start: int | Iterable[int],
        *,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        start_vertices = resolve_vertex_set(graph, start, role="start")
        n = graph.n_vertices
        self._informed = np.zeros(n, dtype=bool)
        self._informed[start_vertices] = True
        self._completion_time: int | None = (
            0 if int(self._informed.sum()) == n else None
        )

    @property
    def active_mask(self) -> np.ndarray:
        return self._informed.copy()

    @property
    def active_count(self) -> int:
        return int(self._informed.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._informed.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._informed.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every vertex is informed."""
        return self.active_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        return self._completion_time

    def step(self) -> RoundRecord:
        """Every uninformed vertex asks one uniform neighbour."""
        graph = self._graph
        asking = np.flatnonzero(~self._informed)
        before = int(self._informed.sum())
        if asking.size:
            contacts = graph.sample_neighbors(asking, 1, self._rng).ravel()
            learned = self._informed[contacts]
            self._informed[asking[learned]] = True
        self._round_index += 1
        after = int(self._informed.sum())
        if self._completion_time is None and after == graph.n_vertices:
            self._completion_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=after,
            cumulative_count=after,
            newly_reached=after - before,
            transmissions=int(asking.size),
        )
