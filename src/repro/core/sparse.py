"""Sparse-frontier ensemble engines: per-round cost ∝ frontier, not n.

The batch engines (:mod:`repro.core.batch`) evolve ``(R, n)`` dense
boolean matrices — unbeatable when the active set is a constant
fraction of the graph, but at million-vertex scale both their memory
and their per-round work are O(R·n) even while the frontier is tiny.
The kernels here keep the *exact same processes* in sparse state:

* **COBRA** — the active set is a deduplicated ``(replica, vertex)``
  pair list and coverage is a packed ``uint64`` bitset of
  ``(R, ⌈n/64⌉)`` words (1 bit per vertex per replica, 64× smaller
  than a bool matrix).  Each round samples neighbours *only for
  frontier pairs*, coalesces via one ``np.unique`` on composite keys,
  tests freshness against the bitset, and scatters the new bits with
  ``np.bitwise_or.at`` — everything proportional to the frontier.
* **BIPS** — per round, only the *armed* set (infected vertices and
  their neighbours) can become infected: every other vertex samples
  exclusively non-infected neighbours and stays susceptible with
  certainty, so skipping its draws leaves the process law unchanged
  (the same thinning argument as the event engine).  The kernel
  expands ``frontier ∪ N(frontier)`` through
  :meth:`~repro.graphs.base.Graph.neighborhoods`, samples for the
  armed set only, and rebuilds the infected bitset incrementally
  (clearing old bits costs the *old* frontier, not n).

Agreement with the batch engines is therefore **distributional**, not
bit-identical — like the event engine, and KS-tested the same way
(``tests/core/test_sparse.py``).  Within the sparse engine the usual
contract holds: sharding depends only on ``n_replicas`` / ``shard_size``
and shard seeds are ``SeedSequence.spawn`` children, so ``jobs=1`` and
``jobs=8`` return bit-identical times.

When to use which engine (see also the README's Scale section): dense
batch for small graphs or dense-cover measurements; ``sparse`` when n
is large and the measured horizon keeps the frontier well below n
(fixed-horizon growth cells, large sparse graphs, million-vertex
scenarios); ``event`` when continuous-time semantics or per-edge rates
are wanted.
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.backends import Backend, resolve_backend
from repro.core.batch import _check_timeouts, _run_sharded
from repro.core.process import resolve_vertex, validate_branching
from repro.core.runner import default_max_rounds
from repro.errors import BackendError, InfectionTimeoutError
from repro.graphs.base import Graph

_WORD_BITS = 64


def _bit_coords(vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split vertex ids into (word index, single-bit uint64 mask)."""
    words = vertices >> 6
    bits = np.uint64(1) << (vertices & 63).astype(np.uint64)
    return words, bits


def _sparse_cobra_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """One shard of COBRA replicas in sparse state; ``-1`` marks timeout."""
    graph, start, mandatory, rho, max_rounds, include_start_in_cover = context
    from repro.parallel import resolve_shared_graph

    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    n_words = (n + _WORD_BITS - 1) // _WORD_BITS

    covered = np.zeros((n_replicas, n_words), dtype=np.uint64)
    covered_counts = np.zeros(n_replicas, dtype=np.int64)
    cover_times = np.full(n_replicas, -1, dtype=np.int64)
    if include_start_in_cover:
        word, bit = _bit_coords(np.int64(start))
        covered[:, word] |= bit
        covered_counts[:] = 1

    # The frontier: one (replica, vertex) pair per active token site.
    rep = np.arange(n_replicas, dtype=np.int64)
    vtx = np.full(n_replicas, start, dtype=np.int64)

    for round_index in range(1, max_rounds + 1):
        if rep.size == 0:
            break
        picks = graph.sample_neighbors(vtx, mandatory, rng)
        new_rep = np.repeat(rep, mandatory)
        new_vtx = picks.reshape(-1)
        if rho > 0.0:
            branch = rng.random(vtx.size) < rho
            if branch.any():
                extra = graph.sample_neighbors(vtx[branch], 1, rng).reshape(-1)
                new_rep = np.concatenate([new_rep, rep[branch]])
                new_vtx = np.concatenate([new_vtx, extra])
        # Coalescing: tokens landing on the same (replica, vertex) merge.
        keys = np.unique(new_rep * n + new_vtx)
        rep = keys // n
        vtx = keys - rep * n
        words, bits = _bit_coords(vtx)
        fresh = (covered[rep, words] & bits) == 0
        if fresh.any():
            np.bitwise_or.at(covered, (rep[fresh], words[fresh]), bits[fresh])
            covered_counts += np.bincount(rep[fresh], minlength=n_replicas)
            finished = covered_counts == n
            if finished.any():
                newly_done = finished & (cover_times < 0)
                cover_times[newly_done] = round_index
                keep = cover_times[rep] < 0
                rep = rep[keep]
                vtx = vtx[keep]
    return cover_times


def _sparse_bips_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    """One shard of BIPS replicas in sparse state; ``-1`` marks timeout."""
    graph, source, mandatory, rho, max_rounds = context
    from repro.parallel import resolve_shared_graph

    graph = resolve_shared_graph(graph)
    n_replicas = stop_index - start_index
    rng = ensure_generator(seed)
    n = graph.n_vertices
    n_words = (n + _WORD_BITS - 1) // _WORD_BITS

    infected_bits = np.zeros((n_replicas, n_words), dtype=np.uint64)
    infection_times = np.full(n_replicas, -1, dtype=np.int64)
    source_word, source_bit = _bit_coords(np.int64(source))
    infected_bits[:, source_word] |= source_bit

    rep = np.arange(n_replicas, dtype=np.int64)
    vtx = np.full(n_replicas, source, dtype=np.int64)

    for round_index in range(1, max_rounds + 1):
        if rep.size == 0:
            break
        # Armed set: infected vertices and their neighbours — the only
        # vertices whose draws can hit an infected neighbour.
        counts, flat = graph.neighborhoods(vtx)
        candidate_rep = np.concatenate([rep, np.repeat(rep, counts)])
        candidate_vtx = np.concatenate([vtx, flat])
        keys = np.unique(candidate_rep * n + candidate_vtx)
        armed_rep = keys // n
        armed_vtx = keys - armed_rep * n

        picks = graph.sample_neighbors(armed_vtx, mandatory, rng)
        pick_words, pick_bits = _bit_coords(picks)
        hits = (infected_bits[armed_rep[:, None], pick_words] & pick_bits) != 0
        hit_any = hits.any(axis=1)
        if rho > 0.0:
            coin = rng.random(armed_vtx.size) < rho
            if coin.any():
                extra = graph.sample_neighbors(armed_vtx[coin], 1, rng).reshape(-1)
                extra_words, extra_bits = _bit_coords(extra)
                extra_hit = (infected_bits[armed_rep[coin], extra_words] & extra_bits) != 0
                hit_any[coin] |= extra_hit

        new_rep = armed_rep[hit_any]
        new_vtx = armed_vtx[hit_any]
        # The persistent source stays infected in every live replica.
        live = np.unique(rep)
        not_source = new_vtx != source
        new_rep = np.concatenate([new_rep[not_source], live])
        new_vtx = np.concatenate([new_vtx[not_source], np.full(live.size, source)])

        # Rebuild the bitset incrementally: clear the old frontier's
        # bits (cost ∝ old frontier), then set the new one's.
        old_words, old_bits = _bit_coords(vtx)
        np.bitwise_and.at(infected_bits, (rep, old_words), ~old_bits)
        words, bits = _bit_coords(new_vtx)
        np.bitwise_or.at(infected_bits, (new_rep, words), bits)
        rep, vtx = new_rep, new_vtx

        infected_counts = np.bincount(rep, minlength=n_replicas)
        finished = infected_counts == n
        if finished.any():
            infection_times[finished & (infection_times < 0)] = round_index
            keep = infection_times[rep] < 0
            rep = rep[keep]
            vtx = vtx[keep]
    return infection_times


def _resolve_sparse_kernel(backend: "str | Backend | None", process: str):
    """Pick the sparse shard kernel for a ``backend`` argument.

    The sparse engine is host-only, so ``backend=None`` always means
    the NumPy reference kernels — deliberately *not* the process-wide
    default spec, which may name a device backend these kernels cannot
    run on.  An explicit backend must either provide compiled kernels
    (the numba tier; warmed here so spawn workers reuse the on-disk
    compile cache) or be a host-NumPy backend; anything else is
    rejected up front with a clear error.
    """
    if backend is None:
        resolved = None
    else:
        resolved = resolve_backend(backend)
        if resolved.provides_compiled_kernels:
            from repro.core import compiled

            compiled.ensure_warm()
            if process == "cobra":
                return compiled.compiled_sparse_cobra_shard
            return compiled.compiled_sparse_bips_shard
        if not resolved.is_numpy:
            raise BackendError(
                f"engine='sparse' runs on the host (NumPy reference or "
                f"compiled numba kernels); backend {resolved.spec!r} is "
                "not supported — use backend='numpy', backend='numba', "
                "or engine='batch'"
            )
    return _sparse_cobra_shard if process == "cobra" else _sparse_bips_shard


def sparse_cobra_cover_times(
    graph: Graph,
    start: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    include_start_in_cover: bool = False,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> np.ndarray:
    """Cover times of ``n_replicas`` COBRA runs in sparse-frontier state.

    Same process and same discrete-round semantics as
    :func:`~repro.core.batch.batch_cobra_cover_times` (equal in
    distribution; *not* bit-identical — the engines consume randomness
    in different orders), but memory is ``R·n/8`` bits plus the
    frontier, and each round costs O(frontier) instead of O(R·n).
    Sharding, seeding, ``jobs``, and the timeout contract follow the
    batch engine exactly.  ``backend="numba"`` swaps in the compiled
    frontier kernels (bit-identical for a fixed seed); ``None`` always
    means the host reference kernels.
    """
    mandatory, rho = validate_branching(branching)
    start = resolve_vertex(graph, start, role="start")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    kernel = _resolve_sparse_kernel(backend, "cobra")
    parameters = (start, mandatory, rho, max_rounds, include_start_in_cover)
    times = np.concatenate(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(times, raise_on_timeout, "COBRA", "cover", graph, max_rounds)
    return times


def sparse_bips_infection_times(
    graph: Graph,
    source: int,
    *,
    branching: float = 2.0,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
    backend: "str | Backend | None" = None,
) -> np.ndarray:
    """Infection times of ``n_replicas`` BIPS runs in sparse-frontier state.

    Distribution-equal to
    :func:`~repro.core.batch.batch_bips_infection_times`: per round only
    the armed set ``A_t ∪ N(A_t)`` samples, which leaves the law
    unchanged because every other vertex would sample non-infected
    neighbours with certainty.  Early rounds therefore cost the
    frontier volume; as infection saturates the armed set approaches n
    and dense batch wins — this engine is for the large-n sparse
    regime, not a replacement.  ``backend="numba"`` swaps in the
    compiled frontier kernels (bit-identical for a fixed seed);
    ``None`` always means the host reference kernels.
    """
    mandatory, rho = validate_branching(branching)
    source = resolve_vertex(graph, source, role="source")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if max_rounds is None:
        max_rounds = default_max_rounds(graph)
    kernel = _resolve_sparse_kernel(backend, "bips")
    parameters = (source, mandatory, rho, max_rounds)
    times = np.concatenate(
        _run_sharded(kernel, graph, parameters, n_replicas, seed, shard_size, jobs)
    )
    _check_timeouts(
        times, raise_on_timeout, "BIPS", "infect", graph, max_rounds,
        error_cls=InfectionTimeoutError,
    )
    return times
