"""BIPS: Biased Infection with Persistent Source (paper §1).

Process definition: a fixed source ``v`` is permanently infected.  In
every round, each vertex ``u ≠ v`` independently selects ``k``
neighbours uniformly at random with replacement and is infected in
round ``t+1`` **iff** at least one selected neighbour was infected in
round ``t``.  Note that infection is *refreshed* each round: a vertex
other than the source loses its infection whenever all of its samples
miss the infected set.  The quantity of interest is
``infec(v) = min{t : A_t = V}``.

The process is the time-reversal dual of COBRA (paper Theorem 4); see
:mod:`repro.exact.duality` for the machine-precision verification.

Fractional branching (Corollary 1): ``branching = 1 + ρ`` makes every
vertex sample one neighbour, plus a second with probability ``ρ``.
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike
from repro.errors import InfectionTimeoutError
from repro.core.process import (
    RoundRecord,
    SpreadingProcess,
    resolve_vertex,
    validate_branching,
    validate_loss,
    validate_replacement,
)
from repro.graphs.base import Graph


class BipsProcess(SpreadingProcess):
    """A BIPS epidemic with a persistent source.

    Timeouts raise :class:`~repro.errors.InfectionTimeoutError` (an
    infection process's goal is full infection, not coverage).

    Parameters
    ----------
    graph:
        The underlying connected graph.
    source:
        The permanently infected source vertex ``v``.
    branching:
        Sampling factor ``k`` (any real ``>= 1``; the paper's main
        setting is ``2``).
    seed:
        Randomness source.
    replacement:
        The paper's process samples *with* replacement (default).
        ``False`` contacts distinct neighbours instead — the dual of
        without-replacement COBRA (Theorem 4 carries over).
    loss_probability:
        Independent per-contact loss (extension): each contact fails to
        observe its target with this probability, i.e. an infected
        neighbour is only *seen* as infected if the contact survives.
        The dual of equally-lossy COBRA (Theorem 4 carries over).
    """

    timeout_error = InfectionTimeoutError

    def __init__(
        self,
        graph: Graph,
        source: int,
        *,
        branching: float = 2.0,
        seed: SeedLike = None,
        replacement: bool = True,
        loss_probability: float = 0.0,
    ) -> None:
        super().__init__(graph, seed=seed)
        self._mandatory, self._rho = validate_branching(branching)
        validate_replacement(graph, self._mandatory, self._rho, replacement)
        self._replacement = bool(replacement)
        self._loss = validate_loss(loss_probability, replacement)
        self._branching = float(branching)
        self._source = resolve_vertex(graph, source, role="source")
        n = graph.n_vertices
        self._infected = np.zeros(n, dtype=bool)
        self._infected[self._source] = True
        self._ever_infected = self._infected.copy()
        self._infection_time: int | None = 0 if n == 1 else None
        self._all_vertices = np.arange(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    @property
    def source(self) -> int:
        """The persistent source vertex."""
        return self._source

    @property
    def branching(self) -> float:
        """The sampling factor ``k`` (possibly fractional)."""
        return self._branching

    @property
    def replacement(self) -> bool:
        """Whether neighbour contacts are with replacement (paper semantics)."""
        return self._replacement

    @property
    def loss_probability(self) -> float:
        """Per-contact loss probability (0 = the paper's lossless setting)."""
        return self._loss

    @property
    def active_mask(self) -> np.ndarray:
        """Mask of currently infected vertices ``A_t`` (a copy)."""
        return self._infected.copy()

    @property
    def active_count(self) -> int:
        """``|A_t|``."""
        return int(self._infected.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        """Mask of ever-infected vertices (a copy)."""
        return self._ever_infected.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._ever_infected.sum())

    @property
    def is_complete(self) -> bool:
        """Whether the *current* infected set is the whole graph."""
        return self.active_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        """The infection time ``infec(v)`` once reached, else ``None``."""
        return self._infection_time

    @property
    def infection_time(self) -> int | None:
        """Alias for :attr:`completion_time` using the paper's name."""
        return self._infection_time

    def is_infected(self, vertex: int) -> bool:
        """Whether ``vertex`` belongs to the current infected set."""
        return bool(self._infected[vertex])

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _sample(self, vertices: np.ndarray, count: int) -> np.ndarray:
        if self._replacement:
            return self._graph.sample_neighbors(vertices, count, self._rng)
        return self._graph.sample_distinct_neighbors(vertices, count, self._rng)

    def _observed_infected(self, infected: np.ndarray, picks: np.ndarray) -> np.ndarray:
        """Per-row: did at least one *surviving* contact hit an infected vertex?"""
        hits = infected[picks]
        if self._loss > 0.0:
            hits &= self._rng.random(picks.shape) >= self._loss
        return hits.any(axis=1)

    def step(self) -> RoundRecord:
        """Advance ``A_t -> A_{t+1}``: every non-source vertex re-samples."""
        graph = self._graph
        rng = self._rng
        infected = self._infected
        next_infected = np.zeros(graph.n_vertices, dtype=bool)
        if self._rho > 0.0:
            # A coin per vertex decides whether it contacts k or k+1
            # neighbours this round (the fractional-branching law).
            extra_mask = rng.random(graph.n_vertices) < self._rho
            base_vertices = self._all_vertices[~extra_mask]
            extra_vertices = self._all_vertices[extra_mask]
            transmissions = 0
            if base_vertices.size:
                picks = self._sample(base_vertices, self._mandatory)
                next_infected[base_vertices] = self._observed_infected(infected, picks)
                transmissions += picks.size
            if extra_vertices.size:
                picks = self._sample(extra_vertices, self._mandatory + 1)
                next_infected[extra_vertices] = self._observed_infected(infected, picks)
                transmissions += picks.size
            # Exclude the persistent source's contacts from the count.
            transmissions -= self._mandatory + (1 if extra_mask[self._source] else 0)
        else:
            picks = self._sample(self._all_vertices, self._mandatory)
            next_infected = self._observed_infected(infected, picks)
            # The persistent source does not sample; its row is drawn
            # for vectorisation convenience but overridden below and
            # excluded from the contact count.
            transmissions = picks.size - self._mandatory
        next_infected[self._source] = True
        self._infected = next_infected
        self._round_index += 1

        newly = next_infected & ~self._ever_infected
        newly_count = int(newly.sum())
        if newly_count:
            self._ever_infected |= next_infected
        current = int(next_infected.sum())
        if self._infection_time is None and current == graph.n_vertices:
            self._infection_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=current,
            cumulative_count=int(self._ever_infected.sum()),
            newly_reached=newly_count,
            transmissions=transmissions,
        )
