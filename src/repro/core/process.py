"""Shared framework for round-based spreading processes.

Every process in :mod:`repro.core` evolves a set of vertices in
synchronous rounds and reports one :class:`RoundRecord` per round.  The
framework fixes the common vocabulary:

* the **active set** is the process state at the current round
  (`C_t` for COBRA, `A_t` for BIPS, the informed set for push);
* the **cumulative set** is the union of active sets over past rounds —
  what "covered" means for the process (COBRA unions from round 1, per
  the paper's definition of `cov`);
* **completion** is the process-specific goal: full coverage for
  COBRA/push/random-walk, full *simultaneous* infection for BIPS.

Branching factors are real numbers ``b >= 1``: each acting vertex makes
``floor(b)`` mandatory neighbour draws plus one extra draw with
probability ``b - floor(b)``.  ``b = 2`` is the paper's main setting;
``b = 1 + ρ`` with ``0 < ρ < 1`` is the fractional branching of
Theorem 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.errors import CoverTimeoutError, ProcessError
from repro.graphs.base import Graph


@dataclass(frozen=True)
class RoundRecord:
    """Measurements for one synchronous round of a spreading process.

    Attributes
    ----------
    round_index:
        The round number ``t``; the first call to ``step`` produces
        ``t = 1``.
    active_count:
        Size of the active set *after* the round (``|C_t|`` / ``|A_t|``).
    cumulative_count:
        Size of the cumulative (covered) set after the round.
    newly_reached:
        Number of vertices that entered the cumulative set this round.
    transmissions:
        Number of point-to-point messages sent during the round.
    """

    round_index: int
    active_count: int
    cumulative_count: int
    newly_reached: int
    transmissions: int


class Trace:
    """An append-only sequence of :class:`RoundRecord` with array views."""

    def __init__(self, records: Iterable[RoundRecord] = ()) -> None:
        self._records: list[RoundRecord] = list(records)

    def append(self, record: RoundRecord) -> None:
        """Append one round's record."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[RoundRecord]:
        """The records as an immutable-by-convention sequence."""
        return tuple(self._records)

    def active_counts(self) -> np.ndarray:
        """``|active set|`` per round, as an array."""
        return np.array([record.active_count for record in self._records], dtype=np.int64)

    def cumulative_counts(self) -> np.ndarray:
        """``|cumulative set|`` per round, as an array."""
        return np.array([record.cumulative_count for record in self._records], dtype=np.int64)

    def transmissions(self) -> np.ndarray:
        """Messages sent per round, as an array."""
        return np.array([record.transmissions for record in self._records], dtype=np.int64)

    def total_transmissions(self) -> int:
        """Total messages sent over all recorded rounds."""
        return int(self.transmissions().sum())


def validate_branching(branching: float) -> tuple[int, float]:
    """Split a branching factor into (mandatory draws, extra-draw probability).

    Returns ``(k, rho)`` with ``k = floor(branching) >= 1`` and
    ``rho = branching - k`` in ``[0, 1)``.
    """
    branching = float(branching)
    if not np.isfinite(branching) or branching < 1.0:
        raise ProcessError(f"branching factor must be a finite number >= 1, got {branching}")
    mandatory = int(np.floor(branching))
    rho = branching - mandatory
    # Guard against float artefacts like floor(2.0) -> 1 never happening,
    # but 1.9999999 should stay fractional rather than rounding up.
    return mandatory, rho


def validate_loss(loss_probability: float, replacement: bool) -> float:
    """Check a per-message loss probability.

    Loss is modelled as independent thinning of each neighbour draw and
    is supported for with-replacement sampling (the paper's setting);
    combining it with distinct draws is rejected to keep the exact
    engines and the simulators in lockstep.
    """
    loss_probability = float(loss_probability)
    if not 0.0 <= loss_probability < 1.0:
        raise ProcessError(
            f"loss_probability must be in [0, 1), got {loss_probability}"
        )
    if loss_probability > 0.0 and not replacement:
        raise ProcessError(
            "message loss is only supported with replacement sampling"
        )
    return loss_probability


def validate_replacement(
    graph: Graph, mandatory: int, rho: float, replacement: bool
) -> None:
    """Check degree feasibility of without-replacement sampling.

    Sampling ``k`` distinct neighbours (plus a possible extra draw for
    fractional branching) requires every sampling vertex to have at
    least that many neighbours.
    """
    if replacement:
        return
    required = mandatory + (1 if rho > 0.0 else 0)
    if graph.min_degree < required:
        raise ProcessError(
            f"without-replacement sampling with branching {mandatory + rho} needs "
            f"minimum degree >= {required}, but graph {graph.name!r} has a vertex "
            f"of degree {graph.min_degree}"
        )


def resolve_vertex(graph: Graph, vertex: int, *, role: str) -> int:
    """Validate a vertex index against the graph, with a readable error."""
    vertex = int(vertex)
    if not 0 <= vertex < graph.n_vertices:
        raise ProcessError(
            f"{role} vertex {vertex} out of range [0, {graph.n_vertices})"
        )
    return vertex


def resolve_vertex_set(graph: Graph, vertices: int | Iterable[int], *, role: str) -> np.ndarray:
    """Normalise a vertex or iterable of vertices to a unique index array."""
    if isinstance(vertices, (int, np.integer)):
        return np.array([resolve_vertex(graph, int(vertices), role=role)], dtype=np.int64)
    array = np.unique(np.asarray(list(vertices), dtype=np.int64))
    if array.size == 0:
        raise ProcessError(f"{role} set must be non-empty")
    if array[0] < 0 or array[-1] >= graph.n_vertices:
        raise ProcessError(
            f"{role} set contains out-of-range vertices "
            f"(graph has {graph.n_vertices} vertices)"
        )
    return array


class SpreadingProcess(ABC):
    """Abstract base for synchronous-round spreading processes."""

    #: The :class:`~repro.errors.ProcessTimeoutError` subclass runners
    #: raise when this process misses its goal within the round cap.
    #: Coverage processes (the default) raise the cover flavour;
    #: infection processes (BIPS, SIS) override with the infection one.
    timeout_error: type = CoverTimeoutError

    def __init__(self, graph: Graph, *, seed: SeedLike = None) -> None:
        self._graph = graph
        self._rng = ensure_generator(seed)
        self._round_index = 0

    # -- common read-only state ---------------------------------------

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def rng(self) -> np.random.Generator:
        """The generator driving this process's randomness."""
        return self._rng

    @property
    def round_index(self) -> int:
        """Number of rounds executed so far."""
        return self._round_index

    @property
    @abstractmethod
    def active_mask(self) -> np.ndarray:
        """Boolean mask of the current active set (a defensive copy)."""

    @property
    @abstractmethod
    def active_count(self) -> int:
        """Size of the current active set."""

    @property
    @abstractmethod
    def cumulative_mask(self) -> np.ndarray:
        """Boolean mask of the cumulative (covered) set (a copy)."""

    @property
    @abstractmethod
    def cumulative_count(self) -> int:
        """Size of the cumulative set."""

    @property
    @abstractmethod
    def is_complete(self) -> bool:
        """Whether the process reached its goal state."""

    @property
    @abstractmethod
    def completion_time(self) -> int | None:
        """Round at which the goal was first reached, or ``None``."""

    # -- evolution ------------------------------------------------------

    @abstractmethod
    def step(self) -> RoundRecord:
        """Execute one synchronous round and return its record."""

    def run(self, rounds: int) -> Trace:
        """Execute ``rounds`` rounds unconditionally, returning a trace."""
        if rounds < 0:
            raise ProcessError(f"rounds must be non-negative, got {rounds}")
        trace = Trace()
        for _ in range(rounds):
            trace.append(self.step())
        return trace

    def active_vertices(self) -> np.ndarray:
        """Indices of currently active vertices, sorted."""
        return np.flatnonzero(self.active_mask)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(graph={self._graph.name!r}, "
            f"round={self._round_index}, active={self.active_count})"
        )
