"""The classical randomised rumour-spreading *push* protocol.

Each round, every **informed** vertex pushes the rumour to one
neighbour chosen uniformly at random; informed vertices stay informed
forever.  This is the baseline the paper's introduction contrasts COBRA
against: push covers expanders in ``O(log n)`` rounds but keeps *every*
informed vertex transmitting every round, whereas COBRA bounds the
per-vertex transmission duty cycle (a vertex transmits only in rounds
where it holds a token).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import SeedLike
from repro.core.process import RoundRecord, SpreadingProcess, resolve_vertex_set
from repro.graphs.base import Graph


class PushProcess(SpreadingProcess):
    """Push rumour spreading from an initial informed set.

    Parameters
    ----------
    graph:
        The underlying connected graph.
    start:
        Initially informed vertex or vertices.
    seed:
        Randomness source.
    """

    def __init__(
        self,
        graph: Graph,
        start: int | Iterable[int],
        *,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, seed=seed)
        start_vertices = resolve_vertex_set(graph, start, role="start")
        n = graph.n_vertices
        self._informed = np.zeros(n, dtype=bool)
        self._informed[start_vertices] = True
        self._completion_time: int | None = (
            0 if int(self._informed.sum()) == n else None
        )

    @property
    def active_mask(self) -> np.ndarray:
        """Mask of informed vertices (informed == active for push)."""
        return self._informed.copy()

    @property
    def active_count(self) -> int:
        return int(self._informed.sum())

    @property
    def cumulative_mask(self) -> np.ndarray:
        return self._informed.copy()

    @property
    def cumulative_count(self) -> int:
        return int(self._informed.sum())

    @property
    def is_complete(self) -> bool:
        """Whether every vertex is informed."""
        return self.active_count == self._graph.n_vertices

    @property
    def completion_time(self) -> int | None:
        """Broadcast time once every vertex is informed, else ``None``."""
        return self._completion_time

    def step(self) -> RoundRecord:
        """Every informed vertex pushes to one uniform neighbour."""
        graph = self._graph
        informed_vertices = np.flatnonzero(self._informed)
        targets = graph.sample_neighbors(informed_vertices, 1, self._rng).ravel()
        before = int(self._informed.sum())
        self._informed[targets] = True
        self._round_index += 1
        after = int(self._informed.sum())
        if self._completion_time is None and after == graph.n_vertices:
            self._completion_time = self._round_index
        return RoundRecord(
            round_index=self._round_index,
            active_count=after,
            cumulative_count=after,
            newly_reached=after - before,
            transmissions=int(informed_vertices.size),
        )
