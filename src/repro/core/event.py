"""Event-driven continuous-time engines: Gillespie COBRA, BIPS, and SIS.

The round-based engines (sequential and batch) pay ``rounds × n`` even
when almost nothing is happening.  The engines here simulate the same
processes in *continuous time*: every active particle (COBRA) or armed
vertex (BIPS/SIS) carries an independent exponential clock, and a
binary-heap kernel pops one firing at a time, touching only the active
frontier.  Cost scales with *events*, not rounds — the regime the
epidemic-modelling literature simulates with Gillespie kernels, and the
natural home of the paper's dual-process view (a COBRA token firing is
one contact of the dual epidemic).

Two clock laws share each kernel, selected by ``time_step``:

* ``time_step=None`` (default) — true asynchronous Gillespie dynamics:
  each armed vertex fires after ``Exponential(rate)`` waiting times,
  events are processed one at a time, and lazy heap invalidation (an
  epoch counter per clock) keeps disarmed vertices from firing.  By
  memorylessness, cancelling a clock and redrawing it later is
  law-exact, so the kernel only ever schedules the armed frontier.
* ``time_step=Δ`` — the *discrete-round limit*: every armed vertex
  fires deterministically at every multiple of ``Δ``, and each
  generation is processed against a snapshot of the pre-generation
  state.  This reproduces the synchronous round law exactly (completion
  time = rounds × Δ in distribution), which is what the agreement tests
  pin against the batch engines, while still only touching the armed
  frontier each tick — the sparse-frontier fast path the event
  benchmark measures.

Rates:

* ``transmission_rate`` scales every firing clock (and divides the
  default time horizon, so doubling the rate halves completion times).
* ``recovery_rate`` (BIPS/SIS, asynchronous mode only) adds independent
  spontaneous-recovery clocks to infected vertices; the persistent BIPS
  source never recovers.
* ``edge_rate_overrides`` reweights neighbour-contact selection per
  edge: a firing vertex picks each neighbour with probability
  proportional to the edge weight (default 1.0), and the BIPS/SIS hit
  probability becomes the infected fraction *by weight*.  A weight of
  ``0.0`` blocks an edge entirely.

BIPS/SIS *arming*: a susceptible vertex with no infected-weight among
its neighbours resamples to susceptible with certainty, so skipping its
clock is law-exact; the armed set is ``infected ∪ {susceptible with
infected neighbour weight > 0}`` and the kernels maintain it
incrementally on every flip.

Sharding and determinism mirror :mod:`repro.core.batch` exactly: the
replicas split into fixed shards via :func:`~repro.core.batch._run_sharded`
(``SeedSequence.spawn`` children per shard, then per replica), so for a
fixed ``seed`` and ``shard_size`` every returned array is bit-identical
at any ``jobs`` count, and spawn-started pools reattach the graph
zero-copy through the SharedGraph path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, ensure_generator, spawn_seed_sequences
from repro.core.batch import _run_sharded
from repro.core.process import resolve_vertex, resolve_vertex_set, validate_branching
from repro.core.runner import default_max_rounds
from repro.errors import CoverTimeoutError, InfectionTimeoutError, ProcessError
from repro.graphs.base import Graph
from repro.parallel import resolve_shared_graph


# ---------------------------------------------------------------------------
# Per-edge contact rates.
# ---------------------------------------------------------------------------


def resolve_edge_rates(graph: Graph, overrides) -> np.ndarray | None:
    """Per-CSR-position contact weights for ``edge_rate_overrides``.

    ``overrides`` is an iterable of ``(u, v, rate)`` triples; each is
    applied to *both* directions of an existing edge (the weighting is
    symmetric, which is what keeps the incremental infected-mass
    bookkeeping exact).  Unlisted edges keep weight ``1.0``.  Returns
    ``None`` when there is nothing to override (the uniform fast path),
    else a float array aligned with ``graph.indices``.

    Rejects: malformed triples, unknown vertices, self-loops, missing
    edges, negative/non-finite rates, duplicate pairs, and any vertex
    left with zero total contact weight (it could never fire).
    """
    if overrides is None:
        return None
    triples = list(overrides)
    if not triples:
        return None
    indptr, indices = graph.indptr, graph.indices
    n = graph.n_vertices
    weights = np.ones(indices.size, dtype=np.float64)
    seen: set[tuple[int, int]] = set()

    def positions(u: int, v: int) -> slice:
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        row = indices[lo:hi]
        left = lo + int(np.searchsorted(row, v, side="left"))
        right = lo + int(np.searchsorted(row, v, side="right"))
        if left == right:
            raise ProcessError(
                f"edge_rate_overrides: graph {graph.name!r} has no edge ({u}, {v})"
            )
        return slice(left, right)

    for item in triples:
        try:
            u, v, rate = item
        except (TypeError, ValueError):
            raise ProcessError(
                f"edge_rate_overrides entries must be (u, v, rate) triples, "
                f"got {item!r}"
            ) from None
        u, v, rate = int(u), int(v), float(rate)
        if not 0 <= u < n or not 0 <= v < n:
            raise ProcessError(
                f"edge_rate_overrides: vertex pair ({u}, {v}) out of range "
                f"[0, {n})"
            )
        if u == v:
            raise ProcessError(f"edge_rate_overrides: self-loop ({u}, {v}) rejected")
        if not np.isfinite(rate) or rate < 0.0:
            raise ProcessError(
                f"edge_rate_overrides: rate for edge ({u}, {v}) must be a "
                f"finite number >= 0, got {rate}"
            )
        key = (min(u, v), max(u, v))
        if key in seen:
            raise ProcessError(
                f"edge_rate_overrides: duplicate override for edge {key}"
            )
        seen.add(key)
        weights[positions(u, v)] = rate
        weights[positions(v, u)] = rate

    row_totals = np.add.reduceat(weights, indptr[:-1])
    row_totals[graph.degrees == 0] = 1.0  # isolated vertices never fire
    dead = np.flatnonzero(row_totals <= 0.0)
    if dead.size:
        raise ProcessError(
            f"edge_rate_overrides leave vertex {int(dead[0])} with zero total "
            f"contact rate; every vertex needs at least one positive edge"
        )
    return weights


class _Contacts:
    """Per-shard neighbour-contact sampler, uniform or edge-weighted.

    Weighted draws use one global prefix-sum over the CSR weight array:
    position ``j`` is selected iff ``cum0[j] <= base(v) + r < cum0[j+1]``
    for ``r`` uniform on ``[0, row_total(v))`` — zero-weight positions
    occupy an empty interval and are never selected.
    """

    __slots__ = ("indptr", "indices", "degrees", "weights", "cum0", "row_tot")

    def __init__(self, graph: Graph, weights: np.ndarray | None) -> None:
        self.indptr = graph.indptr
        self.indices = graph.indices
        self.degrees = graph.degrees
        self.weights = weights
        if weights is None:
            self.cum0 = None
            self.row_tot = None
        else:
            self.cum0 = np.concatenate([[0.0], np.cumsum(weights)])
            self.row_tot = self.cum0[self.indptr[1:]] - self.cum0[self.indptr[:-1]]

    def draw_one(self, v: int, k: int, rng: np.random.Generator) -> np.ndarray:
        """``k`` contact draws (with replacement) for one firing vertex."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        if self.weights is None:
            return self.indices[lo + rng.integers(0, hi - lo, size=k)]
        x = self.cum0[lo] + rng.random(k) * self.row_tot[v]
        return self.indices[np.searchsorted(self.cum0, x, side="right") - 1]

    def draw_many(self, verts: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """``(m, k)`` contact draws for a whole generation of vertices."""
        lo = self.indptr[verts]
        if self.weights is None:
            offsets = rng.integers(0, self.degrees[verts][:, None], size=(verts.size, k))
            return self.indices[lo[:, None] + offsets]
        x = self.cum0[lo][:, None] + rng.random((verts.size, k)) * self.row_tot[verts][:, None]
        return self.indices[np.searchsorted(self.cum0, x, side="right") - 1]

    def infected_fraction(self, v: int, n_inf: np.ndarray, w_inf) -> float:
        """The probability one contact of ``v`` lands on an infected vertex."""
        if self.weights is None:
            return n_inf[v] / self.degrees[v]
        q = w_inf[v] / self.row_tot[v]
        return min(1.0, max(0.0, q))

    def seed_mass(self, infected_vertices, n_inf: np.ndarray, w_inf) -> None:
        """Initialise neighbour infected-mass counters from an infected set."""
        for u in infected_vertices:
            row = slice(self.indptr[u], self.indptr[u + 1])
            neighbours = self.indices[row]
            n_inf[neighbours] += 1
            if w_inf is not None:
                w_inf[neighbours] += self.weights[row]

    def apply_flip(self, v: int, sign: int, n_inf: np.ndarray, w_inf) -> np.ndarray:
        """Propagate one state flip of ``v`` into its neighbours' mass.

        Returns the neighbour array (for the caller's arm/disarm pass).
        Symmetric weights make ``weight(v -> x) == weight(x -> v)``, so
        one pass over ``v``'s row updates every neighbour exactly.
        """
        row = slice(self.indptr[v], self.indptr[v + 1])
        neighbours = self.indices[row]
        if sign > 0:
            n_inf[neighbours] += 1
            if w_inf is not None:
                w_inf[neighbours] += self.weights[row]
        else:
            n_inf[neighbours] -= 1
            if w_inf is not None:
                w_inf[neighbours] -= self.weights[row]
                # Clear float drift exactly where the armed set changes.
                w_inf[neighbours[n_inf[neighbours] == 0]] = 0.0
        return neighbours


# ---------------------------------------------------------------------------
# COBRA kernels.
# ---------------------------------------------------------------------------


def _cobra_replica_exp(
    contacts: _Contacts,
    n: int,
    start: int,
    mandatory: int,
    rho: float,
    rate: float,
    max_time: float,
    include_start: bool,
    rng: np.random.Generator,
) -> float:
    """One asynchronous COBRA replica; ``-1.0`` marks a timeout.

    Each occupied site fires at ``rate``; a firing site draws its
    branching contacts, its tokens move (coalescing on arrival), and
    cover is the union of all contacts ever drawn — the continuous-time
    analogue of the paper's round process.
    """
    active = np.zeros(n, dtype=bool)
    covered = np.zeros(n, dtype=bool)
    active[start] = True
    covered_count = 0
    if include_start:
        covered[start] = True
        covered_count = 1
        if covered_count == n:
            return 0.0
    epoch = np.zeros(n, dtype=np.int64)
    heap = [(rng.exponential() / rate, start, 0)]
    while heap:
        t, v, entry_epoch = heapq.heappop(heap)
        if entry_epoch != epoch[v]:
            continue  # stale: v was consumed/disarmed since this push
        if t > max_time:
            return -1.0
        k = mandatory + (1 if rho > 0.0 and rng.random() < rho else 0)
        picks = contacts.draw_one(v, k, rng)
        active[v] = False
        epoch[v] += 1
        for pick in picks:
            p = int(pick)
            if not covered[p]:
                covered[p] = True
                covered_count += 1
            if not active[p]:
                active[p] = True
                epoch[p] += 1
                heapq.heappush(heap, (t + rng.exponential() / rate, p, int(epoch[p])))
        if covered_count == n:
            return t
    return -1.0  # pragma: no cover - COBRA always keeps >= 1 active site


def _cobra_replica_sync(
    contacts: _Contacts,
    n: int,
    start: int,
    mandatory: int,
    rho: float,
    time_step: float,
    max_ticks: int,
    include_start: bool,
    rng: np.random.Generator,
) -> float:
    """One discrete-round-limit COBRA replica (all sites fire each tick).

    Identical in law to the synchronous round engines with completion
    time scaled by ``time_step``, but each tick costs only the active
    frontier — the sparse-frontier regime where events beat rounds.
    """
    covered = np.zeros(n, dtype=bool)
    covered_count = 0
    if include_start:
        covered[start] = True
        covered_count = 1
        if covered_count == n:
            return 0.0
    # The active set travels as a sorted vertex array, never as a
    # length-n mask scan, so tick cost tracks the frontier.
    verts = np.array([start], dtype=np.int64)
    for tick in range(1, max_ticks + 1):
        flat = contacts.draw_many(verts, mandatory, rng).ravel()
        if rho > 0.0:
            branch = rng.random(verts.size) < rho
            if branch.any():
                flat = np.concatenate(
                    [flat, contacts.draw_many(verts[branch], 1, rng).ravel()]
                )
        verts = np.unique(flat)  # tokens coalesce; sorted for determinism
        fresh = verts[~covered[verts]]
        if fresh.size:
            covered[fresh] = True
            covered_count += fresh.size
        if covered_count == n:
            return tick * time_step
    return -1.0


# ---------------------------------------------------------------------------
# BIPS / SIS kernels (one epidemic kernel; BIPS = persistent source).
# ---------------------------------------------------------------------------


def _epidemic_replica_exp(
    contacts: _Contacts,
    n: int,
    source: int | None,
    initial_mask: np.ndarray,
    mandatory: int,
    rho: float,
    rate: float,
    recovery_rate: float,
    max_time: float,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """One asynchronous BIPS/SIS replica: ``(completion, extinction)`` times.

    Armed vertices resample at ``rate``: the new state is infected with
    probability ``1 - (1 - q)^k`` for infected-neighbour fraction ``q``
    (by weight), exactly the refresh law of the round engines.  The
    persistent source (BIPS) never resamples; ``recovery_rate`` adds
    spontaneous recovery clocks to infected non-source vertices.
    Either return value is ``-1.0`` when that outcome never happened.
    """
    weighted = contacts.weights is not None
    infected = initial_mask.copy()
    infected_count = int(infected.sum())
    if infected_count == n:
        return 0.0, -1.0
    n_inf = np.zeros(n, dtype=np.int64)
    w_inf = np.zeros(n, dtype=np.float64) if weighted else None
    contacts.seed_mass(np.flatnonzero(infected), n_inf, w_inf)
    epoch = np.zeros(n, dtype=np.int64)
    repoch = np.zeros(n, dtype=np.int64)
    heap: list[tuple[float, int, int, int]] = []
    for v in range(n):
        if v == source:
            continue
        if infected[v] or n_inf[v] > 0:
            epoch[v] += 1
            heapq.heappush(heap, (rng.exponential() / rate, v, 0, int(epoch[v])))
        if recovery_rate > 0.0 and infected[v]:
            repoch[v] += 1
            heapq.heappush(
                heap, (rng.exponential() / recovery_rate, v, 1, int(repoch[v]))
            )

    def flip(v: int, now: float) -> None:
        nonlocal infected_count
        sign = -1 if infected[v] else 1
        infected[v] = not infected[v]
        infected_count += sign
        neighbours = contacts.apply_flip(v, sign, n_inf, w_inf)
        candidates = neighbours[~infected[neighbours]]
        if source is not None:
            candidates = candidates[candidates != source]
        if sign > 0:
            for x in candidates[n_inf[candidates] == 1]:
                x = int(x)
                epoch[x] += 1  # newly armed: fresh clock
                heapq.heappush(
                    heap, (now + rng.exponential() / rate, x, 0, int(epoch[x]))
                )
        else:
            disarmed = candidates[n_inf[candidates] == 0]
            epoch[disarmed] += 1  # lazily cancels their pending clocks
        if recovery_rate > 0.0 and v != source:
            repoch[v] += 1
            if infected[v]:
                heapq.heappush(
                    heap,
                    (now + rng.exponential() / recovery_rate, v, 1, int(repoch[v])),
                )

    while heap:
        t, v, kind, entry_epoch = heapq.heappop(heap)
        if entry_epoch != (epoch[v] if kind == 0 else repoch[v]):
            continue
        if t > max_time:
            return -1.0, -1.0
        if kind == 0:
            q = contacts.infected_fraction(v, n_inf, w_inf)
            k = mandatory + (1 if rho > 0.0 and rng.random() < rho else 0)
            if q >= 1.0:
                new = True
            elif q <= 0.0:
                new = False
            else:
                new = rng.random() < -np.expm1(k * np.log1p(-q))
            if new != infected[v]:
                flip(v, t)
            epoch[v] += 1  # this clock is consumed either way
            if infected[v] or n_inf[v] > 0:
                heapq.heappush(heap, (t + rng.exponential() / rate, v, 0, int(epoch[v])))
        else:
            flip(v, t)  # recovery: infected -> susceptible
            if not (infected[v] or n_inf[v] > 0):
                epoch[v] += 1  # cancel the now-pointless resample clock
        if infected_count == n:
            return t, -1.0
        if infected_count == 0:
            return -1.0, t
    return -1.0, -1.0  # pragma: no cover - armed set empties only at extinction


def _epidemic_replica_sync(
    contacts: _Contacts,
    n: int,
    source: int | None,
    initial_mask: np.ndarray,
    mandatory: int,
    rho: float,
    time_step: float,
    max_ticks: int,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """One discrete-round-limit BIPS/SIS replica (all armed fire each tick).

    Every armed vertex resamples against a snapshot of the pre-tick
    state — exactly the synchronous refresh law, with completion times
    scaled by ``time_step``.  Unarmed susceptible vertices resample to
    susceptible with certainty, so skipping them is law-exact and the
    per-tick cost is the armed frontier, not ``n``.
    """
    weighted = contacts.weights is not None
    infected = initial_mask.copy()
    infected_count = int(infected.sum())
    if infected_count == n:
        return 0.0, -1.0
    n_inf = np.zeros(n, dtype=np.int64)
    w_inf = np.zeros(n, dtype=np.float64) if weighted else None
    contacts.seed_mass(np.flatnonzero(infected), n_inf, w_inf)
    # The armed set travels as a sorted vertex array and is patched
    # incrementally at the vertices each tick touches, so tick cost
    # tracks the frontier, not n (one O(n) scan at initialisation).
    armed = infected | (n_inf > 0)
    if source is not None:
        armed[source] = False
    verts = np.flatnonzero(armed)
    for tick in range(1, max_ticks + 1):
        if verts.size == 0:  # pragma: no cover - extinction returns first
            break
        if weighted:
            q = np.clip(w_inf[verts] / contacts.row_tot[verts], 0.0, 1.0)
        else:
            q = n_inf[verts] / contacts.degrees[verts]
        if rho > 0.0:
            k = mandatory + (rng.random(verts.size) < rho)
        else:
            k = mandatory
        certain = q >= 1.0
        p = -np.expm1(k * np.log1p(-np.where(certain, 0.0, q)))
        p = np.where(certain, 1.0, p)
        new = rng.random(verts.size) < p
        changed = verts[new != infected[verts]]
        if changed.size:
            touched = [changed]
            for v in changed:
                v = int(v)
                sign = -1 if infected[v] else 1
                infected[v] = not infected[v]
                infected_count += sign
                touched.append(contacts.apply_flip(v, sign, n_inf, w_inf))
            touched_verts = np.unique(np.concatenate(touched))
            now_armed = infected[touched_verts] | (n_inf[touched_verts] > 0)
            if source is not None:
                now_armed[touched_verts == source] = False
            verts = np.union1d(
                np.setdiff1d(verts, touched_verts, assume_unique=True),
                touched_verts[now_armed],
            )
        if infected_count == n:
            return tick * time_step, -1.0
        if infected_count == 0:
            return -1.0, tick * time_step
    return -1.0, -1.0


# ---------------------------------------------------------------------------
# Shard kernels (the `_run_sharded` plug-ins).
# ---------------------------------------------------------------------------


def _cobra_event_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    (graph, weights, start, mandatory, rho, rate, time_step, max_time, max_ticks,
     include_start) = context
    graph = resolve_shared_graph(graph)
    contacts = _Contacts(graph, weights)
    n = graph.n_vertices
    times = np.empty(stop_index - start_index, dtype=np.float64)
    for i, child in enumerate(spawn_seed_sequences(seed, times.size)):
        rng = ensure_generator(child)
        if time_step is None:
            times[i] = _cobra_replica_exp(
                contacts, n, start, mandatory, rho, rate, max_time, include_start, rng
            )
        else:
            times[i] = _cobra_replica_sync(
                contacts, n, start, mandatory, rho, time_step, max_ticks,
                include_start, rng,
            )
    return times


def _epidemic_event_shard(
    context: tuple, start_index: int, stop_index: int, seed: SeedLike
) -> np.ndarray:
    (graph, weights, source, initial, mandatory, rho, rate, recovery_rate,
     time_step, max_time, max_ticks) = context
    graph = resolve_shared_graph(graph)
    contacts = _Contacts(graph, weights)
    n = graph.n_vertices
    initial_mask = np.zeros(n, dtype=bool)
    initial_mask[initial] = True
    outcomes = np.empty((stop_index - start_index, 2), dtype=np.float64)
    for i, child in enumerate(spawn_seed_sequences(seed, outcomes.shape[0])):
        rng = ensure_generator(child)
        if time_step is None:
            outcomes[i] = _epidemic_replica_exp(
                contacts, n, source, initial_mask, mandatory, rho, rate,
                recovery_rate, max_time, rng,
            )
        else:
            outcomes[i] = _epidemic_replica_sync(
                contacts, n, source, initial_mask, mandatory, rho, time_step,
                max_ticks, rng,
            )
    return outcomes


# ---------------------------------------------------------------------------
# Parameter validation shared by the entry points.
# ---------------------------------------------------------------------------


def _validate_rate(name: str, value: float, *, minimum_exclusive: bool) -> float:
    value = float(value)
    bound = "> 0" if minimum_exclusive else ">= 0"
    if not np.isfinite(value) or (value <= 0.0 if minimum_exclusive else value < 0.0):
        raise ProcessError(f"{name} must be a finite number {bound}, got {value}")
    return value


def _resolve_horizon(
    graph: Graph, max_time: float | None, time_step: float | None, rate: float
) -> tuple[float, int]:
    """The time horizon and (sync mode) tick cap for one entry point.

    The default horizon matches the round engines' generous
    :func:`~repro.core.runner.default_max_rounds` cap, converted to
    time units: ``cap × Δ`` in sync mode, ``cap / rate`` in
    asynchronous mode (each armed vertex fires ``rate`` times per unit
    time, so ``cap / rate`` spans the same number of generations).
    """
    if time_step is not None:
        time_step = float(time_step)
        if not np.isfinite(time_step) or time_step <= 0.0:
            raise ProcessError(
                f"time_step must be a finite number > 0 (or None for "
                f"asynchronous clocks), got {time_step}"
            )
    if max_time is None:
        cap = default_max_rounds(graph)
        if time_step is not None:
            return cap * time_step, cap
        return cap / rate, 0
    max_time = float(max_time)
    if not np.isfinite(max_time) or max_time <= 0.0:
        raise ProcessError(f"max_time must be a finite number > 0, got {max_time}")
    if time_step is not None:
        return max_time, int(np.floor(max_time / time_step + 1e-9))
    return max_time, 0


def _check_time_timeouts(
    times: np.ndarray,
    raise_on_timeout: bool,
    process_name: str,
    goal: str,
    graph: Graph,
    max_time: float,
    error_cls: type,
) -> None:
    timed_out = int((times < 0).sum())
    if timed_out and raise_on_timeout:
        raise error_cls(
            f"{timed_out}/{times.size} {process_name} event-engine replicas on "
            f"{graph.name} did not {goal} within time horizon {max_time:g}"
        )


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def event_cobra_cover_times(
    graph: Graph,
    start: int,
    *,
    branching: float = 2.0,
    transmission_rate: float = 1.0,
    time_step: float | None = None,
    edge_rate_overrides=None,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_time: float | None = None,
    include_start_in_cover: bool = False,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
) -> np.ndarray:
    """Continuous cover times of ``n_replicas`` event-driven COBRA runs.

    The Gillespie sibling of
    :func:`~repro.core.batch.batch_cobra_cover_times`: same sharding
    and seed-stability contract (bit-identical at any ``jobs``), but
    returns *float* times in continuous units.  ``time_step=Δ``
    switches to the discrete-round limit, whose times are exactly
    ``rounds × Δ`` in distribution.  Timeouts raise
    :class:`~repro.errors.CoverTimeoutError` (default) or are reported
    as ``-1.0``.
    """
    mandatory, rho = validate_branching(branching)
    start = resolve_vertex(graph, start, role="start")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    rate = _validate_rate("transmission_rate", transmission_rate, minimum_exclusive=True)
    weights = resolve_edge_rates(graph, edge_rate_overrides)
    max_time, max_ticks = _resolve_horizon(graph, max_time, time_step, rate)
    parameters = (
        weights, start, mandatory, rho, rate, time_step, max_time, max_ticks,
        include_start_in_cover,
    )
    times = np.concatenate(
        _run_sharded(_cobra_event_shard, graph, parameters, n_replicas, seed,
                     shard_size, jobs)
    )
    _check_time_timeouts(
        times, raise_on_timeout, "COBRA", "cover", graph, max_time, CoverTimeoutError
    )
    return times


def event_bips_infection_times(
    graph: Graph,
    source: int,
    *,
    branching: float = 2.0,
    transmission_rate: float = 1.0,
    recovery_rate: float = 0.0,
    time_step: float | None = None,
    edge_rate_overrides=None,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_time: float | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
) -> np.ndarray:
    """Continuous infection times of ``n_replicas`` event-driven BIPS runs.

    Armed vertices resample their state asynchronously (or per tick
    with ``time_step``); the persistent source stays infected
    throughout, and completion is *simultaneous* full infection —
    the same goal as the round engines.  ``recovery_rate`` adds
    spontaneous recoveries (asynchronous mode only: a deterministic
    tick grid cannot carry an independent recovery clock).  Timeouts
    raise :class:`~repro.errors.InfectionTimeoutError` or are ``-1.0``.
    """
    mandatory, rho = validate_branching(branching)
    source = resolve_vertex(graph, source, role="source")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    rate = _validate_rate("transmission_rate", transmission_rate, minimum_exclusive=True)
    recovery = _validate_rate("recovery_rate", recovery_rate, minimum_exclusive=False)
    if recovery > 0.0 and time_step is not None:
        raise ProcessError(
            "recovery_rate > 0 requires asynchronous clocks (time_step=None); "
            "the discrete-round limit has no recovery events"
        )
    weights = resolve_edge_rates(graph, edge_rate_overrides)
    max_time, max_ticks = _resolve_horizon(graph, max_time, time_step, rate)
    initial = np.array([source], dtype=np.int64)
    parameters = (
        weights, source, initial, mandatory, rho, rate, recovery, time_step,
        max_time, max_ticks,
    )
    outcomes = np.concatenate(
        _run_sharded(_epidemic_event_shard, graph, parameters, n_replicas, seed,
                     shard_size, jobs)
    )
    times = outcomes[:, 0]
    _check_time_timeouts(
        times, raise_on_timeout, "BIPS", "infect", graph, max_time,
        InfectionTimeoutError,
    )
    return times


@dataclass(frozen=True)
class SisEventResult:
    """Outcomes of an event-driven SIS ensemble.

    Each replica ends in exactly one of three ways: full simultaneous
    infection (``infection_times[i] >= 0``), extinction — the absorbing
    all-susceptible state (``extinction_times[i] >= 0``) — or a
    timeout (both ``-1.0``).
    """

    infection_times: np.ndarray
    extinction_times: np.ndarray

    @property
    def n_replicas(self) -> int:
        """Number of replicas."""
        return int(self.infection_times.size)

    def infected_mask(self) -> np.ndarray:
        """Replicas that reached simultaneous full infection."""
        return self.infection_times >= 0

    def extinct_mask(self) -> np.ndarray:
        """Replicas whose epidemic died out."""
        return self.extinction_times >= 0

    def timed_out_mask(self) -> np.ndarray:
        """Replicas that hit the time horizon with neither outcome."""
        return ~(self.infected_mask() | self.extinct_mask())


def event_sis_times(
    graph: Graph,
    initial,
    *,
    branching: float = 2.0,
    transmission_rate: float = 1.0,
    recovery_rate: float = 0.0,
    time_step: float | None = None,
    edge_rate_overrides=None,
    n_replicas: int = 100,
    seed: SeedLike = None,
    max_time: float | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
    shard_size: int | None = None,
) -> SisEventResult:
    """Event-driven SIS (no persistent source): infection vs extinction.

    The ablation counterpart of :func:`event_bips_infection_times`
    (compare :class:`~repro.core.sis.SisProcess`): identical resample
    law but every vertex can recover, so the all-susceptible state is
    absorbing and each replica either fully infects, goes extinct, or
    times out.  With ``raise_on_timeout=True`` (default) replicas that
    reach *neither* absorbing outcome raise
    :class:`~repro.errors.InfectionTimeoutError`.
    """
    mandatory, rho = validate_branching(branching)
    initial = resolve_vertex_set(graph, initial, role="initial")
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    rate = _validate_rate("transmission_rate", transmission_rate, minimum_exclusive=True)
    recovery = _validate_rate("recovery_rate", recovery_rate, minimum_exclusive=False)
    if recovery > 0.0 and time_step is not None:
        raise ProcessError(
            "recovery_rate > 0 requires asynchronous clocks (time_step=None); "
            "the discrete-round limit has no recovery events"
        )
    weights = resolve_edge_rates(graph, edge_rate_overrides)
    max_time, max_ticks = _resolve_horizon(graph, max_time, time_step, rate)
    parameters = (
        weights, None, initial, mandatory, rho, rate, recovery, time_step,
        max_time, max_ticks,
    )
    outcomes = np.concatenate(
        _run_sharded(_epidemic_event_shard, graph, parameters, n_replicas, seed,
                     shard_size, jobs)
    )
    result = SisEventResult(
        infection_times=outcomes[:, 0].copy(), extinction_times=outcomes[:, 1].copy()
    )
    stuck = int(result.timed_out_mask().sum())
    if stuck and raise_on_timeout:
        raise InfectionTimeoutError(
            f"{stuck}/{n_replicas} SIS event-engine replicas on {graph.name} "
            f"neither fully infected nor went extinct within time horizon "
            f"{max_time:g}"
        )
    return result
