"""Trace-level metrics: transmission budgets and coverage curves.

COBRA's design goal (paper §1) is to propagate fast *while limiting
the number of transmissions per vertex per step*.  The helpers here
quantify that trade-off from recorded traces so the E9 experiment can
put COBRA, push, and push–pull on a common rounds-vs-messages axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.process import Trace


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one process run.

    Attributes
    ----------
    rounds:
        Number of recorded rounds.
    total_transmissions:
        Messages summed over all rounds.
    peak_transmissions_per_round:
        Largest per-round message count (the instantaneous network load).
    mean_transmissions_per_round:
        Average per-round message count.
    peak_active:
        Largest active-set size observed.
    final_cumulative:
        Cumulative (covered) count at the end of the trace.
    """

    rounds: int
    total_transmissions: int
    peak_transmissions_per_round: int
    mean_transmissions_per_round: float
    peak_active: int
    final_cumulative: int


def summarize_trace(trace: Trace) -> TraceSummary:
    """Aggregate a trace into a :class:`TraceSummary`."""
    if len(trace) == 0:
        return TraceSummary(0, 0, 0, 0.0, 0, 0)
    transmissions = trace.transmissions()
    active = trace.active_counts()
    return TraceSummary(
        rounds=len(trace),
        total_transmissions=int(transmissions.sum()),
        peak_transmissions_per_round=int(transmissions.max()),
        mean_transmissions_per_round=float(transmissions.mean()),
        peak_active=int(active.max()),
        final_cumulative=int(trace.cumulative_counts()[-1]),
    )


def time_to_fraction(trace: Trace, n_vertices: int, fraction: float) -> int | None:
    """First round at which cumulative coverage reaches ``fraction`` of `n`.

    Returns ``None`` if the trace never reaches the target.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    target = int(np.ceil(fraction * n_vertices))
    cumulative = trace.cumulative_counts()
    reached = np.flatnonzero(cumulative >= target)
    if reached.size == 0:
        return None
    return int(trace[int(reached[0])].round_index)


def coverage_curve(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """``(rounds, cumulative_counts)`` arrays for plotting coverage growth."""
    rounds = np.array([record.round_index for record in trace], dtype=np.int64)
    return rounds, trace.cumulative_counts()


def active_set_curve(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """``(rounds, active_counts)`` arrays for plotting active-set dynamics."""
    rounds = np.array([record.round_index for record in trace], dtype=np.int64)
    return rounds, trace.active_counts()
