"""Runners: drive a process until completion, timeout, or extinction.

These helpers implement the measurement loop every experiment shares:
step a process until its goal state (coverage / full infection), with a
safety cap on rounds, optional trace recording, and ensemble sampling
over independently seeded replicas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._rng import SeedLike, spawn_seed_sequences
from repro.core.process import SpreadingProcess, Trace
from repro.graphs.base import Graph
from repro.parallel import map_shards, resolve_jobs, shard_bounds


def default_max_rounds(graph: Graph) -> int:
    """A generous safety cap: ``1000 + 20 n ceil(log2 n)`` rounds.

    Calibration: COBRA/BIPS on expanders complete in ``O(log n)``
    rounds, a single random walk in ``O(n log n)``; the cap leaves an
    order of magnitude of slack over the slowest baseline on the
    graphs the experiments use.
    """
    n = graph.n_vertices
    return 1000 + 20 * n * max(1, math.ceil(math.log2(max(n, 2))))


@dataclass(frozen=True)
class RunResult:
    """Outcome of driving a process with :func:`run_process`.

    Attributes
    ----------
    completed:
        Whether the goal state was reached within the round cap.
    completion_time:
        Round at which the goal was first reached (``None`` on timeout
        or extinction).
    rounds_run:
        Total rounds executed.
    extinct:
        Whether the process hit an absorbing empty state (plain SIS
        only; always false for the other processes).
    final_active_count:
        Active-set size when the run stopped.
    final_cumulative_count:
        Cumulative-set size when the run stopped.
    trace:
        Per-round records if requested, else ``None``.
    """

    completed: bool
    completion_time: int | None
    rounds_run: int
    extinct: bool
    final_active_count: int
    final_cumulative_count: int
    trace: Trace | None


def run_process(
    process: SpreadingProcess,
    *,
    max_rounds: int | None = None,
    record_trace: bool = False,
    raise_on_timeout: bool = False,
) -> RunResult:
    """Step ``process`` until completion, extinction, or the round cap.

    Parameters
    ----------
    process:
        A freshly constructed process (already-complete processes
        return immediately).
    max_rounds:
        Safety cap; defaults to :func:`default_max_rounds` of the
        process's graph.
    record_trace:
        Keep per-round records (costs memory proportional to rounds).
    raise_on_timeout:
        Raise the process's goal-flavoured
        :class:`~repro.errors.ProcessTimeoutError` subclass
        (:class:`~repro.errors.CoverTimeoutError` for coverage
        processes, :class:`~repro.errors.InfectionTimeoutError` for
        BIPS/SIS) instead of returning ``completed=False``.
    """
    if max_rounds is None:
        max_rounds = default_max_rounds(process.graph)
    trace = Trace() if record_trace else None
    extinct = False
    while not process.is_complete and process.round_index < max_rounds:
        record = process.step()
        if trace is not None:
            trace.append(record)
        if record.active_count == 0:
            extinct = True
            break
    completed = process.is_complete
    if not completed and raise_on_timeout and not extinct:
        raise process.timeout_error(
            f"{type(process).__name__} on {process.graph.name} did not complete "
            f"within {max_rounds} rounds (active={process.active_count}, "
            f"cumulative={process.cumulative_count})"
        )
    return RunResult(
        completed=completed,
        completion_time=process.completion_time,
        rounds_run=process.round_index,
        extinct=extinct,
        final_active_count=process.active_count,
        final_cumulative_count=process.cumulative_count,
        trace=trace,
    )


def _completion_shard(
    context: tuple, start_index: int, stop_index: int, seed_sequences: list
) -> np.ndarray:
    """Completion times for one shard of replicas; ``-1`` on timeout.

    ``raise_on_timeout`` is applied per replica by :func:`run_process`,
    so a miscalibrated round cap fails fast with full process/graph
    diagnostics instead of burning through the whole ensemble first
    (extinction records ``-1`` and never raises).
    """
    factory, max_rounds, raise_on_timeout = context
    times = np.empty(stop_index - start_index, dtype=np.int64)
    for offset, seed_sequence in enumerate(seed_sequences):
        process = factory(np.random.default_rng(seed_sequence))
        result = run_process(
            process, max_rounds=max_rounds, raise_on_timeout=raise_on_timeout
        )
        times[offset] = result.completion_time if result.completed else -1
    return times


def sample_completion_times(
    factory: Callable[[np.random.Generator], SpreadingProcess],
    n_samples: int,
    *,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    raise_on_timeout: bool = True,
    jobs: int | None = None,
) -> np.ndarray:
    """Completion times of ``n_samples`` independently seeded replicas.

    Parameters
    ----------
    factory:
        Callable building a fresh process from a generator, e.g.
        ``lambda rng: CobraProcess(graph, 0, seed=rng)``.
    n_samples:
        Ensemble size.
    seed:
        Master seed; replica ``i`` uses the ``i``-th spawned child
        stream, independent of how replicas are sharded over workers,
        so results are bit-identical for every ``jobs``.
    max_rounds:
        Per-replica round cap.
    raise_on_timeout:
        Raise if any replica fails to complete (default), else record
        ``-1`` for that replica.
    jobs:
        Worker processes (``None`` = the process-wide default, ``0`` =
        one per CPU, ``1`` = inline).  The pool prefers the ``fork``
        start method so closure factories need not be picklable.

    Returns
    -------
    numpy.ndarray
        Integer array of length ``n_samples`` of completion times
        (``-1`` marks a timeout when ``raise_on_timeout=False``).
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    n_workers = resolve_jobs(jobs)
    children = spawn_seed_sequences(seed, n_samples)
    if n_workers <= 1:
        bounds = [(0, n_samples)]
    else:
        # Small shards (about four per worker) balance load; per-replica
        # seeding makes the shard layout irrelevant to the results.
        shard_size = max(1, -(-n_samples // (4 * n_workers)))
        bounds = shard_bounds(n_samples, shard_size)
    tasks = [(start, stop, children[start:stop]) for start, stop in bounds]
    context = (factory, max_rounds, raise_on_timeout)
    return np.concatenate(map_shards(_completion_shard, context, tasks, jobs=n_workers))
