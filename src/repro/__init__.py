"""Reproduction of *The Coalescing-Branching Random Walk on Expanders
and the Dual Epidemic Process* (Cooper, Radzik, Rivera; PODC 2016).

Public API highlights:

* :class:`~repro.graphs.Graph` and the generators in :mod:`repro.graphs`
  — the graph substrate (immutable CSR, spectral tools);
* :class:`~repro.core.CobraProcess` / :class:`~repro.core.BipsProcess`
  — the paper's two processes, plus push / push–pull / random-walk /
  SIS baselines, all behind one ``SpreadingProcess`` interface;
* :mod:`repro.exact` — exact subset-distribution engines and the
  machine-precision duality check (Theorem 4);
* :mod:`repro.theory` — every closed-form bound in the paper;
* :mod:`repro.experiments` — the E1–E13 validation experiments, also
  runnable via ``python -m repro``;
* :mod:`repro.scenarios` — typed workloads, named scenarios, and graph
  families: run any experiment on new size grids, degree sets, or
  graph families without touching experiment code.

Quickstart::

    from repro import graphs, CobraProcess, run_process

    g = graphs.random_regular(1024, 8, seed=1)
    process = CobraProcess(g, start=0, branching=2, seed=2)
    result = run_process(process)
    print(result.completion_time)   # O(log n) rounds on an expander
"""

from repro import (
    analysis,
    backends,
    cache,
    core,
    exact,
    experiments,
    graphs,
    parallel,
    scenarios,
    theory,
)
from repro.backends import Backend, resolve_backend, set_default_backend
from repro.cache import ResultCache
from repro.core import (
    BipsProcess,
    CobraProcess,
    PullProcess,
    PushProcess,
    PushPullProcess,
    RandomWalkProcess,
    RoundRecord,
    RunResult,
    SisProcess,
    SpreadingProcess,
    Trace,
    run_process,
    sample_completion_times,
)
from repro.errors import (
    BackendError,
    CacheError,
    CoverTimeoutError,
    ExactEngineError,
    ExperimentError,
    GraphConstructionError,
    GraphPropertyError,
    InfectionTimeoutError,
    ParallelError,
    ProcessError,
    ProcessTimeoutError,
    ReproError,
    ScenarioError,
)
from repro.graphs import Graph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "graphs",
    "core",
    "exact",
    "theory",
    "analysis",
    "experiments",
    "parallel",
    "cache",
    "backends",
    "scenarios",
    # backends
    "Backend",
    "resolve_backend",
    "set_default_backend",
    # caching
    "ResultCache",
    # core types
    "Graph",
    "SpreadingProcess",
    "RoundRecord",
    "Trace",
    "CobraProcess",
    "BipsProcess",
    "SisProcess",
    "PushProcess",
    "PullProcess",
    "PushPullProcess",
    "RandomWalkProcess",
    "RunResult",
    "run_process",
    "sample_completion_times",
    # errors
    "ReproError",
    "GraphConstructionError",
    "GraphPropertyError",
    "ProcessError",
    "ProcessTimeoutError",
    "CoverTimeoutError",
    "InfectionTimeoutError",
    "ExactEngineError",
    "ExperimentError",
    "ParallelError",
    "BackendError",
    "CacheError",
    "ScenarioError",
]
