"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the resilience test suite (and the CI ``chaos-smoke``
job) to exercise worker crashes, hangs, cache corruption, and
shared-memory attach failures on demand instead of trusting those
paths on faith.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    InjectedTerminalError,
    active_fault_plan,
    fault_point,
    inject_faults,
    should_inject,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "InjectedTerminalError",
    "active_fault_plan",
    "fault_point",
    "inject_faults",
    "should_inject",
]
