"""Deterministic fault injection for the resilience machinery.

The campaign runtime promises to survive worker crashes, hung pools,
cache corruption, and shared-memory attach races.  None of those
failures occur naturally in CI, so this module plants seeded
*injection points* at the places they would strike; tests (and the CI
``chaos-smoke`` job) activate them through an environment variable and
get the same failures on every run.

Activation travels in the ``REPRO_FAULTS`` environment variable as a
JSON fault plan, so spawn-started pool workers — which re-import the
package and share nothing but the environment — see exactly the same
plan as the parent.  :func:`inject_faults` is the context-manager
front door::

    with inject_faults({"site": "worker_fault", "max_attempt": 1}):
        run_campaign(campaign, out, retry=RetryPolicy(max_attempts=3))

Every firing decision is a pure function of ``(seed, site, token,
attempt)`` — hashed, not drawn from shared RNG state — so it does not
depend on worker count, scheduling order, or how many other sites
fired first.  ``token`` is a stable identity supplied by the call site
(campaign entries use their result-file stem), and ``attempt`` is the
retry attempt number, which is what lets a plan say "fail the first
two attempts of every entry, then succeed" (``max_attempt: 2``).

Known sites
-----------

``worker_fault``
    Raises :class:`InjectedFaultError` (an ``OSError`` — classified
    transient by the retry policy) or, with ``"terminal": true``,
    :class:`InjectedTerminalError` (an ``ExperimentError`` — terminal).
``worker_crash``
    Hard-kills the worker process with ``os._exit`` — no exception, no
    cleanup, exactly like an OOM kill.  Outside a daemonic pool worker
    it raises :class:`InjectedFaultError` instead: killing the test
    process itself would take pytest down with it.
``worker_hang``
    Sleeps for ``duration`` seconds (default 3600) in a pool worker,
    simulating a hung task for the deadline watchdog to reap.  Outside
    a pool worker it raises :class:`InjectedFaultError` — an inline
    hang could never be interrupted.
``cache_corrupt``
    Checked by :meth:`repro.cache.ResultCache.put` via
    :func:`should_inject`; a firing makes the just-published entry a
    truncated torn write.
``shm_attach``
    Raises ``OSError`` inside :meth:`repro.parallel.SharedGraph.graph`
    on the worker-side attach, simulating a shared-memory attach race.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ExperimentError, FaultSpecError

#: Environment variable carrying the active fault plan as JSON.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Sites an injection spec may target.
KNOWN_SITES = frozenset(
    {"worker_fault", "worker_crash", "worker_hang", "cache_corrupt", "shm_attach"}
)

#: Exit status used by ``worker_crash`` hard kills (chosen to be
#: recognisable in pool post-mortems; the value itself is arbitrary).
CRASH_EXIT_CODE = 70


class InjectedFaultError(OSError):
    """A deliberately injected *transient* failure.

    Subclasses ``OSError`` so the retry policy's classification treats
    it exactly like the OS-level failures it stands in for.
    """


class InjectedTerminalError(ExperimentError):
    """A deliberately injected *terminal* failure (never retried)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, how often, and for which tokens.

    ``rate`` is the per-decision firing probability (1.0 = always);
    ``match`` restricts firing to tokens containing the substring;
    ``max_attempt`` restricts firing to attempt numbers at or below it
    (the retry-then-succeed pattern); ``terminal`` makes
    ``worker_fault`` raise a terminal error instead of a transient
    one; ``duration`` is the ``worker_hang`` sleep in seconds.
    """

    site: str
    rate: float = 1.0
    match: str | None = None
    max_attempt: int | None = None
    terminal: bool = False
    duration: float = 3600.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(KNOWN_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise FaultSpecError(
                f"fault max_attempt must be >= 1, got {self.max_attempt!r}"
            )
        if self.duration <= 0:
            raise FaultSpecError(f"fault duration must be > 0, got {self.duration!r}")

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"site": self.site}
        if self.rate != 1.0:
            data["rate"] = self.rate
        if self.match is not None:
            data["match"] = self.match
        if self.max_attempt is not None:
            data["max_attempt"] = self.max_attempt
        if self.terminal:
            data["terminal"] = True
        if self.duration != 3600.0:
            data["duration"] = self.duration
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultSpecError(
                f"fault spec must be an object, got {type(data).__name__}"
            )
        unknown = sorted(
            set(data) - {"site", "rate", "match", "max_attempt", "terminal", "duration"}
        )
        if unknown:
            raise FaultSpecError(f"fault spec has unknown keys {unknown}")
        site = data.get("site")
        if not isinstance(site, str):
            raise FaultSpecError(f"fault spec needs a string 'site', got {data!r}")
        rate = data.get("rate", 1.0)
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise FaultSpecError(f"fault rate must be a number, got {rate!r}")
        match = data.get("match")
        if match is not None and not isinstance(match, str):
            raise FaultSpecError(f"fault match must be a string, got {match!r}")
        max_attempt = data.get("max_attempt")
        if max_attempt is not None and (
            isinstance(max_attempt, bool) or not isinstance(max_attempt, int)
        ):
            raise FaultSpecError(
                f"fault max_attempt must be an integer, got {max_attempt!r}"
            )
        terminal = data.get("terminal", False)
        if not isinstance(terminal, bool):
            raise FaultSpecError(f"fault terminal must be a boolean, got {terminal!r}")
        duration = data.get("duration", 3600.0)
        if isinstance(duration, bool) or not isinstance(duration, (int, float)):
            raise FaultSpecError(f"fault duration must be a number, got {duration!r}")
        return cls(
            site=site,
            rate=float(rate),
            match=match,
            max_attempt=max_attempt,
            terminal=terminal,
            duration=float(duration),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the set of active injection rules."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [spec.to_dict() for spec in self.specs]},
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise FaultSpecError(f"malformed {FAULTS_ENV_VAR} JSON: {error}") from None
        if isinstance(data, list):
            data = {"faults": data}
        if not isinstance(data, dict):
            raise FaultSpecError(
                f"{FAULTS_ENV_VAR} must be a fault list or plan object, "
                f"got {type(data).__name__}"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultSpecError(f"fault plan seed must be an integer, got {seed!r}")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise FaultSpecError(
                f"fault plan 'faults' must be a list, got {type(faults).__name__}"
            )
        return cls(
            specs=tuple(FaultSpec.from_dict(spec) for spec in faults), seed=seed
        )

    def matching(self, site: str, token: str, attempt: int) -> FaultSpec | None:
        """The first spec that fires for this decision, or ``None``.

        The decision is a pure hash of ``(seed, site, token, attempt)``
        — deterministic across processes, worker counts, and
        evaluation order.
        """
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match is not None and spec.match not in token:
                continue
            if spec.max_attempt is not None and attempt > spec.max_attempt:
                continue
            if spec.rate < 1.0 and _unit_hash(self.seed, site, token, attempt) >= spec.rate:
                continue
            return spec
        return None


def _unit_hash(seed: int, site: str, token: str, attempt: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one decision."""
    payload = f"{seed}|{site}|{token}|{attempt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


#: Parse cache: ``(raw env value, parsed plan)``.  ``os.environ`` is
#: the source of truth (spawn workers inherit it); parsing is cached on
#: the raw string so a hot injection point costs one dict lookup.
_plan_cache: tuple[str, FaultPlan] | None = None


def active_fault_plan() -> FaultPlan | None:
    """The plan from ``REPRO_FAULTS``, or ``None`` when inactive."""
    global _plan_cache
    raw = os.environ.get(FAULTS_ENV_VAR)
    if not raw:
        return None
    if _plan_cache is None or _plan_cache[0] != raw:
        _plan_cache = (raw, FaultPlan.from_json(raw))
    return _plan_cache[1]


def should_inject(site: str, token: str = "", attempt: int = 1) -> bool:
    """Whether a call-site-implemented fault (e.g. cache corruption) fires."""
    plan = active_fault_plan()
    if plan is None:
        return False
    return plan.matching(site, token, attempt) is not None


def _in_pool_worker() -> bool:
    """Whether this process is a daemonic pool worker (safe to kill)."""
    return multiprocessing.current_process().daemon


def fault_point(site: str, token: str = "", attempt: int = 1) -> None:
    """Enact the fault for ``site`` if the active plan says it fires.

    No-op (one environment lookup) when no plan is active.  Raising
    sites raise; ``worker_crash`` hard-exits a pool worker;
    ``worker_hang`` sleeps a pool worker.  Crash and hang degrade to a
    transient raise outside pool workers, where killing or hanging the
    process would take the caller's whole test run down.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    spec = plan.matching(site, token, attempt)
    if spec is None:
        return
    detail = f"site={site} token={token!r} attempt={attempt}"
    if site == "worker_crash" and _in_pool_worker():
        os._exit(CRASH_EXIT_CODE)
    if site == "worker_hang" and _in_pool_worker():
        # Sleep in slices so pool.terminate()'s SIGTERM lands promptly.
        end = time.monotonic() + spec.duration
        while time.monotonic() < end:
            time.sleep(min(0.1, max(0.0, end - time.monotonic())))
        raise InjectedFaultError(f"injected hang elapsed uninterrupted ({detail})")
    if spec.terminal:
        raise InjectedTerminalError(f"injected terminal fault ({detail})")
    raise InjectedFaultError(f"injected transient fault ({detail})")


@contextmanager
def inject_faults(
    *specs: FaultSpec | dict[str, Any], seed: int = 0
) -> Iterator[FaultPlan]:
    """Activate a fault plan for the scope (environment-propagated).

    Accepts :class:`FaultSpec` objects or plain spec dicts.  The plan
    is installed in ``os.environ[REPRO_FAULTS]`` so pools started
    inside the scope carry it to their workers regardless of start
    method; the previous value is restored on exit.
    """
    resolved = tuple(
        spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
        for spec in specs
    )
    plan = FaultPlan(specs=resolved, seed=seed)
    previous = os.environ.get(FAULTS_ENV_VAR)
    os.environ[FAULTS_ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV_VAR, None)
        else:
            os.environ[FAULTS_ENV_VAR] = previous
