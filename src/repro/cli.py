"""Command-line interface: list, inspect, and run the reproduction experiments.

Usage (installed as ``cobra-repro`` or via ``python -m repro``)::

    cobra-repro list                      # all experiments and claims
    cobra-repro info E4                   # one experiment's identity card
    cobra-repro run E1 --mode quick       # run and print one experiment
    cobra-repro run E1 --out results/     # ... also write JSON
    cobra-repro run E1 --set sizes=256,512 --set samples=8   # override workload
    cobra-repro all --mode quick          # run everything in order
    cobra-repro all --only E1,E4 --skip E11   # filter the sweep
    cobra-repro scenario list             # named workloads (paper + diversity)
    cobra-repro scenario run e2-hypercube # run a named scenario
    cobra-repro scenario validate s.json  # schema-check scenario files
    cobra-repro run E1 --jobs 4           # shard ensembles over 4 workers
    cobra-repro campaign c.json --jobs 0  # one campaign entry per CPU
    cobra-repro run E1 --cache-dir .repro-cache   # reuse cached results
    cobra-repro campaign c.json --stream  # tail entries as they finish
    cobra-repro campaign c.json --retries 3 --entry-deadline 300   # resilient
    cobra-repro campaign c.json --resume  # continue after a crash
    cobra-repro campaign c.json --shard 0/4 --cache-dir shared/   # 1 of 4 hosts
    cobra-repro cache stats               # inspect the result cache
    cobra-repro lint src tests            # static invariant checks
    cobra-repro lint --format json        # ... machine-readable findings

A campaign run exits 3 when any entry failed or was skipped
(``--fail-fast``), so schedulers can tell "ran but incomplete" from
usage errors (exit 1).  ``lint`` exits 2 when findings remain, again
distinct from usage errors.

``--jobs`` never changes results: replica seeding is sharded
seed-stably (see :mod:`repro.parallel`), so any worker count produces
the same numbers.  ``--cache-dir`` never changes results either: the
cache key covers everything a run computes from (see
:mod:`repro.cache`), so a hit is byte-identical to a recomputation.
``--set`` overrides are workload fields (see :mod:`repro.scenarios`);
an override grid equal to the preset hits the preset's cache entries.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.experiments import experiment_ids, get_spec


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="cobra-repro",
        description=(
            "Reproduction of 'The Coalescing-Branching Random Walk on Expanders "
            "and the Dual Epidemic Process' (Cooper, Radzik, Rivera; PODC 2016)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for ensemble sampling and campaign entries "
            "(default 1; 0 = one per CPU); results are independent of N"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "array backend for the batch engines: 'numpy' (default), 'numba' "
            "(compiled kernel tier, needs the cobra-repro[numba] extra), "
            "'cupy', or 'array-api:<module>'; falls back to the "
            "REPRO_BACKEND environment variable, and deterministic backends "
            "produce bit-identical results for a fixed seed"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiments")

    info = subparsers.add_parser("info", help="show one experiment's identity card")
    info.add_argument("experiment", help="experiment id, e.g. E1")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. E1")
    _add_run_options(run)
    run.add_argument(
        "--engine",
        default=None,
        choices=("process", "batch", "compiled", "event", "sparse"),
        help=(
            "measurement engine for engine-aware experiments: 'batch' "
            "(vectorised rounds, the default), 'compiled' (batch on the "
            "numba backend — bit-identical, JIT-compiled rounds), 'process' "
            "(sequential rounds), 'event' (continuous-time Gillespie), or "
            "'sparse' (frontier-proportional kernels for million-vertex "
            "graphs); shorthand for --set engine=NAME"
        ),
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="FIELD=VALUE",
        help=(
            "override one workload field on top of the --mode preset "
            "(repeatable), e.g. --set sizes=256,512 --set samples=8; "
            "values equal to the preset reuse the preset's cache entries"
        ),
    )

    run_all = subparsers.add_parser("all", help="run every experiment in order")
    _add_run_options(run_all)
    run_all.add_argument(
        "--only",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to run (e.g. E1,E4); others are skipped",
    )
    run_all.add_argument(
        "--skip",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to skip (e.g. E11)",
    )

    scenario = subparsers.add_parser(
        "scenario", help="list, inspect, run, or validate named workload scenarios"
    )
    scenario_actions = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_actions.add_parser("list", help="all built-in scenarios")
    scenario_info = scenario_actions.add_parser(
        "info", help="one scenario's experiment, description, and workload"
    )
    scenario_info.add_argument("name", help="scenario name or scenario JSON file path")
    scenario_run = scenario_actions.add_parser(
        "run", help="run a scenario by name or from a JSON file"
    )
    scenario_run.add_argument("name", help="scenario name or scenario JSON file path")
    scenario_run.add_argument("--seed", type=int, default=0, help="master seed")
    scenario_run.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="directory to write JSON results into",
    )
    _add_jobs_option(scenario_run)
    _add_cache_options(scenario_run)
    scenario_validate = scenario_actions.add_parser(
        "validate",
        help="validate scenario (or campaign) JSON files against the schema",
    )
    scenario_validate.add_argument(
        "files", nargs="+", type=Path, help="scenario or campaign JSON files"
    )

    graph_info = subparsers.add_parser(
        "graph-info", help="build a graph family and print structure + spectrum"
    )
    graph_info.add_argument(
        "family",
        help=(
            "generator name from repro.graphs "
            "(e.g. petersen, complete, cycle, random_regular, torus)"
        ),
    )
    graph_info.add_argument(
        "params",
        nargs="*",
        help="positional generator arguments, integers or comma-tuples (e.g. 5,7)",
    )
    graph_info.add_argument("--seed", type=int, default=0, help="seed for random families")

    cover = subparsers.add_parser(
        "cover", help="run one COBRA broadcast on an expander and show the trace"
    )
    cover.add_argument("-n", type=int, default=1024, help="number of vertices")
    cover.add_argument("-r", type=int, default=8, help="degree")
    cover.add_argument("-k", "--branching", type=float, default=2.0, help="branching factor")
    cover.add_argument("--seed", type=int, default=0, help="master seed")

    duality = subparsers.add_parser(
        "duality", help="exact Theorem 4 check on a small structured graph"
    )
    duality.add_argument(
        "--graph",
        choices=("petersen", "k7", "c9"),
        default="petersen",
        help="small graph to verify on",
    )
    duality.add_argument("-k", "--branching", type=float, default=2.0, help="branching factor")
    duality.add_argument("--t-max", type=int, default=10, help="horizon")

    campaign = subparsers.add_parser(
        "campaign", help="run a JSON-described batch of experiments with a manifest"
    )
    campaign.add_argument("file", type=Path, help="campaign description JSON")
    campaign.add_argument(
        "--out", type=Path, default=Path("results"), help="output directory root"
    )
    campaign.add_argument(
        "--stream",
        action="store_true",
        help="print one line per entry as it completes (completion order under --jobs)",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "attempt budget per entry for transient failures (dead workers, "
            "missed deadlines, OS errors), with deterministic exponential "
            "backoff; default 1 = no retries"
        ),
    )
    campaign.add_argument(
        "--entry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hung-worker watchdog for pooled entries: an entry silent past "
            "this wall-clock budget fails (retryably) and the pool is recycled"
        ),
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay the crash-safe journal (manifest.partial*.jsonl) in the "
            "output directory and run only unfinished entries"
        ),
    )
    campaign.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "run only the entries whose campaign index is I mod N (0-based) "
            "and write manifest.shardIofN.json; N processes or hosts sharing "
            "a --cache-dir chew one campaign, then an unsharded --resume run "
            "merges the full manifest"
        ),
    )
    campaign.add_argument(
        "--fail-fast",
        action="store_true",
        help=(
            "stop at the first failed entry; entries never started are "
            "recorded as skipped"
        ),
    )
    _add_jobs_option(campaign)
    _add_cache_options(campaign)

    lint = subparsers.add_parser(
        "lint",
        help="static invariant checks: determinism, cache identity, backend purity",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks", "examples"],
        help="files or directories to check (default: the whole repository)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="finding output format (json is the CI artifact form)",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        nargs="?",
        const=Path("repro-lint-baseline.json"),
        default=None,
        metavar="FILE",
        help=(
            "subtract grandfathered findings recorded in FILE "
            "(default repro-lint-baseline.json when given bare)"
        ),
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain the result cache"
    )
    cache.add_argument(
        "action",
        choices=("stats", "clear", "prune"),
        help=(
            "stats = entry count and size, clear = delete everything, "
            "prune = delete corrupt or stale-schema entries"
        ),
    )
    cache.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="cache directory (default .repro-cache)",
    )
    return parser


def _parse_override_value(value: str):
    """A ``--set`` value: JSON for structured values, else the raw string.

    Plain strings (including ``"256,512"`` grids and scalars) are
    coerced by the workload's field specs; JSON objects/arrays cover
    structured fields like graph families.
    """
    value = value.strip()
    if value.startswith(("{", "[")):
        import json

        try:
            return json.loads(value)
        except ValueError as error:
            raise ReproError(f"--set value is not valid JSON: {value!r} ({error})")
    return value


def _parse_overrides(pairs: Sequence[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ReproError(f"--set needs FIELD=VALUE, got {pair!r}")
        overrides[key] = _parse_override_value(value)
    return overrides


def _filter_experiment_ids(only: str | None, skip: str | None) -> list[str]:
    """The ``all`` sweep's id list after ``--only`` / ``--skip`` filters."""
    known = experiment_ids()

    def parse(option: str, value: str) -> list[str]:
        ids = []
        for token in value.split(","):
            token = token.strip().upper()
            if not token:
                continue
            if token not in known:
                raise ReproError(
                    f"{option}: unknown experiment {token!r}; "
                    f"known ids: {', '.join(known)}"
                )
            ids.append(token)
        if not ids:
            raise ReproError(f"{option} needs at least one experiment id")
        return ids

    selected = parse("--only", only) if only is not None else list(known)
    skipped = set(parse("--skip", skip)) if skip is not None else set()
    remaining = [experiment_id for experiment_id in selected if experiment_id not in skipped]
    if not remaining:
        raise ReproError("--only/--skip left no experiments to run")
    return remaining


def _scenario_command(args: "argparse.Namespace") -> None:
    from repro.scenarios import iter_scenarios, resolve_scenario

    if args.scenario_command == "list":
        for scenario in iter_scenarios():
            print(
                f"{scenario.name:>18}  {scenario.experiment_id:<4} "
                f"{scenario.description}"
            )
    elif args.scenario_command == "info":
        scenario = resolve_scenario(args.name)
        workload = scenario.workload()
        print(f"[{scenario.name}] {scenario.experiment_id} (base: {scenario.base})")
        if scenario.description:
            print(f"  {scenario.description}")
        print(f"  workload: {workload.describe()}")
        import json

        print(json.dumps(scenario.to_dict(), indent=2))
    elif args.scenario_command == "run":
        scenario = resolve_scenario(args.name)
        _run_one(
            scenario.experiment_id,
            None,
            args.seed,
            args.out,
            _effective_cache_dir(args),
            workload=scenario.workload(),
            file_tag=scenario.name,
        )
    elif args.scenario_command == "validate":
        _validate_scenario_files(args.files)


def _validate_scenario_files(files: Sequence[Path]) -> None:
    """Schema-check scenario (or campaign) JSON files; any failure exits 1."""
    import json

    from repro.experiments.campaign import Campaign
    from repro.scenarios import validate_scenario_dict

    failures = 0
    for path in files:
        try:
            text = path.read_text()
            data = json.loads(text)
            if isinstance(data, dict) and "entries" in data:
                Campaign.from_json(text)
                kind = "campaign"
            else:
                validate_scenario_dict(data)
                kind = "scenario"
        except (OSError, ValueError, ReproError) as error:
            failures += 1
            print(f"FAIL {path}: {error}")
            continue
        print(f"ok   {path} ({kind})")
    if failures:
        raise ReproError(f"{failures} of {len(files)} file(s) failed validation")


def _campaign(
    file: Path,
    out: Path,
    jobs: int,
    cache_dir: Path | None,
    stream: bool,
    *,
    retries: int | None = None,
    entry_deadline: float | None = None,
    resume: bool = False,
    shard: str | None = None,
    fail_fast: bool = False,
) -> int:
    """Run a campaign file; returns the process exit code (0 or 3)."""
    import json

    from repro.experiments.campaign import Campaign, CampaignEntry, iter_campaign, run_campaign

    text = file.read_text()
    try:
        raw = json.loads(text)
    except ValueError as error:
        raise ReproError(f"malformed campaign description: {error}") from None
    if isinstance(raw, dict) and "entries" not in raw and "experiment_id" in raw:
        # A scenario file: run it as a one-entry campaign.
        from repro.scenarios import validate_scenario_dict

        scenario = validate_scenario_dict(raw)
        description = Campaign(
            name=scenario.name,
            entries=[
                CampaignEntry(
                    experiment_id=scenario.experiment_id, scenario=str(file)
                )
            ],
        )
        description.validate()
    else:
        description = Campaign.from_json(text)
    options = dict(
        jobs=jobs,
        cache_dir=cache_dir,
        retry=retries,
        entry_deadline=entry_deadline,
        resume=resume,
        shard=shard,
        fail_fast=fail_fast,
    )
    if stream:
        total = len(description.entries)
        entries = []
        for done, (index, record) in enumerate(
            iter_campaign(description, out, **options), start=1
        ):
            if "error" in record:
                status = f"ERROR {record['error']}"
            elif record.get("skipped"):
                status = "skipped"
            elif record.get("cached"):
                status = "cached"
            else:
                status = f"{record['seconds']}s"
            base = record.get("scenario", record.get("mode"))
            print(
                f"[{done}/{total}] {record['experiment_id']} "
                f"({base}, seed {record['seed']}) {status}"
            )
            entries.append(record)
        manifest = {"campaign": description.name, "entries": entries}
    else:
        manifest = run_campaign(description, out, progress=print, **options)
    total_seconds = sum(entry.get("seconds", 0.0) for entry in manifest["entries"])
    cached = sum(1 for entry in manifest["entries"] if entry.get("cached"))
    errors = sum(1 for entry in manifest["entries"] if "error" in entry)
    skipped = sum(1 for entry in manifest["entries"] if entry.get("skipped"))
    summary = f"campaign {description.name!r}: {len(manifest['entries'])} runs"
    if cached:
        summary += f" ({cached} cached)"
    if errors:
        summary += f" ({errors} failed)"
    if skipped:
        summary += f" ({skipped} skipped)"
    print(f"{summary} in {total_seconds:.1f}s -> {out / description.name}")
    # Exit 3 — distinct from usage errors (1) — when the campaign ran
    # but is incomplete, so schedulers and CI can retry or alert.
    return 3 if errors or skipped else 0


def _lint(args: "argparse.Namespace") -> int:
    """Run the static invariant checker; returns the process exit code.

    Exit codes: 0 clean, 1 usage error (bad rule id, unreadable
    baseline), 2 findings remain — distinct so CI can tell "violations
    found" from "lint misconfigured".
    """
    import json

    from repro.analysis.lint import (
        lint_paths,
        load_baseline,
        rules_by_id,
        save_baseline,
        split_against_baseline,
    )

    registry = rules_by_id()
    if args.list_rules:
        for rule_id, rule in registry.items():
            print(f"{rule_id:>16}  {rule.title}")
        return 0
    rules = None
    if args.rules is not None:
        selected = [token.strip() for token in args.rules.split(",") if token.strip()]
        unknown = sorted(set(selected) - set(registry))
        if unknown:
            raise ReproError(
                f"--rules: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(registry)}"
            )
        if not selected:
            raise ReproError("--rules needs at least one rule id")
        rules = [registry[rule_id] for rule_id in selected]
    if args.update_baseline and args.baseline is None:
        raise ReproError("--update-baseline needs --baseline [FILE]")

    report = lint_paths(args.paths, rules=rules)
    findings = list(report.findings)
    stale = []
    if args.baseline is not None and args.update_baseline:
        save_baseline(args.baseline, findings)
        print(f"baseline {args.baseline}: recorded {len(findings)} finding(s)")
        return 0
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        findings, _grandfathered, stale = split_against_baseline(findings, baseline)

    if args.output_format == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [finding.to_dict() for finding in findings],
            "stale_baseline": [entry.to_dict() for entry in stale],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        for entry in stale:
            print(
                f"note: baseline entry no longer occurs "
                f"({entry.path} [{entry.rule}] {entry.message!r}); remove it"
            )
        summary = f"{len(findings)} finding(s) in {report.files_checked} file(s)"
        print(summary if findings else f"clean: {summary}")
    return 2 if findings else 0


def _cache_command(action: str, cache_dir: Path | None) -> None:
    from repro.cache import DEFAULT_CACHE_DIR, ResultCache

    # Maintenance commands inspect an existing store; none of them
    # should create the directory as a side effect.
    cache = ResultCache(
        cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR, create=False
    )
    if action == "stats":
        summary = cache.stats_summary()
        print(f"cache {summary['directory']}: schema v{summary['schema']}")
        print(f"  entries: {summary['entries']}")
        print(f"  bytes  : {summary['bytes']}")
    elif action == "clear":
        removed = cache.clear()
        print(f"cache {cache.directory}: removed {removed} entries")
    elif action == "prune":
        removed = cache.prune()
        print(f"cache {cache.directory}: pruned {removed} corrupt or stale entries")


def _cover(n: int, r: int, branching: float, seed: int) -> None:
    from repro.analysis.trace_view import render_coverage_bars
    from repro.core.cobra import CobraProcess
    from repro.core.runner import run_process
    from repro.graphs.generators import random_regular

    graph = random_regular(n, r, seed=seed)
    process = CobraProcess(graph, 0, branching=branching, seed=seed + 1)
    result = run_process(process, record_trace=True, raise_on_timeout=True)
    print(f"{graph}: COBRA k={branching} covered in {result.completion_time} rounds")
    print(render_coverage_bars(result.trace, n, max_rows=40))


def _duality(graph_name: str, branching: float, t_max: int) -> None:
    from repro.analysis.tables import Table
    from repro.exact.duality import duality_series
    from repro.graphs.generators import complete, cycle, petersen

    graph = {"petersen": petersen, "k7": lambda: complete(7), "c9": lambda: cycle(9)}[
        graph_name
    ]()
    start, source = [0], graph.n_vertices - 1
    cobra_side, bips_side = duality_series(graph, start, source, t_max, branching=branching)
    table = Table(
        ["t", "COBRA P(Hit>t)", "BIPS P(disjoint)", "|diff|"], float_format="%.12f"
    )
    for t in range(t_max + 1):
        table.add_row([t, cobra_side[t], bips_side[t], abs(cobra_side[t] - bips_side[t])])
    print(f"{graph}: C = {start}, v = {source}, k = {branching}")
    print(table.render())
    print(f"max |difference| = {max(abs(cobra_side - bips_side)):.3e}")


def _parse_graph_param(token: str):
    if "," in token:
        return tuple(int(part) for part in token.split(",") if part)
    try:
        return int(token)
    except ValueError:
        return float(token)


def _graph_info(family: str, params: list[str], seed: int) -> None:
    from repro import graphs
    from repro.errors import ReproError
    from repro.graphs.properties import degree_histogram, diameter, is_bipartite, is_connected
    from repro.graphs.spectral import lambda_second, spectral_gap

    generator = getattr(graphs, family, None)
    if generator is None or not callable(generator):
        raise ReproError(
            f"unknown graph family {family!r}; see repro.graphs for available generators"
        )
    arguments = [_parse_graph_param(token) for token in params]
    try:
        if family in ("random_regular", "erdos_renyi"):
            graph = generator(*arguments, seed=seed)
        else:
            graph = generator(*arguments)
    except TypeError as error:
        raise ReproError(f"bad arguments for {family}: {error}") from None

    print(graph)
    print(f"  connected : {is_connected(graph)}")
    print(f"  bipartite : {is_bipartite(graph)}")
    print(f"  degrees   : {degree_histogram(graph)}")
    if graph.n_vertices <= 4096 and is_connected(graph):
        lam = lambda_second(graph)
        print(f"  lambda    : {lam:.6f}   spectral gap: {spectral_gap(graph):.6f}")
    if graph.n_vertices <= 512 and is_connected(graph):
        print(f"  diameter  : {diameter(graph)}")


def _add_jobs_option(subparser: argparse.ArgumentParser) -> None:
    # SUPPRESS keeps a subcommand-level `--jobs` from clobbering the
    # global flag's value when it is not given after the subcommand.
    subparser.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="worker processes (default 1; 0 = one per CPU)",
    )


def _add_cache_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="result-cache directory: reuse cached runs, store fresh ones",
    )
    subparser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even when --cache-dir is given",
    )


def _add_run_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--mode",
        choices=("quick", "full"),
        default="quick",
        help="quick = CI-scale parameters, full = EXPERIMENTS.md-scale",
    )
    subparser.add_argument("--seed", type=int, default=0, help="master seed")
    subparser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory to write JSON results into",
    )
    _add_jobs_option(subparser)
    _add_cache_options(subparser)


def _effective_cache_dir(args: argparse.Namespace) -> Path | None:
    """The cache directory a subcommand should use, honouring --no-cache."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _run_one(
    experiment_id: str,
    mode: str | None,
    seed: int,
    out: Path | None,
    cache_dir: Path | None,
    workload=None,
    file_tag: str | None = None,
) -> None:
    from repro.experiments import run_experiment_cached

    started = time.perf_counter()
    result, cached = run_experiment_cached(
        experiment_id, mode=mode, seed=seed, workload=workload, cache_dir=cache_dir
    )
    elapsed = time.perf_counter() - started
    print(result.render())
    source = " (cached)" if cached else ""
    print(f"\n[{result.spec.experiment_id}] finished in {elapsed:.1f}s{source}")
    if out is not None:
        tag = file_tag if file_tag is not None else result.mode
        path = out / f"{result.spec.experiment_id.lower()}_{tag}.json"
        result.save(path)
        print(f"[{result.spec.experiment_id}] saved to {path}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.backends import set_default_backend
    from repro.parallel import resolve_jobs, set_default_jobs

    parser = build_parser()
    args = parser.parse_args(argv)
    previous_jobs = None
    previous_backend = None
    try:
        jobs = resolve_jobs(args.jobs)
        # Process-wide defaults so every ensemble an experiment measures
        # inherits the flags; restored for embedded callers (tests).
        previous_jobs = set_default_jobs(jobs)
        if args.backend is not None:
            # Validated (and the backend constructed) eagerly: a typo or
            # missing GPU library fails here, not mid-experiment.
            previous_backend = set_default_backend(args.backend)
        if args.command == "list":
            for experiment_id in experiment_ids():
                spec = get_spec(experiment_id)
                print(f"{spec.experiment_id:>4}  {spec.title}  [{spec.paper_reference}]")
        elif args.command == "info":
            print(get_spec(args.experiment).header())
        elif args.command == "run":
            workload = None
            file_tag = None
            overrides = _parse_overrides(args.overrides)
            if args.engine is not None:
                # --engine is sugar for --set engine=NAME; an explicit
                # --set engine=... wins so the two spellings never fight.
                overrides.setdefault("engine", args.engine)
            if overrides:
                from repro.experiments import get_experiment
                from repro.scenarios.base import overrides_digest

                workload = get_experiment(args.experiment).preset(args.mode).with_overrides(
                    overrides
                )
                # Distinct override sets must not clobber each other's
                # output files; mirror the campaign layer's digest tags.
                file_tag = f"{args.mode}-{overrides_digest(overrides)}"
            _run_one(
                args.experiment,
                None if workload is not None else args.mode,
                args.seed,
                args.out,
                _effective_cache_dir(args),
                workload=workload,
                file_tag=file_tag,
            )
        elif args.command == "all":
            for experiment_id in _filter_experiment_ids(args.only, args.skip):
                _run_one(experiment_id, args.mode, args.seed, args.out, _effective_cache_dir(args))
                print()
        elif args.command == "scenario":
            _scenario_command(args)
        elif args.command == "graph-info":
            _graph_info(args.family, args.params, args.seed)
        elif args.command == "cover":
            _cover(args.n, args.r, args.branching, args.seed)
        elif args.command == "duality":
            _duality(args.graph, args.branching, args.t_max)
        elif args.command == "campaign":
            return _campaign(
                args.file,
                args.out,
                jobs,
                _effective_cache_dir(args),
                args.stream,
                retries=args.retries,
                entry_deadline=args.entry_deadline,
                resume=args.resume,
                shard=args.shard,
                fail_fast=args.fail_fast,
            )
        elif args.command == "lint":
            return _lint(args)
        elif args.command == "cache":
            _cache_command(args.action, args.cache_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if previous_jobs is not None:
            set_default_jobs(previous_jobs)
        if previous_backend is not None:
            # The saved spec may be an unvalidated REPRO_BACKEND value;
            # restoring must not re-validate it (a broken environment
            # default would crash an otherwise successful command).
            set_default_backend(previous_backend, validate=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
