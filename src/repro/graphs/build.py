"""Converters between :class:`~repro.graphs.Graph` and other formats."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.base import Graph


def from_edges(n_vertices: int, edges: Iterable[Sequence[int]], *, name: str = "graph") -> Graph:
    """Build a graph on ``n_vertices`` vertices from an undirected edge list.

    Each edge is a pair ``(u, v)``; orientation and order are irrelevant.
    Self-loops and duplicate edges (in either orientation) are rejected.

    Parameters
    ----------
    n_vertices:
        Number of vertices; the edge list may leave some isolated.
    edges:
        Iterable of 2-sequences of vertex indices in ``[0, n_vertices)``.
    name:
        Provenance label stored on the resulting graph.
    """
    if n_vertices < 1:
        raise GraphConstructionError(f"n_vertices must be >= 1, got {n_vertices}")
    edge_array = np.asarray(list(edges), dtype=np.int64)
    if edge_array.size == 0:
        edge_array = edge_array.reshape(0, 2)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise GraphConstructionError("edges must be pairs (u, v)")
    if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n_vertices):
        raise GraphConstructionError(
            f"edge endpoint out of range [0, {n_vertices}): "
            f"min={edge_array.min()}, max={edge_array.max()}"
        )
    if np.any(edge_array[:, 0] == edge_array[:, 1]):
        loop_row = int(np.argmax(edge_array[:, 0] == edge_array[:, 1]))
        raise GraphConstructionError(f"self-loop at vertex {edge_array[loop_row, 0]}")
    canonical = np.sort(edge_array, axis=1)
    keys = canonical[:, 0] * n_vertices + canonical[:, 1]
    if np.unique(keys).size != keys.size:
        raise GraphConstructionError("duplicate edge in edge list")

    directed_sources = np.concatenate([edge_array[:, 0], edge_array[:, 1]])
    directed_targets = np.concatenate([edge_array[:, 1], edge_array[:, 0]])
    order = np.argsort(directed_sources, kind="stable")
    sorted_sources = directed_sources[order]
    sorted_targets = directed_targets[order]
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(sorted_sources, minlength=n_vertices), out=indptr[1:])
    return Graph(indptr, sorted_targets, name=name)


def from_adjacency_matrix(matrix: np.ndarray, *, name: str = "graph") -> Graph:
    """Build a graph from a dense symmetric 0/1 adjacency matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphConstructionError(f"adjacency matrix must be square, got shape {matrix.shape}")
    if not np.array_equal(matrix, matrix.T):
        raise GraphConstructionError("adjacency matrix must be symmetric")
    if not np.all(np.isin(matrix, (0, 1))):
        raise GraphConstructionError("adjacency matrix entries must be 0 or 1")
    if np.any(np.diag(matrix) != 0):
        raise GraphConstructionError("adjacency matrix must have a zero diagonal (no self-loops)")
    rows, cols = np.nonzero(np.triu(matrix, k=1))
    return from_edges(matrix.shape[0], np.column_stack([rows, cols]), name=name)


def from_networkx(nx_graph, *, name: str | None = None) -> Graph:
    """Convert a :class:`networkx.Graph` (relabelling nodes to ``0..n-1``).

    Node labels are sorted (by string representation when mixed types)
    to give a deterministic relabelling.  Multigraphs and directed
    graphs are rejected.
    """
    import networkx as nx

    if nx_graph.is_directed() or nx_graph.is_multigraph():
        raise GraphConstructionError("only simple undirected networkx graphs are supported")
    nodes = list(nx_graph.nodes())
    try:
        nodes.sort()
    except TypeError:
        nodes.sort(key=str)
    index_of = {node: i for i, node in enumerate(nodes)}
    edges = [(index_of[u], index_of[v]) for u, v in nx_graph.edges() if u != v]
    label = name if name is not None else f"networkx({nx_graph.__class__.__name__})"
    return from_edges(len(nodes), edges, name=label)


def to_networkx(graph: Graph):
    """Convert to a :class:`networkx.Graph` with integer nodes."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.n_vertices))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
