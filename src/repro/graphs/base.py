"""The immutable CSR :class:`Graph` type used throughout the library.

Design notes
------------
The COBRA/BIPS simulators spend essentially all their time drawing
uniform random neighbours for large batches of vertices.  A compressed
sparse row (CSR) layout supports this with two NumPy gathers and no
Python-level loops:

* ``indptr`` — ``int64`` array of length ``n + 1``; the neighbours of
  vertex ``u`` occupy ``indices[indptr[u]:indptr[u + 1]]``.
* ``indices`` — array of length ``2m`` (each undirected edge appears
  in both endpoint rows), sorted within each row; stored as ``int64``
  by default, or ``int32`` when a caller opts in via ``index_dtype``
  and every vertex id fits (sampling outputs stay ``int64`` either
  way).

Graphs are **simple** (no self-loops, no parallel edges) and
**undirected**; the constructor validates both, once, so every other
routine can assume a well-formed structure.  Instances are immutable:
the arrays are marked read-only and all derived attributes are cached.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import GraphConstructionError, GraphPropertyError

#: Accepted values for the ``index_dtype`` construction option.
INDEX_DTYPES = ("int64", "int32", "auto")


def resolve_index_dtype(index_dtype: str, n_vertices: int) -> np.dtype:
    """Map an ``index_dtype`` option to the storage dtype for ``indices``.

    ``"int64"`` (the default) keeps the historical layout.  ``"int32"``
    opts into half-width column indices — legal whenever every vertex id
    fits, i.e. ``n <= 2**31`` — which halves the resident CSR (and any
    :class:`~repro.parallel.SharedGraph` segment) at million-vertex
    scale.  ``"auto"`` picks ``int32`` when it fits and ``int64``
    otherwise.  Only the *storage* narrows: ``indptr`` stays ``int64``
    and every sampling routine still returns ``int64`` arrays, so no
    public dtype contract changes.
    """
    if index_dtype not in INDEX_DTYPES:
        raise GraphConstructionError(
            f"index_dtype must be one of {INDEX_DTYPES}, got {index_dtype!r}"
        )
    fits = n_vertices - 1 <= np.iinfo(np.int32).max
    if index_dtype == "int32":
        if not fits:
            raise GraphConstructionError(
                f"index_dtype='int32' cannot address {n_vertices} vertices"
            )
        return np.dtype(np.int32)
    if index_dtype == "auto" and fits:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def uniform_draws(
    rng: np.random.Generator, bound: int, count: int, width: int
) -> np.ndarray:
    """``(count, width)`` independent uniform int64 draws from ``[0, bound)``.

    The one shared implementation behind every neighbour-sampling fast
    path (sequential and batched), so all engines consume identical
    streams for identical requests.  For power-of-two bounds — the
    regular expander degrees 4, 8, 16, ... — draws are *bit-sliced* out
    of full 64-bit random words (one word yields ``64 // log2(bound)``
    exact draws), several times cheaper than per-draw bounded rejection
    sampling; other bounds use the generator's bounded-integer path.
    """
    if bound & (bound - 1) == 0:
        bits = bound.bit_length() - 1
        if bits == 0:
            return np.zeros((count, width), dtype=np.int64)
        per_word = 64 // bits
        total = count * width
        words = rng.integers(0, 2**64, size=-(-total // per_word), dtype=np.uint64)
        shifts = np.arange(per_word, dtype=np.uint64) * np.uint64(bits)
        draws = (words[:, None] >> shifts) & np.uint64(bound - 1)
        return draws.astype(np.int64).ravel()[:total].reshape(count, width)
    return rng.integers(0, bound, size=(count, width))


class Graph:
    """An immutable simple undirected graph in CSR form.

    Vertices are the integers ``0 .. n_vertices - 1``.  Construct
    instances through the classmethods (:meth:`from_adjacency_lists`) or
    the helpers in :mod:`repro.graphs.build` and
    :mod:`repro.graphs.generators` rather than from raw arrays.

    Parameters
    ----------
    indptr:
        CSR row-pointer array, length ``n + 1``.
    indices:
        CSR column-index array, length ``2m``.
    name:
        Human-readable provenance label, e.g. ``"random_regular(n=100, r=4)"``.
    validate:
        When true (the default), check simplicity, symmetry, and index
        bounds; ``False`` is reserved for internal callers that have
        already validated.
    index_dtype:
        Storage dtype policy for ``indices`` — ``"int64"`` (default),
        ``"int32"``, or ``"auto"``; see :func:`resolve_index_dtype`.
        Sampling outputs are ``int64`` regardless.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_name",
        "_degrees",
        "_regular_degree",
        "_neighbor_matrix",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        validate: bool = True,
        index_dtype: str = "int64",
    ) -> None:
        # Copy unconditionally: validation sorts rows in place and the
        # arrays are frozen afterwards, neither of which may leak back
        # into caller-owned buffers.
        indptr = np.array(indptr, dtype=np.int64, copy=True)
        storage = resolve_index_dtype(index_dtype, max(indptr.size - 1, 0))
        indices = np.array(indices, dtype=storage, copy=True)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphConstructionError("indptr and indices must be 1-D arrays")
        if indptr.size < 2:
            raise GraphConstructionError("graph must have at least one vertex")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphConstructionError(
                f"indptr must start at 0 and end at len(indices)={indices.size}; "
                f"got [{indptr[0]}, {indptr[-1]}]"
            )
        self._indptr = indptr
        self._indices = indices
        self._name = name
        self._degrees = np.diff(indptr)
        degrees = self._degrees
        self._regular_degree: Optional[int] = (
            int(degrees[0]) if degrees.size and np.all(degrees == degrees[0]) else None
        )
        self._neighbor_matrix: Optional[np.ndarray] = None
        if validate:
            self._validate()
        self._indptr.flags.writeable = False
        self._indices.flags.writeable = False
        self._degrees.flags.writeable = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_adjacency_lists(
        cls, neighbors: Sequence[Sequence[int]], *, name: str = "graph"
    ) -> "Graph":
        """Build a graph from per-vertex neighbour lists.

        ``neighbors[u]`` must list the neighbours of ``u``; the lists
        must collectively be symmetric (``v in neighbors[u]`` iff
        ``u in neighbors[v]``).
        """
        counts = np.fromiter((len(row) for row in neighbors), dtype=np.int64, count=len(neighbors))
        indptr = np.zeros(len(neighbors) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat: list[int] = []
        for row in neighbors:
            flat.extend(sorted(row))
        indices = np.asarray(flat, dtype=np.int64)
        return cls(indptr, indices, name=name)

    @classmethod
    def adopt_validated_csr(
        cls, indptr: np.ndarray, indices: np.ndarray, *, name: str = "graph"
    ) -> "Graph":
        """Wrap pre-validated CSR arrays *without copying them*.

        The zero-copy constructor used by
        :class:`repro.parallel.SharedGraph` to rebuild a graph around
        shared-memory buffers in worker processes.  The caller
        certifies the arrays describe a simple undirected graph with
        sorted rows (i.e. they came out of a validated :class:`Graph`);
        nothing is checked beyond the basic indptr frame, and the views
        are frozen in place.  ``indptr`` must be ``int64``; ``indices``
        may be ``int64`` or ``int32`` (e.g. a narrow graph or a
        memory-mapped CSR) and keeps its dtype without copying.  The
        arrays must be C-contiguous; buffers they borrow (e.g. a
        ``multiprocessing.shared_memory`` segment or an ``np.memmap``)
        must outlive the graph.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        if indices.dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            indices = indices.astype(np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphConstructionError("indptr and indices must be 1-D arrays")
        if indptr.size < 2 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphConstructionError(
                f"indptr must start at 0 and end at len(indices)={indices.size}"
            )
        graph = cls.__new__(cls)
        graph._indptr = indptr
        graph._indices = indices
        graph._name = name
        graph._degrees = np.diff(indptr)
        degrees = graph._degrees
        graph._regular_degree = (
            int(degrees[0]) if degrees.size and np.all(degrees == degrees[0]) else None
        )
        graph._neighbor_matrix = None
        graph._indptr.flags.writeable = False
        graph._indices.flags.writeable = False
        graph._degrees.flags.writeable = False
        return graph

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        n = self.n_vertices
        indices = self._indices
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphConstructionError(
                f"neighbour index out of range [0, {n}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        indptr = self._indptr
        if np.any(np.diff(indptr) < 0):
            raise GraphConstructionError("indptr must be non-decreasing")
        # Sort rows in place before freezing so has_edge can binary-search.
        # One global stable sort on (row, value) keys replaces the old
        # per-row Python loop, which dominated construction at n >= 1e5:
        # rows are already contiguous and in order, so sorting the
        # composite key sorts within each row without crossing rows.
        sources = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
        forward = sources * n + indices
        forward.sort(kind="stable")
        indices[:] = forward - sources * n
        self_loops = np.flatnonzero(indices == sources)
        if self_loops.size:
            u = int(sources[self_loops[0]])
            raise GraphConstructionError(f"vertex {u} has a self-loop")
        duplicates = np.flatnonzero(forward[1:] == forward[:-1])
        if duplicates.size:
            u = int(sources[duplicates[0]])
            raise GraphConstructionError(f"vertex {u} has a duplicate (parallel) edge")
        # Symmetry: the multiset of directed edges must equal its reverse.
        backward = indices.astype(np.int64) * n + sources
        backward.sort()
        if not np.array_equal(forward, backward):
            raise GraphConstructionError("adjacency is not symmetric (graph must be undirected)")

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Provenance label assigned at construction."""
        return self._name

    @property
    def n_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._indptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view), sorted within rows."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Array of vertex degrees (read-only view)."""
        return self._degrees

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return int(self._degrees[u])

    @property
    def min_degree(self) -> int:
        """Smallest vertex degree."""
        return int(self._degrees.min())

    @property
    def max_degree(self) -> int:
        """Largest vertex degree."""
        return int(self._degrees.max())

    @property
    def is_regular(self) -> bool:
        """Whether every vertex has the same degree."""
        return self._regular_degree is not None

    @property
    def regular_degree(self) -> int:
        """The common degree ``r`` of a regular graph.

        Raises
        ------
        GraphPropertyError
            If the graph is not regular.
        """
        if self._regular_degree is None:
            raise GraphPropertyError(
                f"graph {self._name!r} is not regular "
                f"(degrees range {self.min_degree}..{self.max_degree})"
            )
        return self._regular_degree

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbours of ``u`` as a read-only array view."""
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        row = self.neighbors(u)
        position = int(np.searchsorted(row, v))
        return position < row.size and int(row[position]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    @property
    def neighbor_matrix(self) -> np.ndarray:
        """For a regular graph, the ``(n, r)`` matrix of neighbour lists.

        This reshaped view of ``indices`` lets samplers draw uniform
        neighbours for every vertex with a single fancy index.

        Raises
        ------
        GraphPropertyError
            If the graph is not regular.
        """
        if self._neighbor_matrix is None:
            r = self.regular_degree
            matrix = self._indices.reshape(self.n_vertices, r)
            matrix.flags.writeable = False
            self._neighbor_matrix = matrix
        return self._neighbor_matrix

    # ------------------------------------------------------------------
    # Vectorised neighbour sampling (the simulators' hot path)
    # ------------------------------------------------------------------

    def sample_neighbors(
        self,
        vertices: np.ndarray,
        samples_per_vertex: int,
        rng: np.random.Generator,
        backend=None,
    ) -> np.ndarray:
        """Draw uniform random neighbours, with replacement, per vertex.

        Parameters
        ----------
        vertices:
            Integer array of shape ``(m,)`` of vertices to sample for.
            Vertices may repeat; each occurrence samples independently.
        samples_per_vertex:
            Number ``k`` of independent draws per listed vertex.
        rng:
            NumPy generator supplying the randomness.  Draws always
            come from this host generator, whatever the backend — that
            is what keeps results bit-identical across backends.
        backend:
            Optional :class:`~repro.backends.base.Backend`.  When given
            (and not the NumPy backend) ``vertices`` is a backend array
            and the regular-degree fast path runs on the backend: the
            host-drawn positions transfer once and gather against the
            backend-resident copy of ``indices``.  Only regular graphs
            are supported there; the batch entry points enforce this
            before any work starts.

        Returns
        -------
        numpy.ndarray
            Shape ``(m, k)``; entry ``[i, j]`` is the ``j``-th uniform
            neighbour drawn for ``vertices[i]``.  A backend array when
            a non-NumPy ``backend`` is given.
        """
        if samples_per_vertex < 1:
            raise ValueError(f"samples_per_vertex must be >= 1, got {samples_per_vertex}")
        if backend is not None and not backend.is_numpy:
            return self._sample_neighbors_on_backend(
                vertices, samples_per_vertex, rng, backend
            )
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty((0, samples_per_vertex), dtype=np.int64)
        r = self._regular_degree
        if r is not None and r > 0:
            # Degree-regular fast path (every expander workload): row
            # ``u`` starts at ``u * r``, so one integer draw per slot
            # addresses ``indices`` directly — no degree gather, no
            # float multiply.
            positions = uniform_draws(rng, r, vertices.size, samples_per_vertex)
            positions += (vertices * r)[:, None]
            return self._indices[positions].astype(np.int64, copy=False)
        degrees = self._degrees[vertices]
        if np.any(degrees == 0):
            bad = int(vertices[np.argmax(degrees == 0)])
            raise GraphPropertyError(f"cannot sample a neighbour of isolated vertex {bad}")
        offsets = self._indptr[vertices]
        draws = rng.random((vertices.size, samples_per_vertex))
        positions = offsets[:, None] + (draws * degrees[:, None]).astype(np.int64)
        return self._indices[positions].astype(np.int64, copy=False)

    def _sample_neighbors_on_backend(
        self, vertices, samples_per_vertex: int, rng: np.random.Generator, backend
    ):
        """The regular-degree fast path on a non-NumPy backend.

        Mirrors the NumPy fast path op for op — host ``uniform_draws``
        (identical stream consumption), position arithmetic, one flat
        gather — but the positions live on the backend and the gather
        runs against :meth:`Backend.graph_indices`'s device-resident
        copy of ``indices``.
        """
        r = self._regular_degree
        if r is None or r == 0:
            raise GraphPropertyError(
                f"graph {self._name!r} is not regular; non-NumPy backends "
                "support only the regular-degree sampling fast path"
            )
        count = backend.size(vertices)
        positions = backend.uniform_draws(rng, r, count, samples_per_vertex)
        positions += (vertices * r)[:, None]
        return backend.take(backend.graph_indices(self), positions)

    def sample_distinct_neighbors(
        self, vertices: np.ndarray, samples_per_vertex: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw uniform random neighbours *without* replacement, per vertex.

        Each listed vertex receives a uniformly random ``k``-subset of
        its neighbourhood (as ``k`` columns in arbitrary order).  All
        queried vertices must have degree at least ``k``.

        Implementation: random keys per (vertex, neighbour-slot) with
        out-of-degree slots masked to +inf, then ``argpartition`` keeps
        the ``k`` smallest keys — a uniformly random ``k``-subset — in
        O(m · max_degree) time.

        Returns
        -------
        numpy.ndarray
            Shape ``(m, k)`` of distinct neighbours per row.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        k = samples_per_vertex
        if k < 1:
            raise ValueError(f"samples_per_vertex must be >= 1, got {k}")
        if vertices.size == 0:
            return np.empty((0, k), dtype=np.int64)
        degrees = self._degrees[vertices]
        if np.any(degrees < k):
            bad = int(vertices[np.argmax(degrees < k)])
            raise GraphPropertyError(
                f"vertex {bad} has degree {self.degree(bad)} < k={k}; "
                "cannot sample that many distinct neighbours"
            )
        if k == 1:
            return self.sample_neighbors(vertices, 1, rng)
        width = int(degrees.max())
        keys = rng.random((vertices.size, width))
        slot_index = np.arange(width)[None, :]
        keys[slot_index >= degrees[:, None]] = np.inf
        chosen_slots = np.argpartition(keys, k - 1, axis=1)[:, :k]
        positions = self._indptr[vertices][:, None] + chosen_slots
        return self._indices[positions].astype(np.int64, copy=False)

    def neighborhoods(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbour rows of ``vertices`` (vectorised).

        Returns ``(counts, flat)`` where ``counts[i]`` is the degree of
        ``vertices[i]`` and ``flat`` is the concatenation of the sorted
        neighbour rows in query order (``counts.sum()`` entries).  The
        sparse-frontier BIPS kernel uses this to expand the armed set
        ``frontier ∪ N(frontier)`` in time proportional to the frontier
        volume rather than ``n``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = self._degrees[vertices].astype(np.int64, copy=False)
        if vertices.size == 0:
            return counts, np.empty(0, dtype=np.int64)
        starts = self._indptr[vertices]
        row_ends = np.cumsum(counts)
        within = np.arange(row_ends[-1], dtype=np.int64) - np.repeat(
            row_ends - counts, counts
        )
        flat = self._indices[np.repeat(starts, counts) + within]
        return counts, flat.astype(np.int64, copy=False)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        shape = f"n={self.n_vertices}, m={self.n_edges}"
        if self.is_regular:
            shape += f", r={self._regular_degree}"
        return f"Graph({self._name!r}, {shape})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if not hasattr(other, "_indptr"):  # CSR-less subclass (implicit graphs)
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self._indptr.tobytes(), self._indices.tobytes()))
