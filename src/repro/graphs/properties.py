"""Structural graph properties: connectivity, bipartiteness, distances."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphPropertyError
from repro.graphs.base import Graph


def _bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """BFS distance from ``source`` to every vertex (-1 if unreachable)."""
    n = graph.n_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        # Gather all neighbours of the frontier in one vectorised pass;
        # neighborhoods() works for CSR and implicit graphs alike.
        _, gather = graph.neighborhoods(frontier)
        if gather.size == 0:
            break
        fresh = np.unique(gather[levels[gather] < 0])
        levels[fresh] = depth
        frontier = fresh
    return levels


def is_connected(graph: Graph) -> bool:
    """Whether the graph has a single connected component."""
    return bool(np.all(_bfs_levels(graph, 0) >= 0))


def connected_components(graph: Graph) -> list[np.ndarray]:
    """Connected components as sorted vertex arrays, largest-root first."""
    n = graph.n_vertices
    assigned = np.full(n, -1, dtype=np.int64)
    components: list[np.ndarray] = []
    for start in range(n):
        if assigned[start] >= 0:
            continue
        levels = _bfs_levels(graph, start)
        members = np.flatnonzero(levels >= 0)
        assigned[members] = len(components)
        components.append(members)
    return components


def is_bipartite(graph: Graph) -> bool:
    """Whether the graph is 2-colourable (checked by BFS parity)."""
    n = graph.n_vertices
    color = np.full(n, -1, dtype=np.int8)
    for start in range(n):
        if color[start] >= 0:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                v = int(v)
                if color[v] < 0:
                    color[v] = 1 - color[u]
                    stack.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def eccentricity(graph: Graph, vertex: int) -> int:
    """Largest BFS distance from ``vertex``; requires connectivity."""
    levels = _bfs_levels(graph, vertex)
    if np.any(levels < 0):
        raise GraphPropertyError("eccentricity is undefined on a disconnected graph")
    return int(levels.max())


def diameter(graph: Graph, *, sample_size: int | None = None, seed: int | None = None) -> int:
    """Graph diameter (exact by default; sampled lower bound if requested).

    Parameters
    ----------
    graph:
        A connected graph.
    sample_size:
        When given, compute eccentricities only from this many random
        vertices, returning a lower bound on the diameter.  Use for
        large graphs where all-pairs BFS is too slow.
    seed:
        Seed for the sampled variant.
    """
    n = graph.n_vertices
    if sample_size is None:
        sources = range(n)
    else:
        rng = np.random.default_rng(seed)
        size = min(sample_size, n)
        sources = rng.choice(n, size=size, replace=False)
    best = 0
    for source in sources:
        best = max(best, eccentricity(graph, int(source)))
    return best


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map from degree value to the number of vertices with that degree."""
    values, counts = np.unique(graph.degrees, return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}
