"""Graph persistence: NumPy archives, memory-mapped CSR, edge-list text.

Three formats:

* ``.npz`` (:func:`save_graph` / :func:`load_graph`) — lossless CSR
  arrays plus the provenance name; the fast path for experiment
  artefacts.
* memory-mapped CSR directories (:func:`save_graph_memmap` /
  :func:`load_graph_memmap`) — raw ``.npy`` arrays opened with
  ``mmap_mode="r"`` so million-vertex graphs load in O(1) and worker
  processes share one copy of the adjacency through the OS page cache.
* edge-list text (:func:`to_edge_list_text` /
  :func:`from_edge_list_text`) — one ``u v`` pair per line with a
  ``# name:`` header; interoperable with standard graph tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.base import Graph, resolve_index_dtype
from repro.graphs.build import from_edges

_FORMAT_VERSION = 1
_MEMMAP_HEADER = "header.json"
_MEMMAP_INDPTR = "indptr.npy"
_MEMMAP_INDICES = "indices.npy"


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write a graph as a compressed ``.npz`` archive; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.array(graph.name),
        format_version=np.array(_FORMAT_VERSION),
    )
    # np.savez appends .npz only when missing; normalise the return.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Read a graph written by :func:`save_graph` (revalidates)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        try:
            indptr = archive["indptr"]
            indices = archive["indices"]
            name = str(archive["name"])
            version = int(archive["format_version"])
        except KeyError as missing:
            raise GraphConstructionError(
                f"{path} is not a repro graph archive (missing {missing})"
            ) from None
    if version != _FORMAT_VERSION:
        raise GraphConstructionError(
            f"unsupported graph archive version {version} (expected {_FORMAT_VERSION})"
        )
    return Graph(indptr, indices, name=name)


class MemmapGraph(Graph):
    """A validated graph whose CSR arrays are memory-mapped from disk.

    Behaves exactly like :class:`~repro.graphs.base.Graph` — same
    sampling streams, same dtype contract at the API surface — but the
    ``indptr``/``indices`` buffers are read-only ``np.memmap`` views, so
    construction is O(1) regardless of graph size and resident memory
    is only the pages actually touched.  Pickling ships the directory
    path instead of the arrays (``ships_compactly``): spawn workers
    re-map the same files and share one physical copy of the adjacency
    through the OS page cache.  The backing directory must therefore
    outlive the graph and be reachable from worker processes.
    """

    __slots__ = ("_directory",)

    #: Pickles as a path; the parallel layer skips shared-memory
    #: shipping because workers already share pages via the mapping.
    ships_compactly = True

    def __reduce__(self):
        return (load_graph_memmap, (str(self._directory),))


def save_graph_memmap(
    graph: Graph, directory: str | Path, *, index_dtype: str = "auto"
) -> Path:
    """Write ``graph`` as a memory-mappable CSR directory; returns it.

    The directory gets ``indptr.npy``, ``indices.npy``, and a
    ``header.json`` carrying the name and format version.  With the
    default ``index_dtype="auto"`` the neighbour indices are stored as
    ``int32`` whenever every vertex id fits — half the bytes on disk
    and half the pages faulted in at run time; pass ``"int64"`` to
    force the wide layout.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    storage = resolve_index_dtype(index_dtype, graph.n_vertices)
    np.save(directory / _MEMMAP_INDPTR, np.asarray(graph.indptr, dtype=np.int64))
    np.save(directory / _MEMMAP_INDICES, np.asarray(graph.indices, dtype=storage))
    header = {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "n_vertices": int(graph.n_vertices),
        "n_edges": int(graph.n_edges),
        "indices_dtype": np.dtype(storage).str,
    }
    (directory / _MEMMAP_HEADER).write_text(json.dumps(header, indent=2) + "\n")
    return directory


def load_graph_memmap(directory: str | Path) -> MemmapGraph:
    """Open a :func:`save_graph_memmap` directory without reading it in.

    The CSR arrays are ``np.load(..., mmap_mode="r")`` views adopted
    zero-copy, so this returns in constant time even for multi-gigabyte
    graphs.  The arrays were validated when the graph was saved and are
    not re-checked here (doing so would fault in every page and defeat
    the mapping).
    """
    directory = Path(directory)
    header_path = directory / _MEMMAP_HEADER
    if not header_path.is_file():
        raise GraphConstructionError(
            f"{directory} is not a memmap graph directory (missing {_MEMMAP_HEADER})"
        )
    try:
        header = json.loads(header_path.read_text())
        name = str(header["name"])
        version = int(header["format_version"])
    except (ValueError, KeyError) as problem:
        raise GraphConstructionError(
            f"{header_path} is not a valid memmap graph header ({problem})"
        ) from None
    if version != _FORMAT_VERSION:
        raise GraphConstructionError(
            f"unsupported graph archive version {version} (expected {_FORMAT_VERSION})"
        )
    indptr = np.load(directory / _MEMMAP_INDPTR, mmap_mode="r")
    indices = np.load(directory / _MEMMAP_INDICES, mmap_mode="r")
    graph = MemmapGraph.adopt_validated_csr(indptr, indices, name=name)
    graph._directory = directory
    return graph


def to_edge_list_text(graph: Graph) -> str:
    """Render as text: a header comment, then one ``u v`` edge per line."""
    lines = [
        f"# name: {graph.name}",
        f"# vertices: {graph.n_vertices}",
    ]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    return "\n".join(lines) + "\n"


def from_edge_list_text(text: str, *, name: str | None = None) -> Graph:
    """Parse :func:`to_edge_list_text` output (or any ``u v`` line format).

    The vertex count is taken from a ``# vertices:`` header when
    present, else inferred as ``max index + 1``.
    """
    n_vertices: int | None = None
    parsed_name = name
    edges: list[tuple[int, int]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("vertices:"):
                n_vertices = int(body.split(":", 1)[1])
            elif body.startswith("name:") and parsed_name is None:
                parsed_name = body.split(":", 1)[1].strip()
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphConstructionError(
                f"line {line_number}: expected 'u v', got {raw!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphConstructionError(
                f"line {line_number}: non-integer vertex in {raw!r}"
            ) from None
        edges.append((u, v))
    if n_vertices is None:
        if not edges:
            raise GraphConstructionError("edge-list text has no edges and no vertex count")
        n_vertices = max(max(u, v) for u, v in edges) + 1
    return from_edges(n_vertices, edges, name=parsed_name or "edge_list")


def save_edge_list(graph: Graph, path: str | Path) -> Path:
    """Write the edge-list text format to a file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_edge_list_text(graph))
    return path


def load_edge_list(path: str | Path, *, name: str | None = None) -> Graph:
    """Read a graph from an edge-list text file."""
    return from_edge_list_text(Path(path).read_text(), name=name)
