"""Graph persistence: NumPy archives and plain edge-list text.

Two formats:

* ``.npz`` (:func:`save_graph` / :func:`load_graph`) — lossless CSR
  arrays plus the provenance name; the fast path for experiment
  artefacts.
* edge-list text (:func:`to_edge_list_text` /
  :func:`from_edge_list_text`) — one ``u v`` pair per line with a
  ``# name:`` header; interoperable with standard graph tooling.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.base import Graph
from repro.graphs.build import from_edges

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write a graph as a compressed ``.npz`` archive; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.array(graph.name),
        format_version=np.array(_FORMAT_VERSION),
    )
    # np.savez appends .npz only when missing; normalise the return.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Read a graph written by :func:`save_graph` (revalidates)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        try:
            indptr = archive["indptr"]
            indices = archive["indices"]
            name = str(archive["name"])
            version = int(archive["format_version"])
        except KeyError as missing:
            raise GraphConstructionError(
                f"{path} is not a repro graph archive (missing {missing})"
            ) from None
    if version != _FORMAT_VERSION:
        raise GraphConstructionError(
            f"unsupported graph archive version {version} (expected {_FORMAT_VERSION})"
        )
    return Graph(indptr, indices, name=name)


def to_edge_list_text(graph: Graph) -> str:
    """Render as text: a header comment, then one ``u v`` edge per line."""
    lines = [
        f"# name: {graph.name}",
        f"# vertices: {graph.n_vertices}",
    ]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    return "\n".join(lines) + "\n"


def from_edge_list_text(text: str, *, name: str | None = None) -> Graph:
    """Parse :func:`to_edge_list_text` output (or any ``u v`` line format).

    The vertex count is taken from a ``# vertices:`` header when
    present, else inferred as ``max index + 1``.
    """
    n_vertices: int | None = None
    parsed_name = name
    edges: list[tuple[int, int]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("vertices:"):
                n_vertices = int(body.split(":", 1)[1])
            elif body.startswith("name:") and parsed_name is None:
                parsed_name = body.split(":", 1)[1].strip()
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphConstructionError(
                f"line {line_number}: expected 'u v', got {raw!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphConstructionError(
                f"line {line_number}: non-integer vertex in {raw!r}"
            ) from None
        edges.append((u, v))
    if n_vertices is None:
        if not edges:
            raise GraphConstructionError("edge-list text has no edges and no vertex count")
        n_vertices = max(max(u, v) for u, v in edges) + 1
    return from_edges(n_vertices, edges, name=parsed_name or "edge_list")


def save_edge_list(graph: Graph, path: str | Path) -> Path:
    """Write the edge-list text format to a file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_edge_list_text(graph))
    return path


def load_edge_list(path: str | Path, *, name: str | None = None) -> Graph:
    """Read a graph from an edge-list text file."""
    return from_edge_list_text(Path(path).read_text(), name=name)
