"""Implicit (materialisation-free) backends for structured graph families.

The structured families the scenarios sweep — hypercube, torus,
circulant — have neighbourhoods that are *computable*: the sorted
neighbour row of any vertex follows from arithmetic on its id, so there
is no reason to hold a ``2m``-entry CSR array in memory to sample from
them.  The classes here subclass :class:`~repro.graphs.base.Graph` but
store **no adjacency arrays at all**; memory is O(1) in ``n``, which is
what lets the scenario layer run these families at n = 10^6–10^7.

The one contract that matters: for the same seed, an implicit graph and
its materialised CSR twin produce **bit-identical sampling streams**.
:meth:`ImplicitGraph.sample_neighbors` performs the exact
``uniform_draws`` call of the CSR regular-degree fast path and gathers
from analytically computed sorted rows — the same values the CSR gather
would have read.  The property tests in ``tests/graphs/test_implicit.py``
pin this edge-for-edge and draw-for-draw.

Implicit graphs work with every engine that samples through the public
``Graph`` interface (process, batch, sparse, event).  They pickle to a
few bytes (the constructor arguments), so spawn pools never need a
:class:`~repro.parallel.SharedGraph` segment for them.  Operations that
inherently need the CSR arrays (``indptr`` / ``indices`` /
``neighbor_matrix`` / non-NumPy backends) raise
:class:`~repro.errors.GraphPropertyError` pointing at
:meth:`ImplicitGraph.materialize`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphConstructionError, GraphPropertyError
from repro.graphs.base import Graph, uniform_draws

#: Vertex-chunk size for whole-graph walks (``edges``, ``materialize``):
#: large enough to amortise per-call overhead, small enough that the
#: per-chunk ``(chunk, r)`` row block stays cache-friendly.
_CHUNK = 1 << 16


class ImplicitGraph(Graph):
    """A regular graph whose neighbour rows are computed, not stored.

    Subclasses implement :meth:`neighbor_rows` (the sorted ``(F, r)``
    neighbour rows of a vertex batch) plus :meth:`analytic_lambda` and
    :meth:`_constructor_args`; everything else — sampling, degrees,
    edge iteration, materialisation, pickling, equality — is derived
    here.  Instances are immutable and O(1)-sized.
    """

    __slots__ = ("_n",)

    #: Signals the parallel layer that pickling this graph costs a few
    #: bytes, so spawn pools ship it directly instead of publishing a
    #: shared-memory CSR segment (which it does not have).
    ships_compactly = True

    def __init__(self, n_vertices: int, degree: int, name: str) -> None:
        if n_vertices < 1:
            raise GraphConstructionError(
                f"graph must have at least one vertex, got {n_vertices}"
            )
        self._n = int(n_vertices)
        self._name = name
        self._regular_degree = int(degree)
        self._neighbor_matrix = None

    # -- the subclass contract -----------------------------------------

    def neighbor_rows(self, vertices: np.ndarray) -> np.ndarray:
        """Sorted neighbour rows of ``vertices`` as an ``(F, r)`` array.

        Row ``i`` must equal what ``indices[indptr[v]:indptr[v+1]]``
        would hold for ``v = vertices[i]`` in the materialised CSR —
        ascending, no duplicates.
        """
        raise NotImplementedError

    def analytic_lambda(self) -> float:
        """Closed-form ``max(|λ_2|, |λ_n|)`` of the transition matrix.

        :func:`repro.graphs.spectral.lambda_second` dispatches here in
        ``auto`` mode, since an eigensolve would require the CSR.
        """
        raise NotImplementedError

    def _constructor_args(self) -> tuple:
        """Arguments that rebuild this graph (pickling and equality)."""
        raise NotImplementedError

    # -- core accessors (CSR-free) -------------------------------------

    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return self._n * self._regular_degree // 2

    def _no_csr(self, what: str) -> GraphPropertyError:
        return GraphPropertyError(
            f"implicit graph {self._name!r} stores no CSR arrays; call "
            f".materialize() for a concrete Graph before using {what}"
        )

    @property
    def indptr(self) -> np.ndarray:
        raise self._no_csr("indptr")

    @property
    def indices(self) -> np.ndarray:
        raise self._no_csr("indices")

    @property
    def neighbor_matrix(self) -> np.ndarray:
        raise self._no_csr("neighbor_matrix")

    @property
    def degrees(self) -> np.ndarray:
        # A zero-memory constant vector: broadcast_to allocates nothing.
        return np.broadcast_to(np.int64(self._regular_degree), (self._n,))

    def degree(self, u: int) -> int:
        return self._regular_degree

    @property
    def min_degree(self) -> int:
        return self._regular_degree

    @property
    def max_degree(self) -> int:
        return self._regular_degree

    def neighbors(self, u: int) -> np.ndarray:
        row = self.neighbor_rows(np.asarray([u], dtype=np.int64))[0]
        row.flags.writeable = False
        return row

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        position = int(np.searchsorted(row, v))
        return position < row.size and int(row[position]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        for base in range(0, self._n, _CHUNK):
            block = np.arange(base, min(base + _CHUNK, self._n), dtype=np.int64)
            rows = self.neighbor_rows(block)
            sources = np.broadcast_to(block[:, None], rows.shape)
            keep = sources < rows
            for u, v in zip(sources[keep], rows[keep]):
                yield (int(u), int(v))

    # -- sampling (bit-identical to the CSR fast path) ------------------

    def sample_neighbors(
        self,
        vertices: np.ndarray,
        samples_per_vertex: int,
        rng: np.random.Generator,
        backend=None,
    ) -> np.ndarray:
        if samples_per_vertex < 1:
            raise ValueError(
                f"samples_per_vertex must be >= 1, got {samples_per_vertex}"
            )
        if backend is not None and not backend.is_numpy:
            raise self._no_csr(f"the non-NumPy backend {backend.spec!r}")
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty((0, samples_per_vertex), dtype=np.int64)
        # The same draw the CSR fast path makes; gathering the drawn
        # positions from the computed rows reads the same values the
        # flat ``indices`` gather would have.
        r = self._regular_degree
        positions = uniform_draws(rng, r, vertices.size, samples_per_vertex)
        rows = self.neighbor_rows(vertices)
        return np.take_along_axis(rows, positions, axis=1)

    def sample_distinct_neighbors(
        self, vertices: np.ndarray, samples_per_vertex: int, rng: np.random.Generator
    ) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        k = samples_per_vertex
        if k < 1:
            raise ValueError(f"samples_per_vertex must be >= 1, got {k}")
        r = self._regular_degree
        if r < k and vertices.size:
            bad = int(vertices[0])
            raise GraphPropertyError(
                f"vertex {bad} has degree {r} < k={k}; "
                "cannot sample that many distinct neighbours"
            )
        if vertices.size == 0:
            return np.empty((0, k), dtype=np.int64)
        if k == 1:
            return self.sample_neighbors(vertices, 1, rng)
        # Identical stream to the CSR path: on a regular graph its key
        # matrix is (m, r) with no masked slots.
        keys = rng.random((vertices.size, r))
        chosen_slots = np.argpartition(keys, k - 1, axis=1)[:, :k]
        rows = self.neighbor_rows(vertices)
        return np.take_along_axis(rows, chosen_slots, axis=1)

    def neighborhoods(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = np.full(vertices.size, self._regular_degree, dtype=np.int64)
        flat = self.neighbor_rows(vertices).reshape(-1)
        return counts, flat

    # -- materialisation ------------------------------------------------

    def materialize(self, *, index_dtype: str = "int64") -> Graph:
        """Build the concrete CSR :class:`Graph` this instance describes.

        The rows are valid by construction, so the result adopts them
        without re-validation; it compares equal (``==``) to the
        corresponding generator output.
        """
        from repro.graphs.base import resolve_index_dtype

        r = self._regular_degree
        storage = resolve_index_dtype(index_dtype, self._n)
        indices = np.empty(self._n * r, dtype=storage)
        for base in range(0, self._n, _CHUNK):
            block = np.arange(base, min(base + _CHUNK, self._n), dtype=np.int64)
            indices[base * r : (base + block.size) * r] = self.neighbor_rows(
                block
            ).reshape(-1)
        indptr = np.arange(self._n + 1, dtype=np.int64) * r
        return Graph.adopt_validated_csr(indptr, indices, name=self._name)

    # -- identity -------------------------------------------------------

    def __reduce__(self):
        return (type(self), self._constructor_args())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self._name!r}, n={self.n_vertices}, "
            f"m={self.n_edges}, r={self._regular_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ImplicitGraph):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._constructor_args() == other._constructor_args()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._constructor_args()))


class ImplicitHypercube(ImplicitGraph):
    """Binary hypercube `Q_d` with computed neighbourhoods."""

    __slots__ = ("_dimension",)

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise GraphConstructionError(
                f"hypercube needs dimension >= 1, got {dimension}"
            )
        self._dimension = int(dimension)
        super().__init__(1 << dimension, dimension, f"hypercube(d={dimension})")

    def neighbor_rows(self, vertices: np.ndarray) -> np.ndarray:
        bits = np.int64(1) << np.arange(self._dimension, dtype=np.int64)
        rows = np.asarray(vertices, dtype=np.int64)[:, None] ^ bits
        rows.sort(axis=1)
        return rows

    def analytic_lambda(self) -> float:
        from repro.graphs.spectral import analytic_lambda

        return analytic_lambda("hypercube", dimension=self._dimension)

    def _constructor_args(self) -> tuple:
        return (self._dimension,)


class ImplicitTorus(ImplicitGraph):
    """Discrete torus `Z_{L1} x ... x Z_{Ld}` with computed neighbourhoods."""

    __slots__ = ("_sides", "_strides")

    def __init__(self, side_lengths: Sequence[int]) -> None:
        sides = tuple(int(side) for side in side_lengths)
        if not sides:
            raise GraphConstructionError("torus needs at least one dimension")
        if any(side < 3 for side in sides):
            raise GraphConstructionError(
                f"torus side lengths must be >= 3, got {sides}"
            )
        self._sides = sides
        strides = np.ones(len(sides), dtype=np.int64)
        for axis in range(len(sides) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * sides[axis + 1]
        strides.flags.writeable = False
        self._strides = strides
        n = int(np.prod(sides))
        super().__init__(n, 2 * len(sides), f"torus(sides={sides})")

    def neighbor_rows(self, vertices: np.ndarray) -> np.ndarray:
        u = np.asarray(vertices, dtype=np.int64)
        rows = np.empty((u.size, 2 * len(self._sides)), dtype=np.int64)
        for axis, side in enumerate(self._sides):
            stride = self._strides[axis]
            coord = (u // stride) % side
            rows[:, 2 * axis] = u + ((coord + 1) % side - coord) * stride
            rows[:, 2 * axis + 1] = u + ((coord - 1) % side - coord) * stride
        rows.sort(axis=1)
        return rows

    def analytic_lambda(self) -> float:
        from repro.graphs.spectral import analytic_lambda

        return analytic_lambda("torus", side_lengths=self._sides)

    def _constructor_args(self) -> tuple:
        return (self._sides,)


class ImplicitCirculant(ImplicitGraph):
    """Circulant graph `C_n(s1, ..., sj)` with computed neighbourhoods."""

    __slots__ = ("_offsets", "_deltas")

    def __init__(self, n: int, offsets: Sequence[int]) -> None:
        if n < 3:
            raise GraphConstructionError(f"circulant needs n >= 3, got {n}")
        cleaned = sorted({int(s) for s in offsets})
        if not cleaned:
            raise GraphConstructionError("circulant needs at least one offset")
        if cleaned[0] < 1 or cleaned[-1] > n // 2:
            raise GraphConstructionError(
                f"offsets must lie in [1, n//2]={n // 2}, got {cleaned}"
            )
        self._offsets = tuple(cleaned)
        deltas = np.asarray(
            sorted({s for offset in cleaned for s in (offset, n - offset)}),
            dtype=np.int64,
        )
        deltas.flags.writeable = False
        self._deltas = deltas
        name = f"circulant(n={n}, offsets={tuple(cleaned)})"
        super().__init__(n, deltas.size, name)

    def neighbor_rows(self, vertices: np.ndarray) -> np.ndarray:
        rows = (np.asarray(vertices, dtype=np.int64)[:, None] + self._deltas) % self._n
        rows.sort(axis=1)
        return rows

    def analytic_lambda(self) -> float:
        from repro.graphs.spectral import analytic_lambda

        return analytic_lambda("circulant", n=self._n, offsets=self._offsets)

    def _constructor_args(self) -> tuple:
        return (self._n, self._offsets)
