"""Spectral tools: `λ`, spectral gap, mixing/conductance bounds.

The paper's bounds are stated in terms of
``λ = max_{i >= 2} |λ_i(P)}`` where ``P = A/r`` is the random-walk
transition matrix of an `r`-regular graph.  For irregular graphs the
routines here use the symmetric normalisation
``N = D^{-1/2} A D^{-1/2}``, which shares its spectrum with
``P = D^{-1} A`` and keeps everything real-symmetric.

Three computation paths are provided:

* dense (``numpy.linalg.eigvalsh``) — exact, for `n` up to a few
  thousand;
* sparse (``scipy.sparse.linalg.eigsh``) — the two extreme eigenvalues
  of large graphs;
* power iteration with deflation — a dependency-light estimate used as
  a cross-check in tests.

Closed-form spectra for the structured families
(:func:`analytic_lambda`) let the tests validate the numeric paths to
machine precision.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import GraphPropertyError
from repro.graphs.base import Graph

#: Above this many vertices, ``lambda_second(method="auto")`` switches
#: from the dense eigensolver to the sparse one.
DENSE_LIMIT = 1500


def adjacency_matrix(graph: Graph, *, sparse: bool = False):
    """Adjacency matrix as a dense array or ``scipy.sparse.csr_matrix``."""
    n = graph.n_vertices
    if sparse:
        from scipy.sparse import csr_matrix

        data = np.ones(graph.indices.size, dtype=np.float64)
        return csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))
    dense = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        dense[u, graph.neighbors(u)] = 1.0
    return dense


def transition_matrix(graph: Graph, *, sparse: bool = False):
    """Random-walk transition matrix ``P = D^{-1} A``."""
    if graph.min_degree == 0:
        raise GraphPropertyError("transition matrix undefined with isolated vertices")
    adjacency = adjacency_matrix(graph, sparse=sparse)
    inverse_degrees = 1.0 / graph.degrees.astype(np.float64)
    if sparse:
        from scipy.sparse import diags

        return diags(inverse_degrees) @ adjacency
    return inverse_degrees[:, None] * adjacency


def _normalized_adjacency(graph: Graph, *, sparse: bool = False):
    """Symmetric normalisation ``D^{-1/2} A D^{-1/2}`` (same spectrum as P)."""
    if graph.min_degree == 0:
        raise GraphPropertyError("normalised adjacency undefined with isolated vertices")
    adjacency = adjacency_matrix(graph, sparse=sparse)
    scale = 1.0 / np.sqrt(graph.degrees.astype(np.float64))
    if sparse:
        from scipy.sparse import diags

        half = diags(scale)
        return half @ adjacency @ half
    return scale[:, None] * adjacency * scale[None, :]


def eigenvalues(graph: Graph) -> np.ndarray:
    """All eigenvalues of the transition matrix, non-increasing.

    Dense computation; intended for graphs up to a few thousand
    vertices.
    """
    spectrum = np.linalg.eigvalsh(_normalized_adjacency(graph))
    return spectrum[::-1]


def lambda_second(graph: Graph, *, method: str = "auto") -> float:
    """``λ = max_{i >= 2} |λ_i|`` of the transition matrix.

    Parameters
    ----------
    graph:
        A connected graph (disconnected graphs have a repeated
        eigenvalue 1, which this routine reports as ``λ = 1``).
    method:
        ``"dense"``, ``"sparse"``, ``"power"`` or ``"auto"``
        (dense below :data:`DENSE_LIMIT` vertices, sparse above).
    """
    if method == "auto":
        # Implicit graphs know their spectrum in closed form and have
        # no CSR to feed an eigensolver; dispatch before sizing.
        analytic = getattr(graph, "analytic_lambda", None)
        if callable(analytic):
            return float(analytic())
        method = "dense" if graph.n_vertices <= DENSE_LIMIT else "sparse"
    if method == "dense":
        spectrum = eigenvalues(graph)
        return float(max(abs(spectrum[1]), abs(spectrum[-1])))
    if method == "sparse":
        return _lambda_second_sparse(graph)
    if method == "power":
        return _lambda_second_power(graph)
    raise ValueError(f"unknown method {method!r}; expected auto/dense/sparse/power")


def _lambda_second_sparse(graph: Graph) -> float:
    """Extreme eigenvalues via Lanczos on the sparse normalised adjacency."""
    from scipy.sparse.linalg import eigsh

    matrix = _normalized_adjacency(graph, sparse=True)
    # Two algebraically largest (1 and λ_2) and the smallest (λ_n).
    top = eigsh(matrix, k=2, which="LA", return_eigenvectors=False, tol=1e-10)
    bottom = eigsh(matrix, k=1, which="SA", return_eigenvectors=False, tol=1e-10)
    second_largest = float(np.sort(top)[0])
    smallest = float(bottom[0])
    return max(abs(second_largest), abs(smallest))


def _lambda_second_power(
    graph: Graph, *, iterations: int = 2000, tolerance: float = 1e-10, seed: int = 0
) -> float:
    """Power iteration with the stationary eigenvector deflated.

    The principal eigenvector of ``N = D^{-1/2} A D^{-1/2}`` is
    ``D^{1/2} 1`` normalised; projecting it out and power-iterating
    ``N`` converges to the second-largest *absolute* eigenvalue.
    """
    matrix = _normalized_adjacency(graph, sparse=graph.n_vertices > DENSE_LIMIT)
    principal = np.sqrt(graph.degrees.astype(np.float64))
    principal /= np.linalg.norm(principal)
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(graph.n_vertices)
    vector -= principal * (principal @ vector)
    vector /= np.linalg.norm(vector)
    estimate = 0.0
    for _ in range(iterations):
        vector = matrix @ vector
        vector -= principal * (principal @ vector)
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return 0.0
        vector /= norm
        if abs(norm - estimate) < tolerance:
            return norm
        estimate = norm
    return estimate


def spectral_gap(graph: Graph, *, method: str = "auto") -> float:
    """``1 - λ``; positive exactly when the graph mixes (non-bipartite, connected)."""
    return 1.0 - lambda_second(graph, method=method)


def mixing_time_bound(graph: Graph, epsilon: float = 0.25, *, method: str = "auto") -> float:
    """Standard upper bound ``log(n / ε) / (1 - λ)`` on the mixing time."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    gap = spectral_gap(graph, method=method)
    if gap <= 0:
        raise GraphPropertyError("mixing time is infinite: spectral gap is zero")
    return math.log(graph.n_vertices / epsilon) / gap


def cheeger_bounds(graph: Graph, *, method: str = "auto") -> tuple[float, float]:
    """Cheeger inequalities: conductance ``Φ`` obeys ``gap/2 <= Φ <= sqrt(2 gap)``.

    The gap here is the *algebraic* one, ``1 - λ_2`` (not ``1 - λ``),
    as in the standard statement of the inequality.
    """
    if method == "auto":
        method = "dense" if graph.n_vertices <= DENSE_LIMIT else "sparse"
    if method == "dense":
        second = float(eigenvalues(graph)[1])
    else:
        from scipy.sparse.linalg import eigsh

        top = eigsh(
            _normalized_adjacency(graph, sparse=True),
            k=2,
            which="LA",
            return_eigenvectors=False,
            tol=1e-10,
        )
        second = float(np.sort(top)[0])
    gap = 1.0 - second
    return (gap / 2.0, math.sqrt(max(2.0 * gap, 0.0)))


def conductance(graph: Graph) -> float:
    """Exact conductance by subset enumeration (tiny graphs only, `n <= 20`).

    ``Φ(G) = min over cuts S with vol(S) <= vol(V)/2 of cut(S)/vol(S)``.
    """
    n = graph.n_vertices
    if n > 20:
        raise GraphPropertyError(f"exact conductance enumerates 2^n subsets; n={n} > 20")
    degrees = graph.degrees.astype(np.int64)
    total_volume = int(degrees.sum())
    best = math.inf
    for mask in range(1, (1 << n) - 1):
        members = [u for u in range(n) if mask >> u & 1]
        volume = int(degrees[members].sum())
        if volume == 0 or volume > total_volume // 2:
            continue
        cut = 0
        for u in members:
            for v in graph.neighbors(u):
                if not (mask >> int(v)) & 1:
                    cut += 1
        best = min(best, cut / volume)
    return float(best)


def random_walk_hitting_times(graph: Graph) -> np.ndarray:
    """Exact expected hitting times ``H[u, v] = E_u[time to reach v]``.

    Computed from the Moore–Penrose pseudoinverse of the graph
    Laplacian: ``H[u, v] = Σ_w d(w) (L⁺[v, v] − L⁺[u, v] + L⁺[u, w] −
    L⁺[v, w])`` — the standard electrical-network formula, valid for
    any connected graph.  Dense computation; intended for graphs up to
    a few thousand vertices.

    These are the `k = 1` ground truth the COBRA baseline comparisons
    and the exact engines are checked against.
    """
    from repro.graphs.properties import is_connected

    if not is_connected(graph):
        raise GraphPropertyError("hitting times are infinite on a disconnected graph")
    n = graph.n_vertices
    degrees = graph.degrees.astype(np.float64)
    laplacian = np.diag(degrees) - adjacency_matrix(graph)
    pseudo = np.linalg.pinv(laplacian)
    # H[u, v] = sum_w d(w) * (L+[v,v] - L+[u,v] + L+[u,w] - L+[v,w])
    weighted_row = pseudo @ degrees  # (L+ d)[x] = sum_w L+[x, w] d(w)
    total_degree = degrees.sum()
    diagonal = np.diag(pseudo)
    hitting = (
        total_degree * (diagonal[None, :] - pseudo)
        + weighted_row[:, None]
        - weighted_row[None, :]
    )
    np.fill_diagonal(hitting, 0.0)
    return hitting


def random_walk_cover_time_bounds(graph: Graph) -> tuple[float, float]:
    """Matthews' bounds on the cover time of a simple random walk.

    ``max_{u,v} H[u,v] / H_n <= t_cov <= max_{u,v} H[u,v] * H_n`` —
    returned as ``(lower, upper)`` with ``H_n`` the `n`-th harmonic
    number.  Used to sanity-band the measured `k = 1` baseline.
    """
    hitting = random_walk_hitting_times(graph)
    worst = float(hitting.max())
    n = graph.n_vertices
    harmonic = float(np.sum(1.0 / np.arange(1, n + 1)))
    # Matthews: t_cov <= H_{n-1} * max hit; lower bound uses the
    # minimum over subsets, for which max-hit / H_n is a safe relaxation.
    return worst / harmonic, worst * harmonic


# ----------------------------------------------------------------------
# Closed-form spectra for structured families (used to validate the
# numeric paths and to build graphs with a *known* spectral gap).
# ----------------------------------------------------------------------


def analytic_lambda(family: str, **params) -> float:
    """Closed-form ``λ`` for a structured family.

    Supported families and parameters:

    * ``"complete"`` (``n``) — ``1 / (n - 1)``.
    * ``"cycle"`` (``n``) — ``cos(π/n)`` for odd `n` (the most negative
      eigenvalue dominates); 1 for even `n` (bipartite).
    * ``"circulant"`` (``n``, ``offsets``) — max over non-trivial
      characters.
    * ``"hypercube"`` (``dimension``) — 1 (bipartite).
    * ``"torus"`` (``side_lengths``) — max over non-trivial characters
      of the product chain.
    * ``"petersen"`` — 2/3.
    * ``"complete_bipartite"`` (``a``, ``b``) — 1 (bipartite).
    """
    if family == "complete":
        n = params["n"]
        return 1.0 / (n - 1)
    if family == "cycle":
        n = params["n"]
        return _circulant_lambda(n, (1,))
    if family == "circulant":
        return _circulant_lambda(params["n"], tuple(params["offsets"]))
    if family == "hypercube":
        return 1.0
    if family == "torus":
        return _torus_lambda(tuple(params["side_lengths"]))
    if family == "petersen":
        return 2.0 / 3.0
    if family == "complete_bipartite":
        return 1.0
    raise ValueError(f"no analytic spectrum known for family {family!r}")


def _circulant_lambda(n: int, offsets: Sequence[int]) -> float:
    """``λ`` of the circulant ``C_n(offsets)`` via character sums."""
    cleaned = sorted({int(s) for s in offsets})
    degree = sum(1 if 2 * s == n else 2 for s in cleaned)
    worst = 0.0
    for j in range(1, n):
        value = 0.0
        for s in cleaned:
            if 2 * s == n:
                value += math.cos(math.pi * j)
            else:
                value += 2.0 * math.cos(2.0 * math.pi * j * s / n)
        worst = max(worst, abs(value) / degree)
    return worst


def _torus_lambda(side_lengths: tuple[int, ...]) -> float:
    """``λ`` of the `d`-dimensional torus via product-chain characters.

    Transition eigenvalues are ``(1/d) * Σ_a cos(2π j_a / L_a)`` over
    frequency vectors ``j``.  The sum is separable, so instead of
    enumerating all ``Π L_a`` vectors the extremes suffice: the largest
    non-trivial eigenvalue puts one axis at its best non-zero frequency
    and the rest at zero, and the most negative puts every axis at its
    most negative frequency — O(Σ L_a) total, which keeps million-vertex
    implicit tori instant.
    """
    d = len(side_lengths)
    per_axis = [
        np.cos(2.0 * np.pi * np.arange(side, dtype=np.float64) / side)
        for side in side_lengths
    ]
    largest = (d - 1) + max(float(axis[1:].max()) for axis in per_axis)
    most_negative = sum(float(axis.min()) for axis in per_axis)
    return max(abs(largest), abs(most_negative)) / d
