"""Shortest-path distances on unweighted graphs (BFS-based).

A thin public layer over the BFS used internally by
:mod:`repro.graphs.properties`: per-source distance vectors, all-pairs
matrices for small graphs, and distance histograms.  COBRA's cover
time is lower-bounded by the diameter (information moves one hop per
round), which the integration tests assert with these helpers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphPropertyError
from repro.graphs.base import Graph
from repro.graphs.properties import _bfs_levels


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every vertex (-1 if unreachable)."""
    if not 0 <= source < graph.n_vertices:
        raise GraphPropertyError(
            f"source {source} out of range [0, {graph.n_vertices})"
        )
    return _bfs_levels(graph, source)


def all_pairs_distances(graph: Graph, *, max_vertices: int = 4096) -> np.ndarray:
    """The full ``(n, n)`` hop-distance matrix (-1 marks unreachable pairs).

    BFS from every vertex: O(n·m).  Refuses graphs above
    ``max_vertices`` to avoid accidental quadratic blowups.
    """
    n = graph.n_vertices
    if n > max_vertices:
        raise GraphPropertyError(
            f"all-pairs distances on n={n} exceeds the limit of {max_vertices}; "
            "raise max_vertices explicitly if you really want this"
        )
    matrix = np.empty((n, n), dtype=np.int64)
    for source in range(n):
        matrix[source] = _bfs_levels(graph, source)
    return matrix


def distance_histogram(graph: Graph) -> dict[int, int]:
    """Counts of ordered vertex pairs at each hop distance ``>= 1``.

    Requires connectivity (no -1 entries).  The count at distance 1 is
    ``2m``; the largest key is the diameter.
    """
    matrix = all_pairs_distances(graph)
    if np.any(matrix < 0):
        raise GraphPropertyError("distance histogram requires a connected graph")
    values, counts = np.unique(matrix[matrix > 0], return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


def average_distance(graph: Graph) -> float:
    """Mean hop distance over ordered distinct pairs (connected graphs)."""
    matrix = all_pairs_distances(graph)
    if np.any(matrix < 0):
        raise GraphPropertyError("average distance requires a connected graph")
    n = graph.n_vertices
    if n < 2:
        raise GraphPropertyError("average distance needs at least two vertices")
    return float(matrix.sum() / (n * (n - 1)))


def eccentricities(graph: Graph) -> np.ndarray:
    """Per-vertex eccentricity (largest hop distance); requires connectivity."""
    matrix = all_pairs_distances(graph)
    if np.any(matrix < 0):
        raise GraphPropertyError("eccentricities require a connected graph")
    return matrix.max(axis=1)
