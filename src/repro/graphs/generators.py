"""Graph families used by the paper's experiments.

Regular families (the paper's setting):

* :func:`complete` — `K_n`, the densest expander, `λ = 1/(n-1)`.
* :func:`cycle` — `C_n`, the weakest connected regular graph,
  `λ = cos(π/n)` for odd `n`.
* :func:`circulant` — cycles with chord sets; analytically known
  eigenvalues and tunable spectral gap.
* :func:`random_regular` — random `r`-regular graphs, `λ ≈ 2√(r-1)/r`
  w.h.p.; the paper's canonical expander testbed.
* :func:`hypercube` — `d`-dimensional binary cube (bipartite; useful as
  a boundary case where `λ = 1` and the theorems are vacuous).
* :func:`torus` — `d`-dimensional discrete torus; the regular analogue
  of the grid in the Dutta et al. comparison.
* :func:`petersen` — the Petersen graph, a small vertex-transitive
  expander handy for exact computations.

Irregular families (for generality tests and baselines): :func:`path`,
:func:`star`, :func:`grid`, :func:`binary_tree`, :func:`barbell`,
:func:`ring_of_cliques`, :func:`erdos_renyi`, :func:`complete_bipartite`.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, ensure_generator
from repro.errors import GraphConstructionError
from repro.graphs.base import Graph, resolve_index_dtype
from repro.graphs.build import from_edges


def _adopt_regular_rows(rows: np.ndarray, name: str, index_dtype: str) -> Graph:
    """Wrap an ``(n, r)`` matrix of per-vertex neighbour rows as a Graph.

    The structured generators (hypercube, torus, circulant) compute
    every neighbour analytically, so the rows are valid by construction
    — sorting each row and adopting the flattened matrix as CSR skips
    both the Python edge lists and the O(2m) re-validation that used to
    dominate construction at n >= 1e5.
    """
    n = rows.shape[0]
    rows.sort(axis=1)
    storage = resolve_index_dtype(index_dtype, n)
    indices = np.ascontiguousarray(rows.reshape(-1), dtype=storage)
    indptr = np.arange(n + 1, dtype=np.int64) * rows.shape[1]
    return Graph.adopt_validated_csr(indptr, indices, name=name)


def complete(n: int) -> Graph:
    """Complete graph `K_n` (`(n-1)`-regular, `λ = 1/(n-1)`)."""
    if n < 2:
        raise GraphConstructionError(f"complete graph needs n >= 2, got {n}")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return from_edges(n, edges, name=f"complete(n={n})")


def cycle(n: int) -> Graph:
    """Cycle `C_n` (2-regular; bipartite iff `n` even)."""
    if n < 3:
        raise GraphConstructionError(f"cycle needs n >= 3, got {n}")
    edges = [(u, (u + 1) % n) for u in range(n)]
    return from_edges(n, edges, name=f"cycle(n={n})")


def path(n: int) -> Graph:
    """Path graph on `n` vertices (irregular: endpoints have degree 1)."""
    if n < 2:
        raise GraphConstructionError(f"path needs n >= 2, got {n}")
    edges = [(u, u + 1) for u in range(n - 1)]
    return from_edges(n, edges, name=f"path(n={n})")


def star(n: int) -> Graph:
    """Star with centre 0 and `n - 1` leaves."""
    if n < 2:
        raise GraphConstructionError(f"star needs n >= 2, got {n}")
    edges = [(0, leaf) for leaf in range(1, n)]
    return from_edges(n, edges, name=f"star(n={n})")


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph `K_{a,b}` (regular iff `a == b`)."""
    if a < 1 or b < 1:
        raise GraphConstructionError(f"complete_bipartite needs a, b >= 1, got {a}, {b}")
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return from_edges(a + b, edges, name=f"complete_bipartite(a={a}, b={b})")


def petersen() -> Graph:
    """The Petersen graph: 10 vertices, 3-regular, non-bipartite, `λ = 2/3`."""
    outer = [(u, (u + 1) % 5) for u in range(5)]
    spokes = [(u, u + 5) for u in range(5)]
    inner = [(5 + u, 5 + (u + 2) % 5) for u in range(5)]
    return from_edges(10, outer + spokes + inner, name="petersen()")


def hypercube(dimension: int, *, index_dtype: str = "int64") -> Graph:
    """Binary hypercube `Q_d`: `2^d` vertices, `d`-regular, bipartite."""
    if dimension < 1:
        raise GraphConstructionError(f"hypercube needs dimension >= 1, got {dimension}")
    n = 1 << dimension
    bits = np.int64(1) << np.arange(dimension, dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)[:, None] ^ bits
    return _adopt_regular_rows(rows, f"hypercube(d={dimension})", index_dtype)


def torus(side_lengths: Sequence[int], *, index_dtype: str = "int64") -> Graph:
    """Discrete torus `Z_{L1} x ... x Z_{Ld}` (`2d`-regular for sides >= 3).

    Non-bipartite whenever at least one side length is odd, which is the
    configuration the experiments use (bipartite graphs have `λ = 1`).
    Side lengths of 2 would create parallel edges and are rejected.
    """
    sides = tuple(int(side) for side in side_lengths)
    if not sides:
        raise GraphConstructionError("torus needs at least one dimension")
    if any(side < 3 for side in sides):
        raise GraphConstructionError(f"torus side lengths must be >= 3, got {sides}")
    n = int(np.prod(sides))
    strides = np.ones(len(sides), dtype=np.int64)
    for axis in range(len(sides) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * sides[axis + 1]

    # Per axis, vertex u sits at coordinate c = (u // stride) % side and
    # its two neighbours differ by ((c ± 1) % side - c) * stride; sides
    # >= 3 keep the forward and backward neighbours distinct, so the
    # 2d columns are exactly the neighbour rows.
    u = np.arange(n, dtype=np.int64)
    rows = np.empty((n, 2 * len(sides)), dtype=np.int64)
    for axis, side in enumerate(sides):
        coord = (u // strides[axis]) % side
        rows[:, 2 * axis] = u + ((coord + 1) % side - coord) * strides[axis]
        rows[:, 2 * axis + 1] = u + ((coord - 1) % side - coord) * strides[axis]
    return _adopt_regular_rows(rows, f"torus(sides={sides})", index_dtype)


def grid(side_lengths: Sequence[int]) -> Graph:
    """Open `d`-dimensional grid (irregular at the boundary)."""
    sides = tuple(int(side) for side in side_lengths)
    if not sides:
        raise GraphConstructionError("grid needs at least one dimension")
    if any(side < 2 for side in sides):
        raise GraphConstructionError(f"grid side lengths must be >= 2, got {sides}")
    n = int(np.prod(sides))
    strides = np.ones(len(sides), dtype=np.int64)
    for axis in range(len(sides) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * sides[axis + 1]
    edges: list[tuple[int, int]] = []
    for coords in itertools.product(*[range(side) for side in sides]):
        u = int(np.dot(coords, strides))
        for axis, side in enumerate(sides):
            if coords[axis] + 1 < side:
                forward = list(coords)
                forward[axis] += 1
                edges.append((u, int(np.dot(forward, strides))))
    return from_edges(n, edges, name=f"grid(sides={sides})")


def circulant(n: int, offsets: Sequence[int], *, index_dtype: str = "int64") -> Graph:
    """Circulant graph `C_n(s1, ..., sj)`.

    Vertex ``u`` is adjacent to ``u ± s (mod n)`` for each offset ``s``.
    The graph is ``2j``-regular when no offset equals ``n/2`` (an offset
    of exactly ``n/2`` contributes a single perfect-matching edge per
    vertex).  Eigenvalues are known in closed form, which
    :func:`repro.graphs.spectral.analytic_lambda` exploits.
    """
    if n < 3:
        raise GraphConstructionError(f"circulant needs n >= 3, got {n}")
    cleaned = sorted({int(s) for s in offsets})
    if not cleaned:
        raise GraphConstructionError("circulant needs at least one offset")
    if cleaned[0] < 1 or cleaned[-1] > n // 2:
        raise GraphConstructionError(
            f"offsets must lie in [1, n//2]={n // 2}, got {cleaned}"
        )
    # Each offset s contributes the deltas +s and n-s; an offset of
    # exactly n/2 contributes a single delta (its matching edge).
    deltas = np.asarray(
        sorted({s for offset in cleaned for s in (offset, n - offset)}),
        dtype=np.int64,
    )
    rows = (np.arange(n, dtype=np.int64)[:, None] + deltas) % n
    name = f"circulant(n={n}, offsets={tuple(cleaned)})"
    return _adopt_regular_rows(rows, name, index_dtype)


def random_regular(n: int, r: int, seed: SeedLike = None, *, max_tries: int = 100) -> Graph:
    """Connected random `r`-regular simple graph on `n` vertices.

    Uses NetworkX's pairing-model sampler and retries until the sample
    is connected (for `r >= 3` a sample is connected w.h.p., so retries
    are rare).  Requires `n * r` even and `r < n`.
    """
    if r < 1 or r >= n:
        raise GraphConstructionError(f"need 1 <= r < n, got r={r}, n={n}")
    if (n * r) % 2 != 0:
        raise GraphConstructionError(f"n*r must be even, got n={n}, r={r}")
    import networkx as nx

    rng = ensure_generator(seed)
    for _ in range(max_tries):
        nx_seed = int(rng.integers(0, 2**31 - 1))
        candidate = nx.random_regular_graph(r, n, seed=nx_seed)
        if nx.is_connected(candidate):
            graph = from_edges(
                n, list(candidate.edges()), name=f"random_regular(n={n}, r={r})"
            )
            return graph
    raise GraphConstructionError(
        f"failed to sample a connected {r}-regular graph on {n} vertices "
        f"in {max_tries} tries"
    )


def watts_strogatz(
    n: int, k: int, rewire: float, seed: SeedLike = None, *, max_tries: int = 100
) -> Graph:
    """Connected Watts–Strogatz small-world graph.

    A ring lattice where each vertex connects to its `k` nearest
    neighbours, with every edge rewired independently with probability
    ``rewire``.  Retries until the sample is connected, so processes
    can always complete on it.  Requires even ``k`` with
    ``2 <= k < n`` and ``0 <= rewire <= 1``; irregular once any edge
    is rewired.
    """
    if k < 2 or k % 2 != 0 or k >= n:
        raise GraphConstructionError(
            f"watts_strogatz needs an even 2 <= k < n, got k={k}, n={n}"
        )
    if not 0.0 <= rewire <= 1.0:
        raise GraphConstructionError(f"rewire must be in [0, 1], got {rewire}")
    import networkx as nx

    rng = ensure_generator(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    candidate = nx.connected_watts_strogatz_graph(
        n, k, rewire, tries=max_tries, seed=nx_seed
    )
    return from_edges(
        n,
        list(candidate.edges()),
        name=f"watts_strogatz(n={n}, k={k}, rewire={rewire})",
    )


def barabasi_albert(n: int, attach: int, seed: SeedLike = None) -> Graph:
    """Barabási–Albert preferential-attachment (power-law) graph.

    Each new vertex attaches to ``attach`` existing vertices with
    probability proportional to their degree, yielding the heavy-tailed
    degree distribution of scale-free networks.  Always connected;
    strongly irregular (hub degrees grow like ``sqrt(n)``).  Requires
    ``1 <= attach < n``.
    """
    if attach < 1 or attach >= n:
        raise GraphConstructionError(
            f"barabasi_albert needs 1 <= attach < n, got attach={attach}, n={n}"
        )
    import networkx as nx

    rng = ensure_generator(seed)
    nx_seed = int(rng.integers(0, 2**31 - 1))
    candidate = nx.barabasi_albert_graph(n, attach, seed=nx_seed)
    return from_edges(
        n, list(candidate.edges()), name=f"barabasi_albert(n={n}, attach={attach})"
    )


def ring_of_cliques(n_cliques: int, clique_size: int) -> Graph:
    """`n_cliques` copies of `K_s` joined in a cycle by bridge edges.

    A classic poor expander: the spectral gap shrinks as the number of
    cliques grows.  Not regular (bridge endpoints have degree `s`).
    """
    if n_cliques < 3:
        raise GraphConstructionError(f"ring_of_cliques needs >= 3 cliques, got {n_cliques}")
    if clique_size < 2:
        raise GraphConstructionError(f"clique size must be >= 2, got {clique_size}")
    edges: list[tuple[int, int]] = []
    for c in range(n_cliques):
        base = c * clique_size
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                edges.append((base + u, base + v))
        next_base = ((c + 1) % n_cliques) * clique_size
        # Bridge from this clique's vertex 1 to the next clique's vertex 0
        # so no vertex carries two bridges (keeps degrees s-1 or s).
        edges.append((base + 1, next_base))
    n = n_cliques * clique_size
    return from_edges(n, edges, name=f"ring_of_cliques(cliques={n_cliques}, size={clique_size})")


def barbell(clique_size: int, path_length: int) -> Graph:
    """Two `K_s` cliques joined by a path of `path_length` extra vertices."""
    if clique_size < 3:
        raise GraphConstructionError(f"barbell clique size must be >= 3, got {clique_size}")
    if path_length < 0:
        raise GraphConstructionError(f"path_length must be >= 0, got {path_length}")
    edges: list[tuple[int, int]] = []
    for base in (0, clique_size):
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                edges.append((base + u, base + v))
    left_anchor = 0
    right_anchor = clique_size
    previous = left_anchor
    for i in range(path_length):
        bridge_vertex = 2 * clique_size + i
        edges.append((previous, bridge_vertex))
        previous = bridge_vertex
    edges.append((previous, right_anchor))
    n = 2 * clique_size + path_length
    return from_edges(n, edges, name=f"barbell(clique={clique_size}, path={path_length})")


def binary_tree(height: int) -> Graph:
    """Complete binary tree of the given height (`2^(h+1) - 1` vertices)."""
    if height < 1:
        raise GraphConstructionError(f"binary_tree needs height >= 1, got {height}")
    n = (1 << (height + 1)) - 1
    edges = [(child, (child - 1) // 2) for child in range(1, n)]
    return from_edges(n, edges, name=f"binary_tree(height={height})")


def kneser(n: int, k: int) -> Graph:
    """Kneser graph ``K(n, k)``: `k`-subsets of `[n]`, adjacent iff disjoint.

    ``C(n, k)`` vertices, ``C(n-k, k)``-regular; ``kneser(5, 2)`` is the
    Petersen graph.  Requires ``n >= 2k`` (else edgeless).
    """
    if k < 1 or n < 2 * k:
        raise GraphConstructionError(f"kneser needs n >= 2k >= 2, got n={n}, k={k}")
    subsets = list(itertools.combinations(range(n), k))
    index_of = {subset: i for i, subset in enumerate(subsets)}
    edges = []
    for i, a in enumerate(subsets):
        a_set = set(a)
        for b in itertools.combinations([x for x in range(n) if x not in a_set], k):
            j = index_of[b]
            if i < j:
                edges.append((i, j))
    return from_edges(len(subsets), edges, name=f"kneser(n={n}, k={k})")


def johnson(n: int, k: int) -> Graph:
    """Johnson graph ``J(n, k)``: `k`-subsets of `[n]`, adjacent iff they
    share ``k - 1`` elements.

    ``C(n, k)`` vertices, ``k (n - k)``-regular, distance-transitive;
    ``J(n, 2)`` is the triangular graph ``T(n)``.
    """
    if k < 1 or k > n - 1:
        raise GraphConstructionError(f"johnson needs 1 <= k <= n-1, got n={n}, k={k}")
    subsets = list(itertools.combinations(range(n), k))
    index_of = {subset: i for i, subset in enumerate(subsets)}
    edges = []
    for i, a in enumerate(subsets):
        a_set = set(a)
        for removed in a:
            remaining = a_set - {removed}
            for added in range(n):
                if added in a_set:
                    continue
                b = tuple(sorted(remaining | {added}))
                j = index_of[b]
                if i < j:
                    edges.append((i, j))
    return from_edges(len(subsets), edges, name=f"johnson(n={n}, k={k})")


def lollipop(clique_size: int, path_length: int) -> Graph:
    """Lollipop graph: a `K_s` clique with a path of ``path_length``
    extra vertices hanging off vertex 0.

    The classic worst case for random-walk cover time (``Θ(n³)``),
    included as a baseline stressor.
    """
    if clique_size < 3:
        raise GraphConstructionError(f"lollipop clique size must be >= 3, got {clique_size}")
    if path_length < 1:
        raise GraphConstructionError(f"lollipop path_length must be >= 1, got {path_length}")
    edges = [
        (u, v) for u in range(clique_size) for v in range(u + 1, clique_size)
    ]
    previous = 0
    for i in range(path_length):
        tail_vertex = clique_size + i
        edges.append((previous, tail_vertex))
        previous = tail_vertex
    n = clique_size + path_length
    return from_edges(n, edges, name=f"lollipop(clique={clique_size}, path={path_length})")


def complete_multipartite(part_sizes: Sequence[int]) -> Graph:
    """Complete multipartite graph: parts are independent sets, all
    cross-part pairs are edges.

    Regular iff all parts have equal size; `K_{s,s,...,s}` with `p`
    parts is ``(p-1)s``-regular and non-bipartite for ``p >= 3``.
    """
    sizes = [int(s) for s in part_sizes]
    if len(sizes) < 2 or any(s < 1 for s in sizes):
        raise GraphConstructionError(
            f"complete_multipartite needs >= 2 parts of size >= 1, got {sizes}"
        )
    boundaries = np.concatenate([[0], np.cumsum(sizes)])
    edges = []
    for part_a in range(len(sizes)):
        for part_b in range(part_a + 1, len(sizes)):
            for u in range(boundaries[part_a], boundaries[part_a + 1]):
                for v in range(boundaries[part_b], boundaries[part_b + 1]):
                    edges.append((int(u), int(v)))
    n = int(boundaries[-1])
    return from_edges(n, edges, name=f"complete_multipartite(sizes={tuple(sizes)})")


def gabber_galil(m: int) -> Graph:
    """Gabber–Galil expander on the grid ``Z_m × Z_m`` (simplified).

    Vertex ``(x, y)`` connects to ``(x ± 2y, y)``, ``(x ± (2y+1), y)``,
    ``(x, y ± 2x)``, ``(x, y ± (2x+1))`` (arithmetic mod `m`) — a
    deterministic constant-gap expander family.  Self-loops and
    parallel edges of the underlying multigraph are dropped, so the
    simple version is *nearly* 8-regular (degrees can dip at special
    points); the spectral gap remains bounded away from zero.
    """
    if m < 3:
        raise GraphConstructionError(f"gabber_galil needs m >= 3, got {m}")
    edges: set[tuple[int, int]] = set()

    def vertex(x: int, y: int) -> int:
        return (x % m) * m + (y % m)

    for x in range(m):
        for y in range(m):
            u = vertex(x, y)
            for v in (
                vertex(x + 2 * y, y),
                vertex(x - 2 * y, y),
                vertex(x + 2 * y + 1, y),
                vertex(x - 2 * y - 1, y),
                vertex(x, y + 2 * x),
                vertex(x, y - 2 * x),
                vertex(x, y + 2 * x + 1),
                vertex(x, y - 2 * x - 1),
            ):
                if u != v:
                    edges.add((min(u, v), max(u, v)))
    return from_edges(m * m, sorted(edges), name=f"gabber_galil(m={m})")


def erdos_renyi(n: int, p: float, seed: SeedLike = None, *, connected: bool = False,
                max_tries: int = 100) -> Graph:
    """Erdős–Rényi `G(n, p)` random graph.

    With ``connected=True`` the sample is redrawn until connected
    (sensible only for `p` above the connectivity threshold
    `log(n)/n`).
    """
    if n < 2:
        raise GraphConstructionError(f"erdos_renyi needs n >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphConstructionError(f"p must be in [0, 1], got {p}")
    rng = ensure_generator(seed)
    rows, cols = np.triu_indices(n, k=1)
    for _ in range(max_tries):
        mask = rng.random(rows.size) < p
        edges = np.column_stack([rows[mask], cols[mask]])
        graph = from_edges(n, edges, name=f"erdos_renyi(n={n}, p={p})")
        if not connected:
            return graph
        from repro.graphs.properties import is_connected

        if is_connected(graph):
            return graph
    raise GraphConstructionError(
        f"failed to sample a connected G({n}, {p}) graph in {max_tries} tries"
    )
