"""Graph operations: products, unions, complement.

These compose the structured families into richer testbeds.  For
regular graphs the spectra compose in closed form, which the test
suite exploits:

* **Cartesian product** ``G □ H`` of an `r`-regular `G` and an
  `s`-regular `H` is `(r+s)`-regular, and the transition-matrix
  eigenvalues are ``(r·λ_i(G) + s·μ_j(H)) / (r + s)`` — e.g. the
  `d`-dimensional torus is the `d`-fold product of cycles.
* **Tensor (categorical) product** ``G × H`` has transition
  eigenvalues ``λ_i(G) · μ_j(H)``.
* **Complement** of an `r`-regular graph is `(n−1−r)`-regular with
  adjacency eigenvalues ``n−1−r`` and ``−1−η`` for each non-principal
  adjacency eigenvalue ``η`` of `G`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.base import Graph
from repro.graphs.build import from_edges


def cartesian_product(first: Graph, second: Graph, *, name: str | None = None) -> Graph:
    """Cartesian product ``G □ H``.

    Vertices are pairs ``(u, x)`` encoded as ``u * |H| + x``; edges
    connect pairs that agree in one coordinate and are adjacent in the
    other.
    """
    n_second = second.n_vertices
    edges: list[tuple[int, int]] = []
    for u in range(first.n_vertices):
        base = u * n_second
        for x, y in second.edges():
            edges.append((base + x, base + y))
    for u, v in first.edges():
        for x in range(n_second):
            edges.append((u * n_second + x, v * n_second + x))
    label = name if name is not None else f"cartesian({first.name}, {second.name})"
    return from_edges(first.n_vertices * n_second, edges, name=label)


def tensor_product(first: Graph, second: Graph, *, name: str | None = None) -> Graph:
    """Tensor (categorical) product ``G × H``.

    ``(u, x) ~ (v, y)`` iff ``u ~ v`` in `G` **and** ``x ~ y`` in `H`.
    The product of connected non-bipartite graphs is connected; the
    product with a bipartite factor splits into two components.
    """
    n_second = second.n_vertices
    edges: set[tuple[int, int]] = set()
    second_edges = list(second.edges())
    for u, v in first.edges():
        for x, y in second_edges:
            a, b = u * n_second + x, v * n_second + y
            edges.add((min(a, b), max(a, b)))
            a, b = u * n_second + y, v * n_second + x
            edges.add((min(a, b), max(a, b)))
    label = name if name is not None else f"tensor({first.name}, {second.name})"
    return from_edges(first.n_vertices * n_second, sorted(edges), name=label)


def disjoint_union(first: Graph, second: Graph, *, name: str | None = None) -> Graph:
    """Disjoint union; the second graph's vertices are shifted by ``|G|``."""
    offset = first.n_vertices
    edges = list(first.edges()) + [(u + offset, v + offset) for u, v in second.edges()]
    label = name if name is not None else f"union({first.name}, {second.name})"
    return from_edges(first.n_vertices + second.n_vertices, edges, name=label)


def complement(graph: Graph, *, name: str | None = None) -> Graph:
    """Complement graph (no self-loops).

    Rejects graphs on fewer than 2 vertices, where the complement is
    edgeless anyway.
    """
    n = graph.n_vertices
    if n < 2:
        raise GraphConstructionError("complement needs at least two vertices")
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    label = name if name is not None else f"complement({graph.name})"
    return from_edges(n, edges, name=label)


def line_graph(graph: Graph, *, name: str | None = None) -> Graph:
    """Line graph ``L(G)``: one vertex per edge, adjacent iff edges share
    an endpoint.

    For an `r`-regular `G`, ``L(G)`` is ``(2r−2)``-regular with
    ``|E(G)|`` vertices — a cheap way to build larger regular graphs
    from small ones.
    """
    edge_list = list(graph.edges())
    index_of = {edge: i for i, edge in enumerate(edge_list)}
    edges: set[tuple[int, int]] = set()
    # Two edges are adjacent iff they share an endpoint: group by endpoint.
    incident: list[list[int]] = [[] for _ in range(graph.n_vertices)]
    for i, (u, v) in enumerate(edge_list):
        incident[u].append(i)
        incident[v].append(i)
    for group in incident:
        for a_index in range(len(group)):
            for b_index in range(a_index + 1, len(group)):
                a, b = group[a_index], group[b_index]
                edges.add((min(a, b), max(a, b)))
    label = name if name is not None else f"line({graph.name})"
    if not edge_list:
        raise GraphConstructionError("line graph of an edgeless graph is empty")
    return from_edges(len(edge_list), sorted(edges), name=label)


def product_transition_eigenvalues(
    first_eigenvalues: np.ndarray,
    first_degree: int,
    second_eigenvalues: np.ndarray,
    second_degree: int,
) -> np.ndarray:
    """Transition spectrum of a Cartesian product of regular graphs.

    ``(r λ_i + s μ_j) / (r + s)`` over all index pairs, sorted
    non-increasing — the analytic cross-check used by the tests.
    """
    first_eigenvalues = np.asarray(first_eigenvalues, dtype=np.float64)
    second_eigenvalues = np.asarray(second_eigenvalues, dtype=np.float64)
    combined = (
        first_degree * first_eigenvalues[:, None]
        + second_degree * second_eigenvalues[None, :]
    ) / (first_degree + second_degree)
    return np.sort(combined.ravel())[::-1]
