"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphConstructionError(ReproError):
    """Raised when graph input data is malformed.

    Examples: self-loops, duplicate edges, asymmetric adjacency,
    vertex indices out of range, or an empty vertex set.
    """


class GraphPropertyError(ReproError):
    """Raised when a graph lacks a property an operation requires.

    Examples: asking for the regular degree of an irregular graph, or
    running a spectral routine that requires connectivity on a
    disconnected graph.
    """


class ProcessError(ReproError):
    """Raised on invalid process configuration or misuse.

    Examples: a branching factor below 1, a start vertex outside the
    graph, or stepping a process that has been invalidated.
    """


class ProcessTimeoutError(ReproError):
    """Raised when a process fails to reach its goal within ``max_rounds``.

    The shared base of the goal-flavoured timeouts: coverage processes
    (COBRA, push, random walks) raise :class:`CoverTimeoutError`,
    infection processes (BIPS, SIS) raise
    :class:`InfectionTimeoutError`.  Catch this class to handle any
    timeout regardless of the process's goal.  Runners raise only when
    explicitly asked to treat timeout as an error; by default they
    return a result object with ``success=False`` (or record ``-1``).
    """


class CoverTimeoutError(ProcessTimeoutError):
    """Raised when a coverage process fails to cover within ``max_rounds``."""


class InfectionTimeoutError(ProcessTimeoutError):
    """Raised when an infection process (BIPS, SIS) fails to infect
    every vertex within ``max_rounds``."""


class ExactEngineError(ReproError):
    """Raised when an exact-distribution computation is infeasible.

    The exact engines enumerate all ``2**n`` vertex subsets and refuse
    graphs above a size limit rather than exhausting memory.
    """


class ExperimentError(ReproError):
    """Raised for unknown experiment ids or malformed experiment results."""


class ScenarioError(ExperimentError):
    """Raised on invalid scenario or workload configuration.

    Examples: an override naming a field the workload does not have, a
    value that cannot be coerced to the field's type, an unknown
    scenario name, a malformed scenario JSON file, or a graph-family
    description the generators cannot build.
    """


class ParallelError(ReproError):
    """Raised on invalid parallel-execution configuration.

    Examples: a negative ``jobs`` count, or a shard size below 1.
    """


class EntryDeadlineError(ParallelError):
    """Raised when a pooled task misses its wall-clock deadline.

    The watchdog cannot tell a hung worker from one the OS killed —
    either way the result never arrives — so both surface as this one
    error.  Classified *transient* by the retry policy (unlike
    :class:`ProcessTimeoutError`, which reports a simulation that
    deterministically failed to converge and is never retried).
    """


class WorkerCrashError(ParallelError):
    """Raised when a pool worker died before returning its result.

    Classified *transient* by the retry policy: a fresh worker on a
    recycled pool may well succeed.
    """


class FaultSpecError(ReproError):
    """Raised on a malformed fault-injection plan or spec.

    Examples: an unknown injection site, a rate outside ``[0, 1]``, or
    unparseable ``REPRO_FAULTS`` JSON.
    """


class BackendError(ReproError):
    """Raised on invalid array-backend configuration.

    Examples: an unknown backend spec, a GPU backend requested on a
    machine without the library installed, or a workload a non-NumPy
    backend does not support (e.g. irregular graphs).
    """


class CacheError(ReproError):
    """Raised on invalid result-cache configuration or unusable keys.

    Examples: cache parameters that cannot be canonically serialised
    (non-string dict keys, NaN floats, arbitrary objects), or a cache
    directory path that exists but is not a directory.  Corrupt or
    stale cache *entries* never raise — they are treated as misses.
    """
