"""Summary statistics with confidence intervals for ensemble measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._rng import SeedLike, ensure_generator


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample.

    ``ci_low``/``ci_high`` bracket the mean with a normal-approximation
    95% interval (``mean ± 1.96 sem``); use :func:`bootstrap_ci` for
    small or skewed samples.
    """

    count: int
    mean: float
    std: float
    sem: float
    ci_low: float
    ci_high: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} ± {1.96 * self.sem:.3f} "
            f"(median {self.median:.3f}, range {self.minimum:.0f}..{self.maximum:.0f})"
        )


def summarize(values: Sequence[float] | np.ndarray) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"expected a non-empty 1-D sample, got shape {array.shape}")
    count = int(array.size)
    mean = float(array.mean())
    std = float(array.std(ddof=1)) if count > 1 else 0.0
    sem = std / math.sqrt(count) if count > 1 else 0.0
    half_width = 1.96 * sem
    q25, median, q75 = (float(q) for q in np.percentile(array, [25, 50, 75]))
    return SummaryStats(
        count=count,
        mean=mean,
        std=std,
        sem=sem,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        minimum=float(array.min()),
        q25=q25,
        median=median,
        q75=q75,
        maximum=float(array.max()),
    )


def bootstrap_ci(
    values: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"expected a non-empty 1-D sample, got shape {array.shape}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_generator(seed)
    resample_indices = rng.integers(0, array.size, size=(n_resamples, array.size))
    estimates = np.array([statistic(array[row]) for row in resample_indices])
    tail = (1.0 - confidence) / 2.0
    low, high = np.percentile(estimates, [100 * tail, 100 * (1 - tail)])
    return float(low), float(high)


def proportion_ci(successes: int, trials: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation for proportions near 0 or 1
    (e.g. duality tail probabilities and extinction frequencies).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    half_width = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, centre - half_width), min(1.0, centre + half_width)
