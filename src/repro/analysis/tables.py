"""Lightweight tables rendered as aligned ASCII or GitHub markdown.

The experiment harness reports every result as a :class:`Table` so the
same object feeds terminal output, EXPERIMENTS.md, and JSON storage.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """A headed table of heterogeneous cells with formatting control.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Optional initial rows; each row must match the header length.
    float_format:
        printf-style format used for float cells (default ``"%.3g"``).
    """

    def __init__(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        *,
        float_format: str = "%.4g",
    ) -> None:
        self._headers = [str(h) for h in headers]
        if not self._headers:
            raise ValueError("a table needs at least one column")
        self._float_format = float_format
        self._rows: list[list[Any]] = []
        for row in rows:
            self.add_row(row)

    @property
    def headers(self) -> list[str]:
        """Column names (a copy)."""
        return list(self._headers)

    @property
    def rows(self) -> list[list[Any]]:
        """Raw row data (a copy of the list; cells are shared)."""
        return [list(row) for row in self._rows]

    @property
    def n_rows(self) -> int:
        """Number of data rows."""
        return len(self._rows)

    def add_row(self, row: Sequence[Any]) -> None:
        """Append a row; its length must match the headers."""
        cells = list(row)
        if len(cells) != len(self._headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has "
                f"{len(self._headers)} columns"
            )
        self._rows.append(cells)

    def column(self, name: str) -> list[Any]:
        """All cells of the named column."""
        try:
            index = self._headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; have {self._headers}") from None
        return [row[index] for row in self._rows]

    def _format_cell(self, cell: Any) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return self._float_format % cell
        return str(cell)

    def render(self) -> str:
        """Aligned plain-text rendering."""
        formatted = [self._headers] + [
            [self._format_cell(cell) for cell in row] for row in self._rows
        ]
        widths = [max(len(row[i]) for row in formatted) for i in range(len(self._headers))]
        lines = []
        header_line = "  ".join(h.ljust(w) for h, w in zip(formatted[0], widths))
        lines.append(header_line)
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted[1:]:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        formatted = [[self._format_cell(cell) for cell in row] for row in self._rows]
        lines = ["| " + " | ".join(self._headers) + " |"]
        lines.append("|" + "|".join("---" for _ in self._headers) + "|")
        for row in formatted:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by header (for JSON storage)."""
        return [dict(zip(self._headers, row)) for row in self._rows]

    @classmethod
    def from_records(
        cls, records: Sequence[dict[str, Any]], *, float_format: str = "%.4g"
    ) -> "Table":
        """Rebuild a table from :meth:`to_records` output."""
        if not records:
            raise ValueError("cannot infer headers from an empty record list")
        headers = list(records[0].keys())
        table = cls(headers, float_format=float_format)
        for record in records:
            table.add_row([record.get(h) for h in headers])
        return table

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Table(columns={self._headers}, rows={len(self._rows)})"
