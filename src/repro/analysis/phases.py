"""Decompose BIPS trajectories into the proof's three phases.

The proof of Theorem 2 splits the growth of the infected set into:

* a **small-set phase** (Lemma 2): from ``|A_0| = 1`` to the boundary
  ``m = K log(n)/(1-λ)²``, budgeted ``13m/(1-λ) + 24C log(n)/(1-λ)²``
  rounds;
* a **mid phase** (Lemma 3): from the boundary to ``9n/10``, budgeted
  ``23 log(n)/(1-λ)`` rounds;
* an **endgame** (Lemma 4): from ``9n/10`` to full infection, budgeted
  ``8 log(n)/(1-λ)`` rounds.

:func:`split_phases` measures where a recorded trajectory actually
crosses those thresholds, so experiment E6 can report measured phase
durations against the lemmas' budgets.  The paper's constant
``K = 4000`` makes the boundary exceed ``n`` for any feasible
simulation size, so the experiment also reports a scaled-down boundary
(the *shape* of the decomposition) — flagged explicitly in the output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PhaseBreakdown:
    """Measured phase-crossing rounds of one infection trajectory.

    Attributes
    ----------
    boundary_size:
        The small/mid threshold used (``m``).
    mid_target:
        The mid/endgame threshold used (``⌈9n/10⌉`` by default).
    t_boundary:
        First round with ``|A_t| >= boundary_size`` (``None`` if never).
    t_mid:
        First round with ``|A_t| >= mid_target`` (``None`` if never).
    t_full:
        First round with ``|A_t| = n`` (``None`` if never).
    small_phase_rounds / mid_phase_rounds / endgame_rounds:
        Durations between consecutive crossings (``None`` when a
        crossing is missing).
    """

    boundary_size: float
    mid_target: float
    t_boundary: int | None
    t_mid: int | None
    t_full: int | None

    @property
    def small_phase_rounds(self) -> int | None:
        """Rounds to reach the small/mid boundary."""
        return self.t_boundary

    @property
    def mid_phase_rounds(self) -> int | None:
        """Rounds from the boundary to the mid target."""
        if self.t_boundary is None or self.t_mid is None:
            return None
        return self.t_mid - self.t_boundary

    @property
    def endgame_rounds(self) -> int | None:
        """Rounds from the mid target to full infection."""
        if self.t_mid is None or self.t_full is None:
            return None
        return self.t_full - self.t_mid


def split_phases(
    sizes: np.ndarray,
    n_vertices: int,
    boundary_size: float,
    *,
    mid_fraction: float = 0.9,
) -> PhaseBreakdown:
    """Locate the proof's phase crossings in a size trajectory.

    Parameters
    ----------
    sizes:
        ``|A_t|`` for ``t = 0, 1, 2, ...`` (index = round).
    n_vertices:
        The graph size `n`.
    boundary_size:
        The small/mid threshold ``m`` (e.g.
        :func:`repro.theory.bounds.phase_boundary_size`, possibly with a
        reduced constant for simulation-scale `n`).
    mid_fraction:
        The mid/endgame threshold as a fraction of `n` (paper: 9/10).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError(f"sizes must be a non-empty 1-D array, got shape {sizes.shape}")
    if not 0.0 < mid_fraction <= 1.0:
        raise ValueError(f"mid_fraction must be in (0, 1], got {mid_fraction}")
    mid_target = mid_fraction * n_vertices

    t_boundary = _first_crossing(sizes, boundary_size)
    t_mid = _first_crossing(sizes, mid_target)
    t_full = _first_crossing(sizes, n_vertices)
    return PhaseBreakdown(
        boundary_size=float(boundary_size),
        mid_target=float(mid_target),
        t_boundary=t_boundary,
        t_mid=t_mid,
        t_full=t_full,
    )


def _first_crossing(sizes: np.ndarray, threshold: float) -> int | None:
    hits = np.flatnonzero(sizes >= threshold)
    return int(hits[0]) if hits.size else None
