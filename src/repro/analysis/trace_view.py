"""Terminal-friendly rendering of process traces.

Turns a recorded :class:`~repro.core.process.Trace` into the
round-by-round view the quickstart example prints: active-set size,
cumulative coverage, and a proportional coverage bar per round.
"""

from __future__ import annotations

from repro.core.process import Trace


def render_coverage_bars(
    trace: Trace,
    n_vertices: int,
    *,
    width: int = 50,
    max_rows: int | None = None,
) -> str:
    """Round-by-round coverage view of a trace.

    Parameters
    ----------
    trace:
        A recorded trace (``run_process(..., record_trace=True)``).
    n_vertices:
        The graph size, for scaling the bars.
    width:
        Width in characters of a full (100% coverage) bar.
    max_rows:
        When given and the trace is longer, show the first and last
        ``max_rows // 2`` rounds with an elision marker between.
    """
    if n_vertices < 1:
        raise ValueError(f"n_vertices must be positive, got {n_vertices}")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    records = list(trace)
    if not records:
        return "(empty trace)"

    elided = False
    if max_rows is not None and len(records) > max_rows:
        head = max(max_rows // 2, 1)
        tail = max(max_rows - head, 1)
        records = records[:head] + records[-tail:]
        elide_after = head - 1
        elided = True

    digit_width = len(str(max(record.round_index for record in records)))
    count_width = len(str(n_vertices))
    lines = []
    for position, record in enumerate(records):
        bar = "#" * (width * record.cumulative_count // n_vertices)
        lines.append(
            f"t={str(record.round_index).rjust(digit_width)}  "
            f"active={str(record.active_count).rjust(count_width)}  "
            f"covered={str(record.cumulative_count).rjust(count_width)}  |{bar}"
        )
        if elided and position == elide_after:
            lines.append("  ..." + " " * 10 + f"({len(trace) - len(records)} rounds elided)")
    return "\n".join(lines)
