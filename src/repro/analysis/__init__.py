"""Statistics, curve fitting, phase decomposition, and rendering."""

from repro.analysis.ascii_plot import ascii_histogram, ascii_plot
from repro.analysis.comparison import (
    ComparisonResult,
    compare_completion_times,
    mann_whitney,
    welch_t_test,
)
from repro.analysis.fitting import (
    LinearFit,
    fit_linear,
    fit_log_linear,
    fit_power_law,
)
from repro.analysis.phases import PhaseBreakdown, split_phases
from repro.analysis.stats import (
    SummaryStats,
    bootstrap_ci,
    proportion_ci,
    summarize,
)
from repro.analysis.tables import Table
from repro.analysis.tails import (
    GeometricTailFit,
    empirical_survival,
    fit_geometric_tail,
    restart_expectation_bound,
)
from repro.analysis.trace_view import render_coverage_bars

__all__ = [
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "proportion_ci",
    "LinearFit",
    "fit_linear",
    "fit_log_linear",
    "fit_power_law",
    "PhaseBreakdown",
    "split_phases",
    "Table",
    "ascii_plot",
    "ascii_histogram",
    "GeometricTailFit",
    "empirical_survival",
    "fit_geometric_tail",
    "restart_expectation_bound",
    "render_coverage_bars",
    "ComparisonResult",
    "compare_completion_times",
    "welch_t_test",
    "mann_whitney",
]
