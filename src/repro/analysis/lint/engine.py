"""Rule-engine core: file walking, AST dispatch, suppressions, findings.

One :class:`Finding` per violation, anchored to ``path:line:column``
with the rule id and a fix hint.  Rules subclass :class:`Rule` and
declare the node types they dispatch on (:attr:`Rule.NODE_TYPES`);
whole-module rules override :meth:`Rule.check_module` instead.  Each
file is parsed once and walked once — every node is offered to exactly
the rules registered for its type, so adding a rule never adds a pass
over the tree.

Suppressions are inline comments::

    risky_call()  # repro: ignore[rule-id] -- one-line justification
    # repro: ignore[rule-a,rule-b] -- a standalone comment suppresses
    the_next_line()

A suppression names the rule ids it silences (``*`` silences every
rule on that line); findings anchored to a suppressed line are dropped
before reporting.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Iterable, Iterator, Mapping, Sequence

#: Directories never descended into when expanding path arguments.
_SKIPPED_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache", "node_modules"}
)

_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``identity()`` deliberately excludes the line/column so baseline
    entries survive unrelated edits above the finding; two findings
    with identical messages in one file are matched by multiplicity.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""

    def identity(self) -> tuple[str, str, str]:
        """Baseline-matching key: location-independent within a file."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-shaped form (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; missing anchors default to 0."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            column=int(data.get("column", 0)),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
        )

    def render(self) -> str:
        """One-line human-readable form."""
        text = f"{self.path}:{self.line}:{self.column} [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class FileContext:
    """Everything the rules know about one source file.

    ``imports`` maps local names to the dotted origin they were bound
    from (``np`` -> ``numpy``, ``default_rng`` ->
    ``numpy.random.default_rng``), which is what lets rules resolve
    attribute chains without executing the module.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def basename(self) -> str:
        """File name without directories (``_rng.py`` exemptions key on it)."""
        return self.path.name

    @property
    def in_library(self) -> bool:
        """Whether this file is part of the ``repro`` library tree.

        Library-only rules (determinism, spawn safety, error taxonomy)
        key on the canonical ``src/repro`` layout, which fixtures can
        reproduce under a temporary directory.
        """
        return "src/repro" in self.display_path.replace("\\", "/")

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` chain, or ``None``.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``"numpy.random.seed"``; unresolvable heads keep their literal
        spelling so rules can still match same-module names.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.imports.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment silences this finding's line."""
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return "*" in rules or finding.rule in rules


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`visit`
    for the node types in :attr:`NODE_TYPES`, and/or
    :meth:`check_module` for whole-file analyses (call graphs, class
    shape checks).  :meth:`applies` gates the rule per file — path
    scoping lives there, not inside the checks.
    """

    id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    hint: ClassVar[str] = ""
    NODE_TYPES: ClassVar[tuple[type, ...]] = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: always)."""
        return True

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Findings for one dispatched node (default: none)."""
        return iter(())

    def check_module(self, ctx: FileContext) -> Iterator[Finding]:
        """Findings from whole-module analysis (default: none)."""
        return iter(())

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """A :class:`Finding` anchored to ``node`` with this rule's id."""
        line = getattr(node, "lineno", 0)
        column = getattr(node, "col_offset", -1) + 1
        return Finding(
            rule=self.id,
            path=ctx.display_path,
            line=line,
            column=column,
            message=message,
            hint=self.hint if hint is None else hint,
        )


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of paths."""

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        """Whether no findings survived suppressions (and any baseline)."""
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped form, the ``--format json`` payload."""
        return {
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def iter_source_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, each exactly once, sorted.

    Directories are walked recursively (skipping VCS/cache dirs); file
    arguments are taken verbatim.  Sorting makes finding order — and
    therefore baselines and CI artifacts — independent of filesystem
    enumeration order.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIPPED_DIRS & set(part for part in candidate.parts))
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                yield candidate


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids silenced there.

    A comment suppresses its own line; a comment that *is* the whole
    line (a standalone suppression) additionally covers the next line,
    so multi-line statements can be annotated above their first line.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if not rules:
                continue
            line = token.start[0]
            suppressions.setdefault(line, set()).update(rules)
            standalone = token.line[: token.start[1]].strip() == ""
            if standalone:
                suppressions.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:
        pass
    return {line: frozenset(rules) for line, rules in suppressions.items()}


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from every import in the module."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


def build_context(path: Path, display_path: str | None = None) -> FileContext:
    """Parse one file into the context every rule receives.

    Raises :class:`SyntaxError` for unparseable sources; the engine
    turns that into a ``syntax`` finding rather than crashing the run.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        display_path=display_path if display_path is not None else path.as_posix(),
        source=source,
        tree=tree,
        imports=_collect_imports(tree),
        suppressions=_parse_suppressions(source),
    )


def _display_path(path: Path) -> str:
    """Repo-relative posix form when possible, else the given path."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, rules: Sequence[Rule], display_path: str | None = None) -> list[Finding]:
    """All unsuppressed findings of ``rules`` on one file."""
    shown = display_path if display_path is not None else _display_path(path)
    try:
        ctx = build_context(path, shown)
    except SyntaxError as error:
        return [
            Finding(
                rule="syntax",
                path=shown,
                line=error.lineno or 0,
                column=(error.offset or 1),
                message=f"file does not parse: {error.msg}",
                hint="repro lint only checks files the interpreter could import",
            )
        ]
    active = [rule for rule in rules if rule.applies(ctx)]
    if not active:
        return []
    dispatch: dict[type, list[Rule]] = {}
    for rule in active:
        for node_type in rule.NODE_TYPES:
            dispatch.setdefault(node_type, []).append(rule)

    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check_module(ctx))
    if dispatch:
        for node in ast.walk(ctx.tree):
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
    kept = [finding for finding in findings if not ctx.is_suppressed(finding)]
    kept.sort(key=lambda finding: (finding.line, finding.column, finding.rule))
    return kept


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Run ``rules`` (default: all registered) over ``paths``."""
    if rules is None:
        from repro.analysis.lint.rules import all_rules

        rules = all_rules()
    findings: list[Finding] = []
    files = 0
    for path in iter_source_files(paths):
        files += 1
        findings.extend(lint_file(path, rules))
    return LintReport(findings=tuple(findings), files_checked=files)
