"""Baseline files: grandfathered findings, tracked until paid down.

A baseline is a checked-in JSON list of findings that existed when a
rule was introduced.  ``repro lint --baseline FILE`` subtracts those
findings from the run (by location-independent identity, matched with
multiplicity, so an edit that *adds* a second identical violation in
the same file still fails), and reports baseline entries that no
longer occur so the file can be shrunk.  ``--update-baseline``
rewrites the file from the current findings.

The goal state of this repository is an **empty** baseline: every rule
shipped with its true violations fixed, so the file exists only as the
adoption mechanism for future rules.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.engine import Finding
from repro.errors import ReproError

#: Format marker; bumping invalidates (errors on) older baseline files.
BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> list[Finding]:
    """Findings recorded in a baseline file.

    A missing file is an error (a typoed ``--baseline`` must not
    silently lint against an empty baseline); malformed content raises
    :class:`~repro.errors.ReproError` naming the problem.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ReproError(f"cannot read lint baseline {path}: {error}") from None
    except ValueError as error:
        raise ReproError(f"lint baseline {path} is not valid JSON: {error}") from None
    if not isinstance(data, dict) or "findings" not in data:
        raise ReproError(
            f"lint baseline {path} must be an object with a 'findings' list"
        )
    if data.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"lint baseline {path} has schema {data.get('schema')!r}; "
            f"this build reads schema {BASELINE_SCHEMA} — regenerate with "
            f"--update-baseline"
        )
    findings = data["findings"]
    if not isinstance(findings, list):
        raise ReproError(f"lint baseline {path}: 'findings' must be a list")
    try:
        return [Finding.from_dict(entry) for entry in findings]
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"lint baseline {path} has a malformed entry: {error}") from None


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.rule, f.line, f.message))
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [finding.to_dict() for finding in ordered],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_against_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Partition a run's findings against a baseline.

    Returns ``(new, grandfathered, stale)``: findings not covered by
    the baseline, findings the baseline absorbs, and baseline entries
    that no longer occur (candidates for deletion).  Identities match
    with multiplicity: a baseline entry absorbs at most one finding.
    """
    budget = Counter(entry.identity() for entry in baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.identity()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale: list[Finding] = []
    remaining = Counter(budget)
    for entry in baseline:
        key = entry.identity()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            stale.append(entry)
    return new, grandfathered, stale
