"""``backend-purity``: shard kernels speak only the Backend vocabulary.

The batch engines run the same kernel source on every array backend
(NumPy reference, array-API/CuPy); that only holds while the kernels'
array work goes through the :class:`~repro.backends.Backend` protocol.
This rule statically enforces it for every module that defines shard
kernels (functions named ``_<process>_shard``):

* every attribute looked up on the conventional backend binding
  (``xp``) must be an operation the protocol actually declares — an
  op invented in a kernel exists only on whatever backend the author
  tested and crashes the others mid-shard;
* raw ``numpy`` use inside a *backend-portable* kernel — one that
  binds the protocol (references ``xp``) — is restricted to
  *host-side bookkeeping allocators* (``np.full``, ``np.zeros``,
  dtype names, ...): state evolution through ``np.`` would silently
  pin the kernel to the host and break device backends.  Kernels that
  never bind a backend (the event engine, the sparse-frontier path)
  are host-only by design and free to use numpy directly.

The protocol vocabulary is parsed from ``repro/backends/base.py``
itself, so extending the protocol automatically extends the rule.
"""

from __future__ import annotations

import ast
import re
from functools import lru_cache
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

_SHARD_NAME = re.compile(r"^_\w+_shard$")

#: Conventional local names bound to the resolved backend in kernels.
_BACKEND_BINDINGS = frozenset({"xp"})

#: Host-side numpy attributes kernels may touch: allocation and dtypes
#: for completion-time / replica-id bookkeeping that deliberately stays
#: on the host (documented in core/batch.py).  Anything else — gathers,
#: scatters, reductions, randomness — must go through the protocol.
_HOST_NUMPY_ALLOWED = frozenset(
    {
        "arange",
        "asarray",
        "bool_",
        "concatenate",
        "empty",
        "float64",
        "full",
        "int32",
        "int64",
        "ndarray",
        "pad",
        "uint64",
        "zeros",
        "zeros_like",
    }
)

#: Fallback vocabulary when the live protocol source is unavailable
#: (e.g. linting fixtures without repro importable); mirrors
#: repro/backends/base.py and is only consulted in that degraded mode.
_FALLBACK_VOCABULARY = frozenset(
    {
        "any_along_last", "any_scalar", "arange", "asarray", "bincount",
        "cumsum", "empty", "fill_false", "flatnonzero", "full",
        "graph_indices", "greater", "is_numpy", "max_scalar", "name",
        "or_at", "put_true", "random", "ravel", "repeat", "size", "spec",
        "sum_along_last", "take", "tile", "to_numpy", "uniform_draws",
        "zeros",
    }
)


@lru_cache(maxsize=1)
def backend_vocabulary() -> frozenset[str]:
    """Names the :class:`Backend` protocol declares, parsed from source.

    Reading the protocol file through ``importlib`` (not executing the
    kernels' module under analysis) keeps the rule in lockstep with
    the real vocabulary: adding an op to the protocol is all it takes
    to legalise it in kernels.
    """
    try:
        from importlib.util import find_spec

        spec = find_spec("repro.backends.base")
        if spec is None or spec.origin is None:
            return _FALLBACK_VOCABULARY
        tree = ast.parse(open(spec.origin, encoding="utf-8").read())
    except (OSError, SyntaxError, ValueError, ImportError):
        return _FALLBACK_VOCABULARY
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Backend":
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(item.name)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return frozenset(names) if names else _FALLBACK_VOCABULARY


def _called_names(tree: ast.AST) -> set[str]:
    """Bare names called anywhere under ``tree`` (module-local reachability)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


class BackendPurityRule(Rule):
    id = "backend-purity"
    title = "shard kernels restricted to the Backend protocol vocabulary"
    hint = (
        "route the operation through the Backend protocol (add it to "
        "backends/base.py and every backend) or keep it on host bookkeeping data"
    )
    NODE_TYPES: ClassVar[tuple[type, ...]] = ()

    def check_module(self, ctx: FileContext) -> Iterator[Finding]:
        definitions: dict[str, ast.AST] = {}
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                definitions[node.name] = node
        roots = [name for name in definitions if _SHARD_NAME.match(name)]
        if not roots:
            return
        # Transitive closure over module-local bare-name calls: helpers
        # and classes a kernel instantiates are part of the kernel.
        reachable: set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for called in _called_names(definitions[name]):
                if called in definitions and called not in reachable:
                    frontier.append(called)
        vocabulary = backend_vocabulary()
        numpy_names = frozenset(
            local
            for local, origin in ctx.imports.items()
            if origin == "numpy" or origin.startswith("numpy.")
        ) or frozenset({"np"})
        for name in sorted(reachable):
            yield from self._check_body(definitions[name], name, ctx, vocabulary, numpy_names)

    def _check_body(
        self,
        body: ast.AST,
        owner: str,
        ctx: FileContext,
        vocabulary: frozenset[str],
        numpy_names: frozenset[str],
    ) -> Iterator[Finding]:
        # A definition is backend-portable iff it binds the protocol
        # (references ``xp``); only then is raw numpy a purity breach.
        # Host-only kernels never mention xp and keep full numpy access.
        portable = any(
            isinstance(node, ast.Name) and node.id in _BACKEND_BINDINGS
            for node in ast.walk(body)
        )
        for node in ast.walk(body):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not isinstance(value, ast.Name):
                continue
            if value.id in _BACKEND_BINDINGS:
                if node.attr not in vocabulary:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} uses xp.{node.attr}, which the Backend "
                        "protocol does not declare: it would crash every "
                        "backend that is not the one it was written against",
                    )
            elif portable and value.id in numpy_names:
                if node.attr == "random":
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} reaches numpy randomness directly; kernels "
                        "must draw through the backend's host-seeded RNG hooks",
                        hint="use xp.random / xp.uniform_draws (host-drawn by contract)",
                    )
                elif node.attr not in _HOST_NUMPY_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} evolves state through raw np.{node.attr}; "
                        "kernel array work must go through the Backend "
                        "vocabulary so device backends run the same source",
                    )
