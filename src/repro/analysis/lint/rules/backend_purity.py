"""``backend-purity``: shard kernels speak only the Backend vocabulary.

The batch engines run the same kernel source on every array backend
(NumPy reference, array-API/CuPy); that only holds while the kernels'
array work goes through the :class:`~repro.backends.Backend` protocol.
This rule statically enforces it for every module that defines shard
kernels (functions named ``_<process>_shard``):

* every attribute looked up on the conventional backend binding
  (``xp``) must be an operation the protocol actually declares — an
  op invented in a kernel exists only on whatever backend the author
  tested and crashes the others mid-shard;
* raw ``numpy`` use inside a *backend-portable* kernel — one that
  binds the protocol (references ``xp``) — is restricted to
  *host-side bookkeeping allocators* (``np.full``, ``np.zeros``,
  dtype names, ...): state evolution through ``np.`` would silently
  pin the kernel to the host and break device backends.  Kernels that
  never bind a backend (the event engine, the sparse-frontier path)
  are host-only by design and free to use numpy directly.

The compiled tier gets its own purity contract: a function decorated
``@njit`` (the Numba kernels in :mod:`repro.core.compiled`) may touch
numpy only through a small allowlist of numba-supported constructors
and dtypes, and may never reach ``np.random`` — randomness is
host-drawn by the seed contract, and a generator inside a jitted
kernel would be numba's own stream, silently breaking bit-identity
with the reference kernels.  Anything outside the allowlist is flagged
even when numba would accept it at compile time: the pure-Python
fallback runs the same source, so the kernels must stay within the
vocabulary both implementations support bit-identically.

The protocol vocabulary is parsed from ``repro/backends/base.py``
itself, so extending the protocol automatically extends the rule.
"""

from __future__ import annotations

import ast
import re
from functools import lru_cache
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

_SHARD_NAME = re.compile(r"^_\w+_shard$")

#: Conventional local names bound to the resolved backend in kernels.
_BACKEND_BINDINGS = frozenset({"xp"})

#: Host-side numpy attributes kernels may touch: allocation and dtypes
#: for completion-time / replica-id bookkeeping that deliberately stays
#: on the host (documented in core/batch.py).  Anything else — gathers,
#: scatters, reductions, randomness — must go through the protocol.
_HOST_NUMPY_ALLOWED = frozenset(
    {
        "arange",
        "asarray",
        "bool_",
        "concatenate",
        "empty",
        "float64",
        "full",
        "int32",
        "int64",
        "ndarray",
        "pad",
        "uint64",
        "zeros",
        "zeros_like",
    }
)

#: Decorator names that mark a function as a compiled (Numba) kernel.
_NJIT_DECORATORS = frozenset({"njit", "jit"})

#: Numpy attributes allowed inside ``@njit`` kernels: constructors and
#: dtype names numba supports in nopython mode *and* that behave
#: identically under the pure-Python fallback.  Gathers, reductions,
#: sorting, and randomness stay out — jitted kernels do that work with
#: explicit loops (that is their whole point), and ``np.random`` would
#: bypass the host-drawn seed contract entirely.
_NJIT_NUMPY_ALLOWED = frozenset(
    {
        "arange",
        "bool_",
        "empty",
        "empty_like",
        "float64",
        "full",
        "int32",
        "int64",
        "intp",
        "uint64",
        "zeros",
        "zeros_like",
    }
)

#: Fallback vocabulary when the live protocol source is unavailable
#: (e.g. linting fixtures without repro importable); mirrors
#: repro/backends/base.py and is only consulted in that degraded mode.
_FALLBACK_VOCABULARY = frozenset(
    {
        "any_along_last", "any_scalar", "arange", "asarray", "bincount",
        "cumsum", "empty", "fill_false", "flatnonzero", "full",
        "graph_indices", "greater", "is_numpy", "max_scalar", "name",
        "or_at", "put_true", "random", "ravel", "repeat", "size", "spec",
        "sum_along_last", "take", "tile", "to_numpy", "uniform_draws",
        "zeros",
    }
)


@lru_cache(maxsize=1)
def backend_vocabulary() -> frozenset[str]:
    """Names the :class:`Backend` protocol declares, parsed from source.

    Reading the protocol file through ``importlib`` (not executing the
    kernels' module under analysis) keeps the rule in lockstep with
    the real vocabulary: adding an op to the protocol is all it takes
    to legalise it in kernels.
    """
    try:
        from importlib.util import find_spec

        spec = find_spec("repro.backends.base")
        if spec is None or spec.origin is None:
            return _FALLBACK_VOCABULARY
        tree = ast.parse(open(spec.origin, encoding="utf-8").read())
    except (OSError, SyntaxError, ValueError, ImportError):
        return _FALLBACK_VOCABULARY
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Backend":
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(item.name)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return frozenset(names) if names else _FALLBACK_VOCABULARY


def _is_njit_decorated(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether a function carries ``@njit`` / ``@numba.njit`` (any call form)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in _NJIT_DECORATORS:
            return True
        if isinstance(target, ast.Attribute) and target.attr in _NJIT_DECORATORS:
            return True
    return False


def _called_names(tree: ast.AST) -> set[str]:
    """Bare names called anywhere under ``tree`` (module-local reachability)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


class BackendPurityRule(Rule):
    id = "backend-purity"
    title = "shard kernels restricted to the Backend protocol vocabulary"
    hint = (
        "route the operation through the Backend protocol (add it to "
        "backends/base.py and every backend) or keep it on host bookkeeping data"
    )
    NODE_TYPES: ClassVar[tuple[type, ...]] = ()

    def check_module(self, ctx: FileContext) -> Iterator[Finding]:
        numpy_names = frozenset(
            local
            for local, origin in ctx.imports.items()
            if origin == "numpy" or origin.startswith("numpy.")
        ) or frozenset({"np"})
        # Compiled-kernel purity applies to every @njit function in the
        # module, shard or not (round kernels and serial helpers alike).
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_njit_decorated(node):
                    yield from self._check_njit_body(node, ctx, numpy_names)
        definitions: dict[str, ast.AST] = {}
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                definitions[node.name] = node
        roots = [name for name in definitions if _SHARD_NAME.match(name)]
        if not roots:
            return
        # Transitive closure over module-local bare-name calls: helpers
        # and classes a kernel instantiates are part of the kernel.
        reachable: set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for called in _called_names(definitions[name]):
                if called in definitions and called not in reachable:
                    frontier.append(called)
        vocabulary = backend_vocabulary()
        for name in sorted(reachable):
            yield from self._check_body(definitions[name], name, ctx, vocabulary, numpy_names)

    def _check_njit_body(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
        numpy_names: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not isinstance(value, ast.Name) or value.id not in numpy_names:
                continue
            if node.attr == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"@njit kernel {function.name} reaches numpy randomness; "
                    "all draws are host-side by the seed contract — a "
                    "generator inside a jitted kernel is numba's own stream "
                    "and silently breaks bit-identity with the reference",
                    hint="draw on the host and pass the words/picks arrays in",
                )
            elif node.attr not in _NJIT_NUMPY_ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"@njit kernel {function.name} calls np.{node.attr}, "
                    "outside the numba-supported kernel allowlist; use an "
                    "explicit loop (or extend _NJIT_NUMPY_ALLOWED if the op "
                    "is supported bit-identically by numba and the fallback)",
                )

    def _check_body(
        self,
        body: ast.AST,
        owner: str,
        ctx: FileContext,
        vocabulary: frozenset[str],
        numpy_names: frozenset[str],
    ) -> Iterator[Finding]:
        # A definition is backend-portable iff it binds the protocol
        # (references ``xp``); only then is raw numpy a purity breach.
        # Host-only kernels never mention xp and keep full numpy access.
        portable = any(
            isinstance(node, ast.Name) and node.id in _BACKEND_BINDINGS
            for node in ast.walk(body)
        )
        for node in ast.walk(body):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not isinstance(value, ast.Name):
                continue
            if value.id in _BACKEND_BINDINGS:
                if node.attr not in vocabulary:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} uses xp.{node.attr}, which the Backend "
                        "protocol does not declare: it would crash every "
                        "backend that is not the one it was written against",
                    )
            elif portable and value.id in numpy_names:
                if node.attr == "random":
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} reaches numpy randomness directly; kernels "
                        "must draw through the backend's host-seeded RNG hooks",
                        hint="use xp.random / xp.uniform_draws (host-drawn by contract)",
                    )
                elif node.attr not in _HOST_NUMPY_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner} evolves state through raw np.{node.attr}; "
                        "kernel array work must go through the Backend "
                        "vocabulary so device backends run the same source",
                    )
