"""The repository's rule set, one module per invariant family.

=================  ==========================================================
rule id            invariant
=================  ==========================================================
rng-discipline     all randomness flows through seeded NumPy generators
determinism        no iteration-order or wall-clock nondeterminism in repro
backend-purity     batch kernels speak only the ``Backend`` op vocabulary
cache-identity     workload fields and spec versions cover the cache key
spawn-safety       pool workers get picklable, closure-free callables
error-taxonomy     no over-broad handlers that swallow without classifying
=================  ==========================================================
"""

from __future__ import annotations

from repro.analysis.lint.engine import Rule
from repro.analysis.lint.rules.backend_purity import BackendPurityRule
from repro.analysis.lint.rules.cache_identity import CacheIdentityRule
from repro.analysis.lint.rules.determinism import DeterminismRule
from repro.analysis.lint.rules.error_taxonomy import ErrorTaxonomyRule
from repro.analysis.lint.rules.rng import RngDisciplineRule
from repro.analysis.lint.rules.spawn_safety import SpawnSafetyRule

#: Registration order is presentation order in ``--list-rules``.
_RULE_TYPES: tuple[type[Rule], ...] = (
    RngDisciplineRule,
    DeterminismRule,
    BackendPurityRule,
    CacheIdentityRule,
    SpawnSafetyRule,
    ErrorTaxonomyRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [rule_type() for rule_type in _RULE_TYPES]


def rules_by_id() -> dict[str, Rule]:
    """Registered rules keyed by id (the ``--rules`` selector)."""
    return {rule.id: rule for rule in all_rules()}


__all__ = [
    "BackendPurityRule",
    "CacheIdentityRule",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "RngDisciplineRule",
    "SpawnSafetyRule",
    "all_rules",
    "rules_by_id",
]
