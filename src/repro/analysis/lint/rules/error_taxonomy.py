"""``error-taxonomy``: no handler swallows errors it cannot classify.

The resilience layer (:mod:`repro.resilience`) only works because
every failure keeps its type: ``is_transient`` classifies by error
class, campaigns record ``error_type`` in manifests, and retries
decide by taxonomy.  An ``except Exception`` that swallows breaks the
chain — a terminal configuration error masquerades as success, or a
transient fault never reaches the retry policy.

The rule flags, in library code:

* bare ``except:`` — always (it also eats ``KeyboardInterrupt`` and
  ``SystemExit``);
* ``except Exception`` / ``except BaseException`` handlers that
  neither re-``raise`` nor *use* the caught error (passing it to a
  classifier, recorder, or message keeps the taxonomy alive).

Deliberate best-effort handlers (cleanup paths, probe-and-degrade)
carry an inline ``# repro: ignore[error-taxonomy]`` with their
justification.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

_BROAD = frozenset({"Exception", "BaseException"})


def _exception_names(annotation: ast.AST) -> list[str]:
    """Exception class names an ``except`` clause matches on."""
    nodes = annotation.elts if isinstance(annotation, ast.Tuple) else [annotation]
    names: list[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


class ErrorTaxonomyRule(Rule):
    id = "error-taxonomy"
    title = "broad handlers must re-raise or classify, never swallow"
    hint = (
        "narrow the exception types, consult repro.resilience.is_transient, "
        "re-raise a ReproError subclass, or record the error before moving on"
    )
    NODE_TYPES: ClassVar[tuple[type, ...]] = (ast.ExceptHandler,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_library

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except: catches KeyboardInterrupt and SystemExit too, "
                "and erases the error taxonomy the retry layer classifies by",
            )
            return
        broad = [name for name in _exception_names(node.type) if name in _BROAD]
        if not broad:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return
            if (
                node.name is not None
                and isinstance(child, ast.Name)
                and child.id == node.name
                and isinstance(child.ctx, ast.Load)
            ):
                # The error object flows somewhere (classifier, record,
                # message): the taxonomy survives.
                return
        yield self.finding(
            ctx,
            node,
            f"except {' / '.join(broad)} swallows the error without re-raise "
            "or classification: terminal and transient failures become "
            "indistinguishable",
        )
