"""``determinism``: no ordering or wall-clock nondeterminism in repro.

Two hazard families, both scoped to the library tree (``src/repro``):

* **Unordered iteration.**  ``set``/``frozenset`` iteration order
  varies with hash seeding across processes, and ``os.listdir`` /
  ``Path.glob`` / ``iterdir`` order varies with the filesystem.  Any
  of them feeding a loop makes manifests, caches, or sampled streams
  host-dependent; wrap the iterable in ``sorted(...)``.  Iterables
  consumed by an order-insensitive reduction (``sorted``, ``sum``,
  ``any``, ``min``, ...) — including through a comprehension directly
  inside one — are exempt: the enumeration order cannot escape.
* **Wall-clock reads.**  ``time.time()`` and ``datetime.now()`` values
  leaking into results or cache keys make identical runs differ.
  Durations belong to ``time.perf_counter()``/``time.monotonic()``,
  which the rule deliberately allows.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

#: Methods returning filesystem-enumeration-ordered iterables.
_FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Functions returning filesystem-enumeration-ordered iterables.
_FS_FUNCTIONS = frozenset({"os.listdir", "os.scandir"})

#: Wall-clock reads whose values must not feed result or key paths.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Builtins whose result is independent of their argument's order, so
#: an unordered iterable flowing straight into one is harmless.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "len", "any", "all", "min", "max", "set", "frozenset"}
)


def _blessed_nodes(tree: ast.AST) -> set[int]:
    """``id()``s of iterable expressions consumed order-insensitively.

    ``sorted(path.glob(...))`` blesses the ``.glob`` call itself;
    ``sorted(f(p) for p in path.glob(...))`` blesses the generator's
    ``iter`` — the comprehension is evaluated *inside* the reduction,
    so its enumeration order never escapes either.
    """
    blessed: set[int] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
            and node.args
        ):
            continue
        argument = node.args[0]
        blessed.add(id(argument))
        if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for generator in argument.generators:
                blessed.add(id(generator.iter))
    return blessed


class DeterminismRule(Rule):
    id = "determinism"
    title = "no unordered iteration or wall-clock reads in the library"
    hint = "wrap the iterable in sorted(...); use perf_counter/monotonic for durations"
    NODE_TYPES: ClassVar[tuple[type, ...]] = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_library

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved in _WALL_CLOCK:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {resolved}(): two identical runs observe "
                "different values",
                hint=(
                    "use time.perf_counter()/time.monotonic() for durations; "
                    "keep wall-clock values out of results and cache keys"
                ),
            )

    def check_module(self, ctx: FileContext) -> Iterator[Finding]:
        blessed = _blessed_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            iterables: list[ast.AST] = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
                iterables.extend(generator.iter for generator in node.generators)
            for iterable in iterables:
                if id(iterable) not in blessed:
                    yield from self._check_iterable(iterable, ctx)

    def _check_iterable(self, iterable: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                ctx,
                iterable,
                "iteration over a set literal: order varies with hash seeding",
                hint="iterate sorted(...) so the order is value-determined",
            )
            return
        if not isinstance(iterable, ast.Call):
            return
        func = iterable.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            yield self.finding(
                ctx,
                iterable,
                f"iteration over {func.id}(...): order varies with hash seeding",
                hint="iterate sorted(...) so the order is value-determined",
            )
            return
        resolved = ctx.resolve(func)
        if resolved in _FS_FUNCTIONS:
            yield self.finding(
                ctx,
                iterable,
                f"iteration over {resolved}(): order follows filesystem "
                "enumeration, which differs across hosts",
                hint="iterate sorted(...) so the order is path-determined",
            )
            return
        if isinstance(func, ast.Attribute) and func.attr in _FS_METHODS:
            yield self.finding(
                ctx,
                iterable,
                f"iteration over .{func.attr}(...): order follows filesystem "
                "enumeration, which differs across hosts",
                hint="iterate sorted(...) so the order is path-determined",
            )
