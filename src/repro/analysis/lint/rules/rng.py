"""``rng-discipline``: every stochastic call is seedable and seeded.

The reproduction's numbers are only claims because every RNG stream
derives from one master seed through ``SeedSequence.spawn``
(:mod:`repro._rng`).  Three spellings silently break that:

* legacy module-level NumPy randomness (``np.random.seed``,
  ``np.random.rand``, ...) — hidden global state, shared across every
  caller in the process;
* the stdlib :mod:`random` module — same global-state problem, and a
  different bit stream from the NumPy generators the kernels use;
* ``default_rng()`` with no seed (or an explicit ``None``) — fresh OS
  entropy per call, unreproducible by construction.

``src/repro/_rng.py`` is the one module allowed to construct
generators from possibly-``None`` seeds: that is its documented job.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

#: ``numpy.random`` attributes that are legitimate to *call*: generator
#: construction, not draws from the hidden global stream.
_ALLOWED_NP_RANDOM_CALLS = frozenset({"default_rng"})

#: The module whose job is turning possibly-unseeded values into
#: generators (the documented OS-entropy entry point).
_RNG_MODULE_BASENAME = "_rng.py"


class RngDisciplineRule(Rule):
    id = "rng-discipline"
    title = "randomness must flow through seeded NumPy generators"
    hint = (
        "derive a generator from the run's seed via repro._rng "
        "(ensure_generator / spawn_generators) instead"
    )
    NODE_TYPES: ClassVar[tuple[type, ...]] = (ast.Call, ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib 'random' imported: its global state is unseedable "
                        "per-run and its stream differs from the NumPy generators",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib 'random' imported: its global state is unseedable "
                    "per-run and its stream differs from the NumPy generators",
                )
            return
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        yield from self._check_call(node, resolved, ctx)

    def _check_call(
        self, node: ast.Call, resolved: str, ctx: FileContext
    ) -> Iterator[Finding]:
        parts = resolved.split(".")
        # numpy.random.<lowercase sampler>(...) — the legacy global stream.
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2][:1].islower()
            and parts[2] not in _ALLOWED_NP_RANDOM_CALLS
        ):
            yield self.finding(
                ctx,
                node,
                f"legacy global-state numpy randomness: np.random.{parts[2]}() "
                "draws from (or reseeds) hidden process-wide state",
            )
            return
        # stdlib random.<fn>(...) call sites (the import is also flagged).
        if parts[0] == "random" and len(parts) == 2:
            yield self.finding(
                ctx,
                node,
                f"stdlib randomness random.{parts[1]}() bypasses the seeded "
                "NumPy generator streams",
            )
            return
        if resolved == "numpy.random.default_rng":
            if ctx.basename == _RNG_MODULE_BASENAME:
                return
            unseeded = not node.args and not node.keywords
            if not unseeded and node.args:
                first = node.args[0]
                unseeded = isinstance(first, ast.Constant) and first.value is None
            if unseeded:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed draws fresh OS entropy: "
                    "the run cannot be reproduced",
                )
