"""``spawn-safety``: pool workers get picklable, closure-free callables.

Everything crossing a process boundary under the ``spawn`` start
method travels by pickle.  Two patterns work under ``fork`` (Linux
default) and then break — or worse, silently diverge — on spawn
platforms and in the CI spawn job:

* **Lambdas / nested functions handed to pool entry points.**  They do
  not pickle; and a closure can smuggle a ``Graph`` into every task
  payload, bypassing the ``SharedGraph`` / ``ships_compactly``
  zero-copy shipping the batch layer guarantees.  Worker callables
  must be module-level functions referenced by name.
* **Module-global writes inside worker-executed functions.**  Under
  spawn each worker owns its own module globals, so a rebind in a
  worker never reaches the parent (and vice versa): state that looks
  shared quietly forks per process.

Worker-executed functions are identified statically: anything passed
to the repro pool seams (``map_shards`` / ``imap_shards`` /
``iter_resilient``), to ``multiprocessing`` dispatch methods
(``apply_async`` / ``imap`` / ``imap_unordered``), or as a pool
``initializer=``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule

#: repro's own pool seams: first positional argument runs in workers.
_POOL_SEAMS = frozenset({"map_shards", "imap_shards", "iter_resilient"})

#: multiprocessing.Pool dispatch methods with a worker callable first.
_POOL_METHODS = frozenset({"apply_async", "imap", "imap_unordered"})


def _callable_positions(node: ast.Call) -> list[ast.AST]:
    """Expressions in ``node`` that will execute inside pool workers."""
    positions: list[ast.AST] = []
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in _POOL_SEAMS or name in _POOL_METHODS:
        if node.args:
            positions.append(node.args[0])
        for keyword in node.keywords:
            if keyword.arg == "kernel":
                positions.append(keyword.value)
    for keyword in node.keywords:
        if keyword.arg == "initializer":
            positions.append(keyword.value)
    return positions


class SpawnSafetyRule(Rule):
    id = "spawn-safety"
    title = "worker callables must pickle; workers must not write globals"
    hint = (
        "pass a module-level function by name; ship graphs through the "
        "SharedGraph / ships_compactly seam, not a closure"
    )
    NODE_TYPES: ClassVar[tuple[type, ...]] = ()

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_library

    def check_module(self, ctx: FileContext) -> Iterator[Finding]:
        module_defs: dict[str, ast.AST] = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested_defs: set[str] = set()
        for name, definition in module_defs.items():
            for node in ast.walk(definition):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not definition
                ):
                    nested_defs.add(node.name)
        nested_defs -= set(module_defs)

        worker_functions: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for candidate in _callable_positions(node):
                if isinstance(candidate, ast.Lambda):
                    yield self.finding(
                        ctx,
                        candidate,
                        "lambda passed to a pool seam: lambdas do not pickle "
                        "under spawn, and a closure bypasses SharedGraph "
                        "shipping for anything it captures",
                    )
                elif isinstance(candidate, ast.Name):
                    if candidate.id in nested_defs:
                        yield self.finding(
                            ctx,
                            candidate,
                            f"nested function {candidate.id!r} passed to a pool "
                            "seam: nested defs do not pickle under spawn; hoist "
                            "it to module level",
                        )
                    elif candidate.id in module_defs:
                        worker_functions.add(candidate.id)

        for name in sorted(worker_functions):
            for node in ast.walk(module_defs[name]):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker function {name!r} rebinds module global(s) "
                        f"{', '.join(node.names)}: under spawn each worker owns "
                        "its own module state, so the write never reaches the "
                        "parent process",
                        hint=(
                            "return the value to the parent, or ship state "
                            "through the task context tuple"
                        ),
                    )
