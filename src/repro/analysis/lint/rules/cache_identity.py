"""``cache-identity``: everything a run computes from is in its key.

A cache hit must be indistinguishable from a recomputation.  Two
structural properties carry that guarantee and both are checkable
statically:

* **Workload field coverage.**  Every field declared on a ``Workload``
  dataclass must have a ``FieldSpec`` in its ``FIELDS`` mapping —
  that mapping drives coercion *and* the ``to_dict`` serialisation
  that becomes the cache identity of bespoke workloads.  A field
  missing from ``FIELDS`` would crash at construction, but only when
  that workload is first built; the rule reports it at definition
  time.  (``Workload.to_dict`` iterates dataclass fields, so FIELDS
  coverage is exactly serialisation coverage.)
* **Explicit spec versions.**  ``ExperimentSpec`` is part of every
  result-cache key, and its ``version`` is the knob that invalidates
  cached results when a methodology changes.  A spec relying on the
  implicit default can be "bumped" by editing the default — silently
  invalidating every other experiment's cache — so experiment modules
  must pin ``version=`` explicitly.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule


def _is_classvar(annotation: ast.AST) -> bool:
    """Whether an annotation is ``ClassVar[...]`` (not a workload field)."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "ClassVar"
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar"


def _base_names(class_def: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


class CacheIdentityRule(Rule):
    id = "cache-identity"
    title = "workload fields and spec versions must cover the cache key"
    hint = "see repro.scenarios.base (FIELDS) and repro.experiments.spec (version)"
    NODE_TYPES: ClassVar[tuple[type, ...]] = (ast.ClassDef, ast.Call)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_library

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            if "Workload" in _base_names(node):
                yield from self._check_workload(node, ctx)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "ExperimentSpec":
            if not any(keyword.arg == "version" for keyword in node.keywords):
                yield self.finding(
                    ctx,
                    node,
                    "ExperimentSpec without an explicit version=: the version "
                    "is part of every result-cache key, so it must be pinned "
                    "where the methodology lives, not inherited from a default",
                    hint='add version="1" (the current default) or the real revision',
                )

    def _check_workload(self, node: ast.ClassDef, ctx: FileContext) -> Iterator[Finding]:
        declared: list[str] = []
        fields_keys: list[str] | None = None
        fields_node: ast.AST = node
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                if _is_classvar(item.annotation):
                    if item.target.id == "FIELDS" and isinstance(item.value, ast.Dict):
                        fields_node = item
                        fields_keys = [
                            key.value
                            for key in item.value.keys
                            if isinstance(key, ast.Constant) and isinstance(key.value, str)
                        ]
                else:
                    declared.append(item.target.id)
            elif isinstance(item, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "FIELDS"
                for target in item.targets
            ):
                if isinstance(item.value, ast.Dict):
                    fields_node = item
                    fields_keys = [
                        key.value
                        for key in item.value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ]
        if fields_keys is None:
            yield self.finding(
                ctx,
                node,
                f"workload {node.name} declares no FIELDS mapping: fields "
                "without a FieldSpec are neither coerced nor serialised into "
                "the cache identity",
            )
            return
        missing = sorted(set(declared) - set(fields_keys))
        extra = sorted(set(fields_keys) - set(declared))
        if missing:
            yield self.finding(
                ctx,
                fields_node,
                f"workload {node.name} fields {missing} have no FieldSpec in "
                "FIELDS: they would be silently absent from coercion and "
                "crash construction",
            )
        if extra:
            yield self.finding(
                ctx,
                fields_node,
                f"workload {node.name} FIELDS entries {extra} name no declared "
                "field: stale spec entries mask missing coverage",
            )
