"""``repro lint``: static enforcement of the repository's invariants.

The reproduction's claims rest on invariants the dynamic test suite can
only probe — seed-stable RNG streams, cache keys that cover every
parameter, kernels restricted to the :class:`~repro.backends.Backend`
vocabulary, spawn-safe worker plumbing.  The rule engine here checks
them *statically*: every rule is an AST visitor producing
:class:`~repro.analysis.lint.engine.Finding` records with a stable rule
id, a file:line anchor, and a fix hint.

Violations that are deliberate carry an inline suppression::

    horizon = time.time()  # repro: ignore[determinism] -- GC horizon

and grandfathered findings can live in a JSON baseline (see
:mod:`~repro.analysis.lint.baseline`) until they are paid down.

Run it as ``cobra-repro lint [paths] [--format json|text]``; the
process exits 0 when clean, 2 when findings remain.
"""

from repro.analysis.lint.baseline import (
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    iter_source_files,
    lint_paths,
)
from repro.analysis.lint.rules import all_rules, rules_by_id

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "iter_source_files",
    "lint_paths",
    "load_baseline",
    "rules_by_id",
    "save_baseline",
    "split_against_baseline",
]
