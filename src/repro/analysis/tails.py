"""Tail analysis for the paper's "with high probability" claims.

Theorems 1–3 assert their round counts both in expectation and w.h.p.
(failure probability ``n^{-c}``).  The mechanism behind the w.h.p.
statements is the restart argument of Eq. (1): if one window of ``T``
rounds fails with probability ``q``, independent restarts give
``P(cov > j·T) <= q^j`` — a geometric tail.  The helpers here measure
that tail from completion-time samples:

* :func:`empirical_survival` — the empirical survival function
  ``t ↦ P̂(X > t)``;
* :func:`fit_geometric_tail` — a log-linear fit of the survival
  function beyond the median, returning the per-round decay rate;
* :func:`restart_expectation_bound` — Eq. (1)'s closed form
  ``E[X] <= T / (1 - q)²`` for window ``T`` and failure rate ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.fitting import LinearFit, fit_linear


def empirical_survival(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical survival function of an integer sample.

    Returns ``(values, survival)`` where ``survival[i] = P̂(X > values[i])``,
    for every distinct sample value in increasing order.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError(f"expected a non-empty 1-D sample, got shape {samples.shape}")
    values = np.unique(samples)
    survival = np.array([(samples > value).mean() for value in values])
    return values, survival


@dataclass(frozen=True)
class GeometricTailFit:
    """Result of fitting ``P(X > t) ≈ C · rate^t`` beyond a threshold.

    Attributes
    ----------
    rate:
        Per-round decay multiplier in ``(0, 1)`` (smaller = faster
        decay); ``exp(slope)`` of the log-survival fit.
    log_fit:
        The underlying linear fit of ``log P(X > t)`` against ``t``.
    threshold:
        Tail threshold used (fit restricted to ``t >= threshold``).
    n_tail_points:
        Number of distinct survival points in the fitted region.
    """

    rate: float
    log_fit: LinearFit
    threshold: float
    n_tail_points: int

    @property
    def halving_time(self) -> float:
        """Rounds for the tail probability to halve."""
        return float(np.log(0.5) / np.log(self.rate))


def fit_geometric_tail(
    samples: np.ndarray, *, threshold_quantile: float = 0.5
) -> GeometricTailFit:
    """Fit a geometric decay to the upper tail of a completion-time sample.

    The survival function is computed empirically, restricted to values
    at or above the given quantile (and with survival > 0), and
    ``log P(X > t)`` is regressed on ``t``.  A restart-style process
    (Eq. (1)) produces a straight line; the returned ``rate`` is the
    measured per-round failure decay.
    """
    if not 0.0 <= threshold_quantile < 1.0:
        raise ValueError(f"threshold_quantile must be in [0, 1), got {threshold_quantile}")
    samples = np.asarray(samples, dtype=np.float64)
    values, survival = empirical_survival(samples)
    threshold = float(np.quantile(samples, threshold_quantile))
    keep = (values >= threshold) & (survival > 0)
    if keep.sum() < 3:
        raise ValueError(
            f"only {int(keep.sum())} tail points above quantile {threshold_quantile}; "
            "need at least 3 (collect more samples or lower the threshold)"
        )
    fit = fit_linear(values[keep], np.log(survival[keep]))
    rate = float(np.exp(fit.slope))
    if not 0.0 < rate < 1.0:
        raise ValueError(
            f"fitted tail rate {rate:.3f} is not in (0, 1): "
            "the sample's tail is not decaying"
        )
    return GeometricTailFit(
        rate=rate,
        log_fit=fit,
        threshold=threshold,
        n_tail_points=int(keep.sum()),
    )


def restart_expectation_bound(window: float, failure_probability: float) -> float:
    """Eq. (1)'s expectation bound for a restartable process.

    If each window of ``T = window`` rounds completes with probability
    ``1 - q``, then ``E[X] <= Σ_j q^j (j+1) T = T / (1 - q)²``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not 0.0 <= failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must be in [0, 1), got {failure_probability}"
        )
    return window / (1.0 - failure_probability) ** 2
