"""Two-sample statistical comparisons for process measurements.

"Protocol A is faster than protocol B" claims in the experiments are
means over finite ensembles; these helpers attach significance to such
comparisons.  Both the parametric route (Welch's t-test — unequal
variances, the normal case for completion times at these ensemble
sizes) and the non-parametric route (Mann–Whitney U — no distributional
assumption, right choice for skewed tails) are provided, wrapped in a
plain-language verdict object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing sample A against sample B.

    ``direction`` is ``"A < B"``, ``"A > B"`` or ``"inconclusive"``
    at the requested significance level; ``p_value`` is two-sided.
    The direction's location measure matches the test: means for
    Welch's t, medians for Mann–Whitney (rank-based verdicts must not
    be flipped by outliers the test itself ignores).
    """

    statistic: float
    p_value: float
    mean_a: float
    mean_b: float
    direction: str
    method: str

    @property
    def significant(self) -> bool:
        """Whether the two samples differ at the level used."""
        return self.direction != "inconclusive"

    def __str__(self) -> str:
        return (
            f"{self.method}: mean_a={self.mean_a:.3f} mean_b={self.mean_b:.3f} "
            f"p={self.p_value:.2e} -> {self.direction}"
        )


def _as_samples(a: Sequence[float], b: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    a_array = np.asarray(a, dtype=np.float64)
    b_array = np.asarray(b, dtype=np.float64)
    if a_array.ndim != 1 or b_array.ndim != 1 or a_array.size < 2 or b_array.size < 2:
        raise ValueError("both samples must be 1-D with at least two values")
    return a_array, b_array


def _verdict(location_a: float, location_b: float, p_value: float, alpha: float) -> str:
    if p_value >= alpha:
        return "inconclusive"
    return "A < B" if location_a < location_b else "A > B"


def welch_t_test(
    a: Sequence[float], b: Sequence[float], *, alpha: float = 0.05
) -> ComparisonResult:
    """Welch's unequal-variance t-test (two-sided)."""
    from scipy import stats

    a_array, b_array = _as_samples(a, b)
    statistic, p_value = stats.ttest_ind(a_array, b_array, equal_var=False)
    mean_a, mean_b = float(a_array.mean()), float(b_array.mean())
    return ComparisonResult(
        statistic=float(statistic),
        p_value=float(p_value),
        mean_a=mean_a,
        mean_b=mean_b,
        direction=_verdict(mean_a, mean_b, float(p_value), alpha),
        method="welch-t",
    )


def mann_whitney(
    a: Sequence[float], b: Sequence[float], *, alpha: float = 0.05
) -> ComparisonResult:
    """Mann–Whitney U test (two-sided), robust to skew and outliers."""
    from scipy import stats

    a_array, b_array = _as_samples(a, b)
    statistic, p_value = stats.mannwhitneyu(a_array, b_array, alternative="two-sided")
    return ComparisonResult(
        statistic=float(statistic),
        p_value=float(p_value),
        mean_a=float(a_array.mean()),
        mean_b=float(b_array.mean()),
        direction=_verdict(
            float(np.median(a_array)), float(np.median(b_array)), float(p_value), alpha
        ),
        method="mann-whitney",
    )


def compare_completion_times(
    a: Sequence[float], b: Sequence[float], *, alpha: float = 0.05
) -> ComparisonResult:
    """Default comparison for completion-time ensembles.

    Uses Mann–Whitney (completion-time distributions have geometric
    right tails, so rank-based inference is the safe default).
    """
    return mann_whitney(a, b, alpha=alpha)
