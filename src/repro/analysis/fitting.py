"""Least-squares fits used to check the paper's scaling claims.

The experiments reduce each asymptotic claim to a regression:

* Theorem 1/2 — cover/infection time vs ``log n`` should be *linear*
  (:func:`fit_log_linear` with high ``R²``), with slope roughly
  independent of the degree;
* the grid comparison — cover time vs ``n`` should be a *power law*
  with exponent ``≈ 1/d`` (:func:`fit_power_law`);
* the spectral sweep — cover time vs ``1/(1-λ)`` is fitted on log-log
  axes to estimate the gap exponent, which Theorem 1 upper-bounds by 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares line ``y = intercept + slope * x``.

    ``r_squared`` is the coefficient of determination; for a constant
    response it is defined as 1 when residuals vanish, else 0.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * np.asarray(x, dtype=np.float64)

    def __str__(self) -> str:
        return f"y = {self.intercept:.3f} + {self.slope:.3f}·x (R²={self.r_squared:.4f})"


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """OLS fit of ``y`` on ``x``; needs at least two distinct ``x`` values."""
    x_array = np.asarray(x, dtype=np.float64)
    y_array = np.asarray(y, dtype=np.float64)
    if x_array.shape != y_array.shape or x_array.ndim != 1:
        raise ValueError(
            f"x and y must be equal-length 1-D sequences, got {x_array.shape} and {y_array.shape}"
        )
    if x_array.size < 2:
        raise ValueError("need at least two points to fit a line")
    if np.ptp(x_array) == 0.0:
        raise ValueError("x values are all identical; slope is undefined")
    slope, intercept = np.polyfit(x_array, y_array, deg=1)
    predictions = intercept + slope * x_array
    residual_ss = float(((y_array - predictions) ** 2).sum())
    total_ss = float(((y_array - y_array.mean()) ** 2).sum())
    if total_ss == 0.0:
        # Constant response: a perfect fit up to float noise counts as R² = 1.
        scale = max(1.0, float(np.abs(y_array).max()) ** 2)
        r_squared = 1.0 if residual_ss <= 1e-12 * scale else 0.0
    else:
        r_squared = 1.0 - residual_ss / total_ss
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def fit_log_linear(n_values: Sequence[float], times: Sequence[float]) -> LinearFit:
    """Fit ``time = a + b log(n)`` — the Theorem 1/2 shape.

    Returns the fit in the transformed coordinate ``x = log n``.
    """
    n_array = np.asarray(n_values, dtype=np.float64)
    if np.any(n_array <= 0):
        raise ValueError("n values must be positive for a log fit")
    return fit_linear(np.log(n_array), times)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y = c * x^e`` on log-log axes; ``slope`` is the exponent ``e``.

    ``intercept`` is ``log c``.
    """
    x_array = np.asarray(x, dtype=np.float64)
    y_array = np.asarray(y, dtype=np.float64)
    if np.any(x_array <= 0) or np.any(y_array <= 0):
        raise ValueError("power-law fits require strictly positive data")
    return fit_linear(np.log(x_array), np.log(y_array))
