"""Dependency-free ASCII line/scatter plots for EXPERIMENTS.md figures.

The environment has no plotting backend, so "figures" are rendered as
monospace charts: one character cell per plot position, one glyph per
series, log-scale support on both axes, and a legend.  Good enough to
show scaling shapes (straight lines on the appropriate axes) inline in
markdown code fences.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_SERIES_GLYPHS = "ox+*#@%&"


def ascii_histogram(
    values,
    *,
    bins: int = 12,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal-bar histogram of a numeric sample.

    Each line shows a bin range, its count, and a bar scaled so the
    fullest bin spans ``width`` characters.
    """
    import numpy as np

    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"expected a non-empty 1-D sample, got shape {array.shape}")
    if bins < 1 or width < 1:
        raise ValueError(f"bins and width must be positive, got {bins}, {width}")
    counts, edges = np.histogram(array, bins=bins)
    peak = max(int(counts.max()), 1)
    label_width = max(
        len(f"{edges[i]:.4g}..{edges[i + 1]:.4g}") for i in range(len(counts))
    )
    lines = [title] if title else []
    for i, count in enumerate(counts):
        label = f"{edges[i]:.4g}..{edges[i + 1]:.4g}".ljust(label_width)
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{label} | {str(count).rjust(6)} {bar}")
    return "\n".join(lines)


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series name to ``(xs, ys)``; all points with
        non-finite coordinates (or non-positive ones under log scaling)
        are dropped.
    width, height:
        Plot-area size in character cells.
    log_x, log_y:
        Use logarithmic axes.
    title, x_label, y_label:
        Annotations; the y label is printed above the axis.
    """
    if width < 8 or height < 4:
        raise ValueError(f"plot area too small: {width}x{height}")
    if not series:
        raise ValueError("need at least one series to plot")

    transformed: dict[str, list[tuple[float, float]]] = {}
    for name, (xs, ys) in series.items():
        points = []
        for x, y in zip(xs, ys):
            x = float(x)
            y = float(y)
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if log_x:
                if x <= 0:
                    continue
                x = math.log10(x)
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((x, y))
        transformed[name] = points

    all_points = [p for points in transformed.values() for p in points]
    if not all_points:
        raise ValueError("no plottable points (check log-scale positivity)")
    x_min = min(p[0] for p in all_points)
    x_max = max(p[0] for p in all_points)
    y_min = min(p[1] for p in all_points)
    y_max = max(p[1] for p in all_points)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for series_index, (name, points) in enumerate(transformed.items()):
        glyph = _SERIES_GLYPHS[series_index % len(_SERIES_GLYPHS)]
        for x, y in points:
            column = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][column] = glyph

    def _axis_value(value: float, is_log: bool) -> str:
        return f"{10 ** value:.3g}" if is_log else f"{value:.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}{' (log)' if log_y else ''}")
    top_label = _axis_value(y_max, log_y)
    bottom_label = _axis_value(y_min, log_y)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    left = _axis_value(x_min, log_x)
    right = _axis_value(x_max, log_x)
    axis_caption = f"{left}{' ' * max(1, width - len(left) - len(right))}{right}"
    lines.append(" " * (label_width + 2) + axis_caption)
    lines.append(" " * (label_width + 2) + f"{x_label}{' (log)' if log_x else ''}")
    legend = "  ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(transformed)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
