"""Parallel execution layer: seed-stable sharding over process pools.

The Monte-Carlo workloads in this repository — the batch ensemble
engines, sequential replica sampling, experiment campaigns — are
embarrassingly parallel, but naive parallelisation breaks the
reproducibility contract the rest of the library keeps: results must
not depend on how many workers happened to run.  This module fixes the
rules every parallel entry point follows.

* **Seed-stable sharding.**  Work is decomposed into *shards* whose
  boundaries and seeds depend only on the workload (replica count,
  shard size, master seed) — never on the worker count.  Shard seeds
  are ``SeedSequence.spawn`` children indexed by shard position (and,
  for sequential replica sampling, by replica id), so ``jobs=1`` and
  ``jobs=8`` produce bit-identical results.
* **One ``jobs`` convention.**  ``None`` means the process-wide
  default (1 unless the CLI's ``--jobs`` raised it), ``0`` means one
  worker per CPU, ``n >= 1`` means exactly ``n`` workers.
* **Cheap context shipping.**  Shared read-only context (the graph,
  process parameters) travels once per worker through the pool
  initializer, not once per task.

Pools prefer the ``fork`` start method where available (unless the
application pinned another method with
``multiprocessing.set_start_method``, which is respected), so graphs
and closures are inherited by workers instead of pickled per task; on
platforms without ``fork`` the kernel and its context must be
picklable.  Inside a pool worker (a daemonic process) the machinery
degrades to inline execution automatically — nested pools are never
created.

For spawn-started pools, :class:`SharedGraph` publishes a graph's CSR
arrays once through ``multiprocessing.shared_memory`` and reattaches
them zero-copy in every worker, so shipping a large graph costs one
copy total instead of one per worker per task.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import EntryDeadlineError, ParallelError
from repro.graphs.base import Graph

#: Default number of shards a workload is split into.  The
#: decomposition of an ensemble into shards depends on this value and
#: the replica count only — never on ``jobs`` — which is what keeps
#: results identical across worker counts.  Sixteen shards keep the
#: per-shard matrices large (vectorisation stays effective at
#: ``jobs=1``) while leaving enough shards for typical worker counts
#: to balance load.  Changing it changes the per-shard RNG streams
#: (and therefore sampled values, not their distribution).
DEFAULT_SHARD_COUNT = 16

#: Floor on the default shard size: below this many rows per shard the
#: batch engines pay per-call overhead instead of vectorising, so
#: small ensembles get fewer, fatter shards (a 10-replica ensemble is
#: one shard — parallelism has nothing to win there anyway).
MIN_SHARD_SIZE = 32

_default_jobs = 1

#: Worker-process state installed by :func:`_initialize_worker`.
_worker_kernel: Callable[..., Any] | None = None
_worker_context: Any = None


def default_jobs() -> int:
    """The process-wide default worker count used when ``jobs=None``."""
    return _default_jobs


def set_default_jobs(jobs: int) -> int:
    """Set the process-wide default worker count; returns the old value.

    The CLI's global ``--jobs`` flag calls this once at startup so that
    every ensemble measured by an experiment inherits the setting
    without threading a parameter through thirteen ``run`` signatures.
    """
    global _default_jobs
    if jobs is None:
        raise ParallelError("set_default_jobs needs a concrete jobs count, got None")
    previous = _default_jobs
    _default_jobs = resolve_jobs(jobs)
    return previous


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalise a ``jobs`` argument to a concrete worker count.

    ``None`` resolves to :func:`default_jobs`, ``0`` to ``os.cpu_count()``,
    and any positive integer to itself.  Negative counts are rejected,
    and so are booleans: ``jobs=True`` would otherwise coerce to one
    worker and silently serialise a run the caller meant to
    parallelise (mirroring the strict seed validation in
    :meth:`~repro.experiments.campaign.CampaignEntry.from_dict`).
    """
    if jobs is None:
        return _default_jobs
    if isinstance(jobs, bool):
        raise ParallelError(
            f"jobs must be an integer worker count, got the boolean {jobs!r} "
            "(did you mean jobs=0 for one worker per CPU?)"
        )
    jobs = int(jobs)
    if jobs < 0:
        raise ParallelError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_shard_size(n_items: int) -> int:
    """The shard size yielding about :data:`DEFAULT_SHARD_COUNT` shards.

    Floored at :data:`MIN_SHARD_SIZE` rows so tiny ensembles stay
    vectorised.  Depends only on the workload size, never on the
    worker count.
    """
    if n_items < 0:
        raise ParallelError(f"n_items must be >= 0, got {n_items}")
    return max(MIN_SHARD_SIZE, -(-n_items // DEFAULT_SHARD_COUNT))


def shard_bounds(n_items: int, shard_size: int | None = None) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard bounds covering ``n_items``.

    The decomposition depends only on ``n_items`` and ``shard_size``
    (default :func:`default_shard_size`); callers must never let the
    worker count influence either, or jobs-invariance is lost.
    """
    if n_items < 0:
        raise ParallelError(f"n_items must be >= 0, got {n_items}")
    if shard_size is None:
        shard_size = default_shard_size(n_items)
    shard_size = int(shard_size)
    if shard_size < 1:
        raise ParallelError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, n_items))
        for start in range(0, n_items, shard_size)
    ]


def _initialize_worker(kernel: Callable[..., Any], context: Any) -> None:
    """Install the kernel and its shared context in a pool worker."""
    # repro: ignore[spawn-safety] -- this IS the initializer seam: each worker installs its own copy; the parent never reads these
    global _worker_kernel, _worker_context
    _worker_kernel = kernel
    _worker_context = context


def _run_task(task: Sequence[Any]) -> Any:
    """Execute one task against the worker's installed kernel."""
    assert _worker_kernel is not None, "worker pool was not initialised"
    return _worker_kernel(_worker_context, *task)


def _run_indexed_task(indexed_task: tuple[int, Sequence[Any]]) -> tuple[int, Any]:
    """Like :func:`_run_task`, but carries the task index with the result.

    Unordered pool iteration loses positional information, so the
    worker returns it explicitly.
    """
    index, task = indexed_task
    return index, _run_task(task)


def will_pool(jobs: int | None, n_tasks: int) -> bool:
    """Whether :func:`map_shards` would start a real worker pool.

    The one shared predicate behind the pool-vs-inline decision, so
    callers that prepare pool-only machinery (e.g. publishing a
    :class:`SharedGraph`) agree with the execution layer.  (Inline
    degradation for unpicklable kernels on spawn platforms is decided
    later, inside :func:`imap_shards`.)
    """
    return (
        n_tasks > 1
        and min(resolve_jobs(jobs), n_tasks) > 1
        and not multiprocessing.current_process().daemon
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    """The context pools are built from.

    An explicitly pinned start method
    (``multiprocessing.set_start_method``) wins — that is how the test
    suite forces the ``spawn`` path on fork-capable platforms.  A
    default that was merely *resolved* by earlier default-context use
    counts as pinned too (CPython exposes no way to tell the two
    apart); that is deliberate — once the application runs under a
    fixed method, pools follow it rather than fight it.  Otherwise
    prefer ``fork`` (inherits graphs/closures); fall back to the
    platform default.
    """
    pinned = multiprocessing.get_start_method(allow_none=True)
    if pinned is not None:
        return multiprocessing.get_context(pinned)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def pool_start_method() -> str:
    """The start method worker pools will actually use."""
    return _pool_context().get_start_method()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    Before Python 3.13 an *attaching* ``SharedMemory`` still registers
    with the process-local resource tracker, which then unlinks the
    segment when the attaching process exits — destroying it for the
    publisher and every other worker.  3.13+ exposes ``track=False``;
    earlier versions need the registration undone by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        from multiprocessing import resource_tracker

        # Silence registration for the duration of the attach.  An
        # explicit ``unregister`` afterwards would be wrong: workers
        # share the publisher's tracker process, so it would cancel the
        # *publisher's* registration and orphan the segment on crash.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class SharedGraph:
    """A picklable zero-copy handle to a :class:`~repro.graphs.base.Graph`.

    ``SharedGraph(graph)`` *publishes* the graph's CSR ``indptr`` /
    ``indices`` arrays into two ``multiprocessing.shared_memory``
    segments — one copy, total.  The handle pickles to a few hundred
    bytes of metadata (segment names, lengths, graph name), so shipping
    it to spawn-started workers through a pool initializer costs
    nothing; each worker's :meth:`graph` call reattaches the segments
    and rebuilds the graph around read-only views of the shared buffers
    (no validation, no copy).

    Lifecycle: the publishing process owns the segments and must call
    :meth:`unlink` (or use the handle as a context manager) when the
    pooled work is done; workers only ever attach and never unlink.
    ``unlink`` removes the segment names — memory is returned once the
    last attached process drops its mapping.  On fork platforms the
    handle also works (workers inherit the parent's attachment), it is
    just unnecessary: :func:`map_shards` ships plain graphs for free
    there.
    """

    def __init__(self, graph: Graph) -> None:
        self._name = graph.name
        self._n_indptr = graph.indptr.size
        self._n_indices = graph.indices.size
        # Indices may be stored narrow (int32); the segment and the
        # worker-side views follow the graph's storage dtype so an
        # opted-in graph ships at half width too.
        self._indices_dtype = graph.indices.dtype.str
        self._owner = True
        # Assign both segment slots before creating anything so a
        # creation failure (e.g. a full /dev/shm) leaves an object
        # ``unlink`` can still clean up instead of a half-built one.
        self._indptr_shm: shared_memory.SharedMemory | None = None
        self._indices_shm: shared_memory.SharedMemory | None = None
        self._graph: Graph | None = None
        try:
            # SharedMemory rejects zero-length segments; an edgeless
            # graph still publishes a 1-byte indices segment (never read).
            self._indptr_shm = shared_memory.SharedMemory(
                create=True, size=max(1, graph.indptr.nbytes)
            )
            self._indices_shm = shared_memory.SharedMemory(
                create=True, size=max(1, graph.indices.nbytes)
            )
            np.ndarray(self._n_indptr, dtype=np.int64, buffer=self._indptr_shm.buf)[
                :
            ] = graph.indptr
            np.ndarray(
                self._n_indices, dtype=self._indices_dtype, buffer=self._indices_shm.buf
            )[:] = graph.indices
        except BaseException:
            self.unlink()
            raise
        self._indptr_segment = self._indptr_shm.name
        self._indices_segment = self._indices_shm.name
        # The publisher already has the graph; workers build theirs lazily.
        self._graph = graph

    # -- pickling ------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            "name": self._name,
            "n_indptr": self._n_indptr,
            "n_indices": self._n_indices,
            "indices_dtype": self._indices_dtype,
            "indptr_segment": self._indptr_segment,
            "indices_segment": self._indices_segment,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._name = state["name"]
        self._n_indptr = state["n_indptr"]
        self._n_indices = state["n_indices"]
        self._indices_dtype = state["indices_dtype"]
        self._indptr_segment = state["indptr_segment"]
        self._indices_segment = state["indices_segment"]
        self._owner = False
        self._indptr_shm = None
        self._indices_shm = None
        self._graph = None

    # -- access --------------------------------------------------------

    def graph(self) -> Graph:
        """The shared graph, attaching to the segments on first use.

        Worker-side calls build the graph around zero-copy views of the
        shared buffers and cache it; the publisher returns the original
        graph it was constructed from.
        """
        if self._graph is None:
            if self._indptr_shm is None:
                from repro.testing.faults import fault_point

                # Injection point for the resilience suite: a worker
                # losing the attach race surfaces as a transient
                # OSError here, exactly like the real failure mode.
                fault_point("shm_attach", token=self._name)
                self._indptr_shm = _attach_segment(self._indptr_segment)
                self._indices_shm = _attach_segment(self._indices_segment)
            indptr = np.ndarray(
                self._n_indptr, dtype=np.int64, buffer=self._indptr_shm.buf
            )
            indices = np.ndarray(
                self._n_indices, dtype=self._indices_dtype, buffer=self._indices_shm.buf
            )
            self._graph = Graph.adopt_validated_csr(indptr, indices, name=self._name)
        return self._graph

    def unlink(self) -> None:
        """Publisher-side: free the segments (idempotent).

        Attached workers keep their mappings until they drop them; new
        attaches fail afterwards.
        """
        if not self._owner:
            return
        for segment in (self._indptr_shm, self._indices_shm):
            if segment is None:
                continue
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live views in this process
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._indptr_shm = None
        self._indices_shm = None

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - shutdown ordering varies
        # Best-effort cleanup: owners free their segments even when
        # ``unlink`` was forgotten; attached workers drop their views
        # before closing so interpreter shutdown stays silent.
        try:
            self._graph = None
            if self._owner:
                self.unlink()
            else:
                for segment in (self._indptr_shm, self._indices_shm):
                    if segment is not None:
                        try:
                            segment.close()
                        except Exception:  # repro: ignore[error-taxonomy] -- best-effort shm detach; teardown must not raise
                            pass
        except Exception:  # repro: ignore[error-taxonomy] -- close() runs from __del__/atexit where raising is forbidden
            pass

    def __repr__(self) -> str:
        role = "publisher" if self._owner else "attached"
        return (
            f"SharedGraph({self._name!r}, segments="
            f"[{self._indptr_segment}, {self._indices_segment}], {role})"
        )


#: Active publication cache of :func:`shared_graph_scope`, or ``None``.
#: Maps ``id(graph)`` to ``(graph, handle)`` — the strong graph
#: reference pins the id so it cannot be recycled by a new object.
_graph_publications: "dict[int, tuple[Graph, SharedGraph]] | None" = None


@contextmanager
def shared_graph_scope() -> "Iterator[None]":
    """Publish each distinct graph at most once for the scope's duration.

    Inside the scope, :func:`acquire_shared_graph` hands out one
    long-lived :class:`SharedGraph` per graph object instead of a fresh
    publication per ensemble call, so an experiment that measures the
    same graph several times (E2's BIPS+COBRA pairs, E9's protocol
    sweep) — or a campaign entry doing so on a spawn platform — pays
    one copy per graph total.  Every cached publication is unlinked
    when the outermost scope exits; nested scopes reuse the outer
    cache.  Without an active scope :func:`acquire_shared_graph`
    degrades to the old publish-per-call behaviour.
    """
    global _graph_publications
    if _graph_publications is not None:  # nested: reuse the outer cache
        yield
        return
    _graph_publications = {}
    try:
        yield
    finally:
        cache, _graph_publications = _graph_publications, None
        for _, handle in cache.values():
            handle.unlink()


def acquire_shared_graph(graph: Graph) -> "tuple[SharedGraph, bool]":
    """A shared-memory handle for ``graph``, cached inside an active scope.

    Returns ``(handle, caller_owns)``: when ``caller_owns`` is True the
    caller must ``unlink()`` the handle after its pooled work (no scope
    was active); when False the handle belongs to the enclosing
    :func:`shared_graph_scope` and must be left alone.
    """
    if _graph_publications is None:
        return SharedGraph(graph), True
    entry = _graph_publications.get(id(graph))
    if entry is not None:
        # The cached strong reference pins id(graph), so a cache hit is
        # always the same object.
        assert entry[0] is graph
        return entry[1], False
    handle = SharedGraph(graph)
    _graph_publications[id(graph)] = (graph, handle)
    return handle, False


def resolve_shared_graph(graph_or_handle: "Graph | SharedGraph") -> Graph:
    """Accept either a plain graph or a shared handle; return the graph.

    Kernels call this on the graph slot of their shipped context so the
    same kernel works with fork-inherited graphs and shared-memory
    handles alike.
    """
    if isinstance(graph_or_handle, SharedGraph):
        return graph_or_handle.graph()
    return graph_or_handle


def map_shards(
    kernel: Callable[..., Any],
    context: Any,
    tasks: Sequence[Sequence[Any]],
    *,
    jobs: int | None = None,
    isolate: bool = False,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Apply ``kernel(context, *task)`` to every task, in task order.

    Parameters
    ----------
    kernel:
        A module-level function (it must be importable by workers).
        Its first argument is the shared ``context``; the remaining
        arguments are the task tuple.
    context:
        Read-only state shipped once per worker (e.g. the graph and
        process parameters).
    tasks:
        Argument tuples, one per shard.  Results are returned in the
        same order regardless of completion order.
    jobs:
        Worker count per the module convention (``None`` = default,
        ``0`` = CPU count).  With one worker, a single task, or when
        already inside a pool worker, tasks run inline in this process
        — same code path, same results.
    isolate:
        Give every task a fresh worker process (``maxtasksperchild=1``);
        used by campaigns for per-entry process isolation.
    on_result:
        Optional callback invoked as ``on_result(index, result)`` in
        task order as results become available (progress reporting).
    """
    tasks = list(tasks)
    results: list[Any] = [None] * len(tasks)
    for index, result in imap_shards(
        kernel, context, tasks, jobs=jobs, isolate=isolate, ordered=True
    ):
        if on_result is not None:
            on_result(index, result)
        results[index] = result
    return results


def imap_shards(
    kernel: Callable[..., Any],
    context: Any,
    tasks: Sequence[Sequence[Any]],
    *,
    jobs: int | None = None,
    isolate: bool = False,
    ordered: bool = True,
) -> Iterator[tuple[int, Any]]:
    """Yield ``(index, result)`` pairs as ``kernel(context, *task)`` runs.

    The streaming sibling of :func:`map_shards`, for consumers that
    want results as they land (progress tails, dashboards) instead of
    one list at the end.  ``ordered=True`` yields in task order;
    ``ordered=False`` yields in *completion* order under a pool
    (``imap_unordered``), which is what keeps a long tail of slow tasks
    from hiding every finished fast one.  Inline execution (one worker,
    a single task, nested inside a pool worker, or an unpicklable
    kernel on spawn-only platforms) always yields in task order —
    completion order *is* task order there.  All other parameters
    behave exactly as in :func:`map_shards`.

    Abandoning the iterator early terminates the pool cleanly (the
    ``with`` block unwinds on ``GeneratorExit``).
    """
    tasks = list(tasks)
    if not tasks:
        return
    n_workers = min(resolve_jobs(jobs), len(tasks))
    inline = not will_pool(jobs, len(tasks))
    pool_context = _pool_context()
    if not inline and pool_context.get_start_method() != "fork":
        # Without fork the initializer arguments travel by pickle;
        # closure kernels/contexts (e.g. process factories) cannot, so
        # degrade to inline execution rather than crash — same results,
        # no parallelism.
        try:
            pickle.dumps((kernel, context))
        except Exception:  # repro: ignore[error-taxonomy] -- picklability probe: any failure means degrade to inline
            inline = True
    if inline:
        for index, task in enumerate(tasks):
            yield index, kernel(context, *task)
        return
    with pool_context.Pool(
        processes=n_workers,
        initializer=_initialize_worker,
        initargs=(kernel, context),
        maxtasksperchild=1 if isolate else None,
    ) as pool:
        if ordered:
            for index, result in enumerate(pool.imap(_run_task, tasks, chunksize=1)):
                yield index, result
        else:
            indexed = list(enumerate(tasks))
            for index, result in pool.imap_unordered(
                _run_indexed_task, indexed, chunksize=1
            ):
                yield index, result


# ---------------------------------------------------------------------------
# Resilient execution: deadlines, retries, pool recycling
# ---------------------------------------------------------------------------


@dataclass
class TaskOutcome:
    """Final fate of one resilient task: a value or an error, plus cost.

    ``attempts`` counts every attempt made (the successful one
    included); ``traceback`` carries the formatted traceback of the
    final failure — the worker-side one when the task died in a pool
    worker (recovered from the pickled exception's remote-traceback
    cause), the local one when it ran inline.
    """

    index: int
    value: Any = None
    error: BaseException | None = None
    attempts: int = 1
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _failure_traceback(error: BaseException) -> str:
    """The most informative traceback text available for ``error``.

    Exceptions re-raised from pool workers arrive with the worker's
    formatted traceback chained on as a ``RemoteTraceback`` cause;
    locally raised ones still own their real traceback.
    """
    cause = getattr(error, "__cause__", None)
    if cause is not None and type(cause).__name__ == "RemoteTraceback":
        return str(cause)
    return "".join(
        traceback_module.format_exception(type(error), error, error.__traceback__)
    )


def _run_retry_task(task_and_attempt: tuple[Sequence[Any], int]) -> Any:
    """Worker-side body of :func:`iter_resilient` submissions.

    The attempt number rides along as the kernel's final positional
    argument so retry-aware kernels (and their fault-injection points)
    can tell a first attempt from a retry.
    """
    task, attempt = task_and_attempt
    assert _worker_kernel is not None, "worker pool was not initialised"
    return _worker_kernel(_worker_context, *task, attempt)


class _RetrySchedule:
    """Pending attempts with per-attempt not-before times (backoff)."""

    def __init__(self, indices: Sequence[int]) -> None:
        # (ready_at, index, attempt) kept in FIFO order of insertion;
        # the queue is tiny (campaign entries), so linear scans beat
        # the bookkeeping a heap would need for requeue-at-front.
        self._queue: list[tuple[float, int, int]] = [
            (0.0, index, 1) for index in indices
        ]

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, index: int, attempt: int, ready_at: float) -> None:
        self._queue.append((ready_at, index, attempt))

    def push_front(self, index: int, attempt: int) -> None:
        self._queue.insert(0, (0.0, index, attempt))

    def pop_ready(self, now: float) -> tuple[int, int] | None:
        for position, (ready_at, index, attempt) in enumerate(self._queue):
            if ready_at <= now:
                del self._queue[position]
                return index, attempt
        return None

    def next_ready_at(self) -> float | None:
        if not self._queue:
            return None
        return min(ready_at for ready_at, _, _ in self._queue)


def iter_resilient(
    kernel: Callable[..., Any],
    context: Any,
    tasks: Sequence[Sequence[Any]],
    *,
    jobs: int | None = None,
    isolate: bool = True,
    deadline: float | None = None,
    retry_delay: Callable[[int, int, BaseException], float | None] | None = None,
    max_pool_restarts: int = 2,
    poll_interval: float = 0.05,
    on_event: Callable[[str], None] | None = None,
) -> Iterator[TaskOutcome]:
    """Run tasks with retries, deadlines, and pool recycling.

    The failure-hardened sibling of :func:`imap_shards`, built for
    campaign entries: each task is ``kernel(context, *task, attempt)``
    (the attempt number is appended so kernels can report it), a
    *raising* task is classified by ``retry_delay(index, attempt,
    error)`` — a float means "retry after that backoff", ``None``
    means "give up" — and every task produces exactly one
    :class:`TaskOutcome`, yielded in completion order.

    ``deadline`` (seconds, pooled execution only) is the hung-worker
    watchdog: an attempt whose result has not arrived in time is
    failed with :class:`~repro.errors.EntryDeadlineError` and the pool
    is *recycled* — terminated and rebuilt — because a hung or
    OS-killed worker cannot be reaped individually; innocent in-flight
    attempts are re-dispatched without consuming an attempt.  After
    ``max_pool_restarts`` consecutive recycles with no completed task
    in between, execution degrades to inline (``jobs=1``-style, no
    deadline) rather than thrashing a pool that keeps dying —
    degraded, not dead.

    Inline execution (one worker, one task, nested in a pool worker,
    an unpicklable kernel on a spawn platform, or post-degradation)
    runs the same retry loop in-process; deadlines cannot be enforced
    there (a hung attempt cannot be preempted) and are ignored.
    """
    tasks = list(tasks)
    if not tasks:
        return
    if deadline is not None and deadline <= 0:
        raise ParallelError(f"deadline must be > 0 seconds, got {deadline}")
    if max_pool_restarts < 0:
        raise ParallelError(
            f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
        )
    n_workers = min(resolve_jobs(jobs), len(tasks))
    schedule = _RetrySchedule(range(len(tasks)))

    def settle_failure(index: int, attempt: int, error: BaseException,
                       tb: str | None) -> TaskOutcome | None:
        """Requeue a failed attempt or close the task out; None = requeued."""
        delay = None
        if retry_delay is not None:
            delay = retry_delay(index, attempt, error)
        if delay is None:
            return TaskOutcome(
                index=index, error=error, attempts=attempt, traceback=tb
            )
        schedule.push(index, attempt + 1, time.monotonic() + float(delay))
        return None

    def run_inline() -> Iterator[TaskOutcome]:
        while schedule:
            now = time.monotonic()
            ready = schedule.pop_ready(now)
            if ready is None:
                next_at = schedule.next_ready_at()
                time.sleep(max(0.0, min(next_at - now, poll_interval)))
                continue
            index, attempt = ready
            try:
                value = kernel(context, *tasks[index], attempt)
            except Exception as error:  # noqa: BLE001 - classified by policy
                outcome = settle_failure(
                    index, attempt, error, _failure_traceback(error)
                )
                if outcome is not None:
                    yield outcome
            else:
                yield TaskOutcome(index=index, value=value, attempts=attempt)

    inline = not will_pool(jobs, len(tasks))
    pool_context = _pool_context()
    if not inline and pool_context.get_start_method() != "fork":
        try:
            pickle.dumps((kernel, context))
        except Exception:  # repro: ignore[error-taxonomy] -- picklability probe: any failure means degrade to inline
            inline = True
    if inline:
        yield from run_inline()
        return

    def make_pool():
        return pool_context.Pool(
            processes=n_workers,
            initializer=_initialize_worker,
            initargs=(kernel, context),
            maxtasksperchild=1 if isolate else None,
        )

    pool = make_pool()
    in_flight: dict[int, tuple[int, Any, float]] = {}  # index -> (attempt, result, started)
    restarts_since_success = 0
    try:
        while schedule or in_flight:
            now = time.monotonic()
            # Keep every worker busy with whatever attempts are ready.
            while len(in_flight) < n_workers:
                ready = schedule.pop_ready(now)
                if ready is None:
                    break
                index, attempt = ready
                handle = pool.apply_async(_run_retry_task, ((tasks[index], attempt),))
                in_flight[index] = (attempt, handle, now)

            progressed = False
            expired: list[int] = []
            for index, (attempt, handle, started) in list(in_flight.items()):
                if handle.ready():
                    del in_flight[index]
                    progressed = True
                    try:
                        value = handle.get()
                    except Exception as error:  # noqa: BLE001 - classified by policy
                        outcome = settle_failure(
                            index, attempt, error, _failure_traceback(error)
                        )
                        if outcome is not None:
                            yield outcome
                    else:
                        restarts_since_success = 0
                        yield TaskOutcome(index=index, value=value, attempts=attempt)
                elif deadline is not None and now - started > deadline:
                    expired.append(index)

            if expired:
                # A hung (or silently killed) worker cannot be reaped on
                # its own: recycle the whole pool and re-dispatch the
                # innocent in-flight attempts at unchanged attempt counts.
                progressed = True
                pool.terminate()
                pool.join()
                for index in expired:
                    attempt, _, _ = in_flight.pop(index)
                    error = EntryDeadlineError(
                        f"task {index} exceeded its {deadline:g}s deadline "
                        f"on attempt {attempt} (worker hung or died); "
                        "pool recycled"
                    )
                    outcome = settle_failure(index, attempt, error, None)
                    if outcome is not None:
                        yield outcome
                for index, (attempt, _, _) in in_flight.items():
                    schedule.push_front(index, attempt)
                in_flight.clear()
                restarts_since_success += 1
                if restarts_since_success > max_pool_restarts:
                    if on_event is not None:
                        on_event(
                            f"worker pool died {restarts_since_success} times in "
                            "a row; degrading to in-process execution"
                        )
                    pool = None
                    yield from run_inline()
                    return
                if on_event is not None:
                    on_event("recycled the worker pool after a missed deadline")
                try:
                    pool = make_pool()
                except Exception:  # pragma: no cover - pool creation failure  # repro: ignore[error-taxonomy] -- degrade path: failure is reported via on_event and execution continues inline
                    if on_event is not None:
                        on_event(
                            "could not rebuild the worker pool; degrading to "
                            "in-process execution"
                        )
                    pool = None
                    yield from run_inline()
                    return

            if not progressed:
                next_at = schedule.next_ready_at()
                pause = poll_interval
                if not in_flight and next_at is not None:
                    pause = max(0.0, min(next_at - now, poll_interval))
                time.sleep(pause)
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

