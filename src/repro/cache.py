"""Content-addressed on-disk cache for experiment results.

Campaigns recompute identical ``(experiment, mode, seed, parameters)``
runs from scratch today; this module makes the second computation a
JSON load.  Results are keyed by a SHA-256 digest of the canonical-JSON
form of the run's identity — experiment id, mode, seed, and the
*resolved parameters* of the run (the experiment spec plus every
workload constant the run reads, see
:func:`repro.experiments.resolved_parameters`) — so any change to what
would be computed changes the key, and two runs that would compute the
same thing share one entry.

Design rules:

* **Canonical keys.**  :func:`canonical_json` serialises parameters
  with sorted keys, compact separators, and ``repr``-stable floats, so
  the digest is invariant to dict ordering and float formatting but
  distinct for any differing field.  Unserialisable parameters raise
  :class:`~repro.errors.CacheError` — a cache must never guess.
* **Atomic writes.**  Entries are written to a temporary file in the
  cache directory and published with ``os.replace``, so a concurrent
  reader sees either the old entry or the new one, never a torn write,
  and two processes racing on one key both leave a valid entry behind.
* **Corruption is a miss — quarantined.**  A truncated or malformed
  entry is treated as a cache miss (recounted in ``stats``) and
  renamed aside to ``<name>.corrupt``: the evidence survives for
  post-mortems, re-parsing stops, and the next ``put`` publishes a
  clean entry.  Foreign-schema entries are plain misses (stale, not
  corrupt).  ``prune()`` deletes stale entries and collects the
  quarantined files.
* **Versioned schema.**  Every entry records
  :data:`CACHE_SCHEMA_VERSION`; bumping it invalidates the whole store
  without needing a migration.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import CacheError
from repro.experiments.results import ExperimentResult
from repro.testing.faults import should_inject

#: Version of the on-disk entry layout.  Entries recording any other
#: version are ignored (miss) and removed by ``prune()``.
#: 2: the batch-engine v2 rewrite (and the degree-regular sampling fast
#: path) changed every same-seed simulation stream, so v1-era results
#: must never be served next to v2 outputs.
CACHE_SCHEMA_VERSION = 2

#: Default store location used by the CLI ``cache`` subcommand when no
#: ``--cache-dir`` is given.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Age (seconds) past which ``prune()`` treats a ``.tmp-*`` file as a
#: crash leftover rather than a concurrent writer's in-flight publish.
STALE_TMP_SECONDS = 3600.0


def _canonical(value: Any) -> Any:
    """Normalise a parameters value for canonical serialisation.

    Tuples become lists, NumPy scalars their Python equivalents; dict
    keys must be strings (JSON would silently stringify ``1`` into
    ``"1"``, colliding with a genuine string key).  Anything else is a
    :class:`CacheError`: an unserialisable parameter must fail loudly,
    not hash by object identity.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise CacheError(f"cache parameters must be finite, got {value!r}")
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise CacheError(
                    f"cache parameter keys must be strings, got {key!r}"
                )
        return {key: _canonical(item) for key, item in value.items()}
    if hasattr(value, "item"):  # NumPy scalar
        return _canonical(value.item())
    raise CacheError(
        f"cache parameters must be JSON-serialisable, got {type(value).__name__}"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, compact, repr-stable floats.

    Equal Python values always serialise to identical text regardless
    of dict insertion order or how a float literal was written, so the
    text (and its digest) is a stable identity for the value.
    """
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def result_key(experiment_id: str, mode: str, seed: int, parameters: dict[str, Any]) -> str:
    """SHA-256 digest identifying one ``(experiment, mode, seed, parameters)`` run."""
    payload = canonical_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment_id": str(experiment_id).upper(),
            "mode": str(mode),
            "seed": int(seed),
            "parameters": parameters,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Per-process hit/miss/write counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form for reports."""
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` payloads.

    One entry per key, stored flat as
    ``<eid>_<mode>_s<seed>_<digest16>.json`` (human-scannable prefix,
    content-addressed suffix).  Safe for concurrent use by multiple
    processes: writes are atomic renames and corrupt reads degrade to
    misses.
    """

    def __init__(self, cache_dir: str | Path, *, create: bool = True):
        self.directory = Path(cache_dir)
        if self.directory.exists() and not self.directory.is_dir():
            raise CacheError(f"cache path {self.directory} exists and is not a directory")
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r})"

    def entry_path(
        self, experiment_id: str, mode: str, seed: int, parameters: dict[str, Any]
    ) -> Path:
        """Where the entry for this run identity lives (existing or not)."""
        digest = result_key(experiment_id, mode, seed, parameters)
        stem = f"{experiment_id.lower()}_{mode}_s{int(seed)}_{digest[:16]}"
        return self.directory / f"{stem}.json"

    def get(
        self, experiment_id: str, mode: str, seed: int, parameters: dict[str, Any]
    ) -> ExperimentResult | None:
        """The cached result for this run identity, or ``None`` on a miss.

        Corrupt, truncated, or foreign-schema entries are misses.
        """
        digest = result_key(experiment_id, mode, seed, parameters)
        path = self.entry_path(experiment_id, mode, seed, parameters)
        entry = self._read_entry(path)
        if entry is None or entry.get("key") != digest:
            self.stats.misses += 1
            return None
        try:
            result = ExperimentResult.from_json_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            # Schema drift in a cached payload is a miss, not an error:
            # the entry is simply recomputed and overwritten.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        experiment_id: str,
        mode: str,
        seed: int,
        parameters: dict[str, Any],
        result: ExperimentResult,
    ) -> Path:
        """Store a result atomically; returns the entry path.

        The payload lands in a temporary file in the cache directory
        and is published with ``os.replace``, so concurrent writers of
        the same key race safely (last rename wins, both contents are
        complete) and readers never observe a partial entry.
        """
        digest = result_key(experiment_id, mode, seed, parameters)
        path = self.entry_path(experiment_id, mode, seed, parameters)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": digest,
            "experiment_id": experiment_id.upper(),
            "mode": mode,
            "seed": int(seed),
            "result": result.to_json_dict(),
        }
        payload = json.dumps(entry, indent=2, default=_coerce)
        self.directory.mkdir(parents=True, exist_ok=True)
        # The ".tmp" suffix (not ".json") keeps in-flight writes out of
        # the entry globs used by size()/prune().
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if should_inject("cache_corrupt", token=path.name):
            # Chaos harness: tear the just-published entry, exactly as
            # a crash midway through a non-atomic rewrite would.
            path.write_text(payload[: max(1, len(payload) // 3)])
        self.stats.writes += 1
        return path

    def size(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` of the store right now."""
        count, total = 0, 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    def clear(self) -> int:
        """Delete every entry (plus quarantined and stray temp files)."""
        removed = 0
        for path in (
            list(self.directory.glob("*.json"))
            + list(self.directory.glob("*.corrupt"))
            + list(self.directory.glob(".tmp-*"))
        ):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def prune(self) -> int:
        """Delete corrupt or foreign-schema entries; returns the count removed.

        Valid current-schema entries are kept, so ``prune`` after a
        schema bump (or after a crash left torn files behind) shrinks
        the store to exactly the reusable entries.  Quarantined
        ``*.corrupt`` files (including ones quarantined by the scan
        itself) are collected and counted.  Temp files are only removed
        once stale (see :data:`STALE_TMP_SECONDS`): a fresh one belongs
        to a concurrent writer mid-publish, and deleting it would break
        that writer's atomic rename.
        """
        removed = 0
        for path in self._entry_paths():
            if self._read_entry(path) is None and path.exists():
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
        for quarantined in sorted(self.directory.glob("*.corrupt")):
            try:
                quarantined.unlink()
            except OSError:
                continue
            removed += 1
        # The GC horizon is compared against file mtimes (same clock
        # domain); the value never reaches a result or cache key.
        # repro: ignore[determinism] -- wall clock vs file mtimes only
        horizon = time.time() - STALE_TMP_SECONDS
        for stray in sorted(self.directory.glob(".tmp-*")):
            try:
                if stray.stat().st_mtime >= horizon:
                    continue
                stray.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def stats_summary(self) -> dict[str, Any]:
        """Counters plus on-disk totals, for reports and the CLI."""
        entries, total_bytes = self.size()
        return {
            "directory": str(self.directory),
            "schema": CACHE_SCHEMA_VERSION,
            "entries": entries,
            "bytes": total_bytes,
            **self.stats.to_dict(),
        }

    def _entry_paths(self) -> list[Path]:
        # Temp files are dot-prefixed with a non-.json suffix, but keep
        # the dotfile filter anyway: entry names never start with ".".
        return sorted(
            path for path in self.directory.glob("*.json")
            if not path.name.startswith(".")
        )

    def _read_entry(self, path: Path) -> dict[str, Any] | None:
        """Parse and validate one entry file; ``None`` if unusable.

        Unparseable bytes (a torn or bit-rotted write) are quarantined
        on sight; entries that parse but record a foreign schema or a
        malformed shape are merely stale and left for ``prune()``.
        """
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if not isinstance(entry.get("key"), str) or "result" not in entry:
            return None
        return entry

    def _quarantine(self, path: Path) -> None:
        """Move unparseable bytes aside as ``<name>.corrupt``.

        A corrupt entry would otherwise be re-read and re-parsed on
        every subsequent miss until something rewrites it; renaming
        preserves the evidence for post-mortems, stops the re-parsing,
        and lets ``prune()`` collect it.  Best-effort and racy by
        design: losing the race against a concurrent writer's fresh
        ``os.replace`` just costs that writer's entry a recompute.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass


def _coerce(value: Any):
    """JSON fallback for NumPy scalars inside result payloads."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value)}")
