"""Retry policy for campaign entries: classification and backoff.

Long campaigns mix heavy-tailed near-timeout entries with fast ones
(the whp-tail regime of E11), and their worker pools live long enough
to hit genuinely transient failures — an OOM-killed worker, a
shared-memory attach race, a hung pool.  One transient failure must
not poison a 10^4-entry manifest, so campaign entries run under a
:class:`RetryPolicy`: transient failures are retried with exponential
backoff, terminal failures surface immediately as error records.

Two rules keep this deterministic and honest:

* **Classification is by error type, not by guesswork.**
  :func:`is_transient` treats OS-level failures (``OSError`` and
  friends, ``MemoryError``), dead workers
  (:class:`~repro.errors.WorkerCrashError`), and missed deadlines
  (:class:`~repro.errors.EntryDeadlineError`) as transient; every
  deliberate library error (:class:`~repro.errors.ReproError` —
  validation, configuration, the dense-state memory guard, and
  :class:`~repro.errors.ProcessTimeoutError` in particular) is
  terminal, as are plain programming errors.  A retry can fix a flaky
  environment; it cannot fix a wrong configuration or a simulation
  that deterministically fails to converge.
* **Backoff is seeded, not sampled.**  The jitter on each delay is a
  pure hash of ``(seed, key, attempt)``, so two runs of the same
  campaign back off identically and tests can assert exact delays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import (
    EntryDeadlineError,
    ParallelError,
    ReproError,
    WorkerCrashError,
)

#: Non-library error types retried as transient environment failures.
#: ``OSError`` covers I/O hiccups, shared-memory attach failures, and
#: the injected transient faults (which subclass it deliberately);
#: ``MemoryError`` covers allocation pressure that a retry on a
#: less-loaded pool may survive.
_TRANSIENT_TYPES = (OSError, EOFError, MemoryError, ConnectionError)


def is_transient(error: BaseException) -> bool:
    """Whether a retry could plausibly change this failure's outcome."""
    if isinstance(error, (EntryDeadlineError, WorkerCrashError)):
        return True
    if isinstance(error, ReproError):
        return False
    return isinstance(error, _TRANSIENT_TYPES)


def _unit_hash(seed: int, key: str, attempt: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one backoff delay."""
    payload = f"{seed}|{key}|{attempt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How campaign entries are retried after transient failures.

    ``max_attempts`` counts every attempt including the first (so
    ``max_attempts=1`` disables retries); the delay before attempt
    ``k+1`` is ``base_delay * 2**(k-1)`` capped at ``max_delay``, then
    stretched by up to ``jitter`` (a fraction) using a hash of
    ``(seed, key, attempt)`` — deterministic per entry, decorrelated
    across entries so a burst of failures does not retry in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.max_attempts, bool) or not isinstance(self.max_attempts, int):
            raise ParallelError(
                f"max_attempts must be an integer, got {self.max_attempts!r}"
            )
        if self.max_attempts < 1:
            raise ParallelError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ParallelError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ParallelError(
                f"max_delay {self.max_delay} must be >= base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ParallelError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ParallelError(f"attempt must be >= 1, got {attempt}")
        base = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        return base * (1.0 + self.jitter * _unit_hash(self.seed, key, attempt))

    def next_delay(
        self, key: str, attempt: int, error: BaseException
    ) -> float | None:
        """Backoff before retrying, or ``None`` when the entry is done for.

        ``None`` means either the error is terminal or the attempt
        budget is spent; the caller should record the failure.
        """
        if attempt >= self.max_attempts or not is_transient(error):
            return None
        return self.delay(key, attempt)


def resolve_retry(retry: "RetryPolicy | int | None") -> RetryPolicy | None:
    """Normalise a ``retry=`` argument to a policy or ``None``.

    ``None`` (and a policy with ``max_attempts=1``) means no retries;
    an integer is shorthand for ``RetryPolicy(max_attempts=n)``.
    """
    if retry is None:
        return None
    if isinstance(retry, RetryPolicy):
        return retry if retry.max_attempts > 1 else None
    if isinstance(retry, bool) or not isinstance(retry, int):
        raise ParallelError(
            f"retry must be a RetryPolicy, an integer attempt budget, or None, "
            f"got {type(retry).__name__}"
        )
    policy = RetryPolicy(max_attempts=retry)
    return policy if policy.max_attempts > 1 else None
