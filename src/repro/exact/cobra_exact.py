"""Exact distribution evolution for the COBRA set process.

Given ``C_t = C``, the next active set is the union of independent
random singletons: each vertex ``u ∈ C`` contributes ``k`` uniform
draws from ``N(u)`` (plus a fractional extra draw).  The exact step
therefore union-convolves a delta at ``∅`` with one uniform-singleton
distribution per draw:

``fold(h, u) = Σ_{x ∈ N(u)} (1/d(u)) · (h union {x})``

each an O(2^n · d(u)) reshape pass.  Hitting-time tails — the left-hand
side of the duality theorem — are computed by evolving a *defective*
distribution restricted to target-free masks: mass that would land on a
mask containing the target is dropped (the walk has hit), and the
surviving total mass after ``t`` steps is ``P(Hit_C(v) > t)``.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from repro.core.process import (
    resolve_vertex,
    resolve_vertex_set,
    validate_branching,
    validate_loss,
    validate_replacement,
)
from repro.exact.subsets import check_size, mask_from_vertices, or_with_bit
from repro.graphs.base import Graph

#: Cache per-starting-mask one-step rows up to this many vertices.
ROW_CACHE_LIMIT = 10


class ExactCobra:
    """Exact subset-distribution evolution of COBRA on a small graph.

    Parameters
    ----------
    graph:
        A graph with at most
        :data:`~repro.exact.subsets.MAX_EXACT_VERTICES` vertices.
    branching:
        Branching factor ``k`` (real, ``>= 1``).
    replacement:
        With replacement (default, paper semantics) or distinct picks,
        i.e. each active vertex's choice set is a uniform ``k``-subset
        (``k+1``-subset with probability ``rho``) of its neighbourhood.
    loss_probability:
        Independent per-push loss (extension): each draw contributes
        its singleton with probability ``1 - loss`` and nothing
        otherwise.  The empty active set becomes reachable and is
        treated as absorbing (a dead walk never hits anything).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        branching: float = 2.0,
        replacement: bool = True,
        loss_probability: float = 0.0,
    ) -> None:
        check_size(graph.n_vertices)
        self._graph = graph
        self._n = graph.n_vertices
        self._size = 1 << self._n
        self._mandatory, self._rho = validate_branching(branching)
        validate_replacement(graph, self._mandatory, self._rho, replacement)
        self._replacement = bool(replacement)
        self._loss = validate_loss(loss_probability, replacement)
        self._row_cache: dict[int, np.ndarray] = {}
        self._choice_law_cache: dict[int, list[tuple[int, float]]] = {}

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    # ------------------------------------------------------------------
    # One-step machinery
    # ------------------------------------------------------------------

    def _uniform_singleton_fold(self, distribution: np.ndarray, vertex: int) -> np.ndarray:
        """Union-convolve with one (possibly lost) uniform draw from ``N(vertex)``."""
        neighbors = self._graph.neighbors(vertex)
        weight = (1.0 - self._loss) / neighbors.size
        result = np.zeros_like(distribution)
        for x in neighbors:
            result += weight * or_with_bit(distribution, int(x), self._n)
        if self._loss > 0.0:
            result += self._loss * distribution
        return result

    def _distinct_choice_law(self, vertex: int) -> list[tuple[int, float]]:
        """Without-replacement choice-set law of one vertex.

        A uniform ``k``-subset of ``N(vertex)`` with probability
        ``1 - rho``, a uniform ``(k+1)``-subset with probability
        ``rho``; returned as ``(mask, probability)`` pairs.
        """
        cached = self._choice_law_cache.get(vertex)
        if cached is not None:
            return cached
        neighbors = [int(v) for v in self._graph.neighbors(vertex)]
        law: dict[int, float] = {}

        def add_subsets(size: int, weight: float) -> None:
            subsets = list(itertools.combinations(neighbors, size))
            probability = weight / len(subsets)
            for subset in subsets:
                subset_mask = mask_from_vertices(subset)
                law[subset_mask] = law.get(subset_mask, 0.0) + probability

        if self._rho > 0.0:
            add_subsets(self._mandatory, 1.0 - self._rho)
            add_subsets(self._mandatory + 1, self._rho)
        else:
            add_subsets(self._mandatory, 1.0)
        result = sorted(law.items())
        self._choice_law_cache[vertex] = result
        return result

    def _union_fold_with_law(
        self, distribution: np.ndarray, law: list[tuple[int, float]]
    ) -> np.ndarray:
        """Union-convolve a distribution with an arbitrary subset law."""
        result = np.zeros_like(distribution)
        for subset_mask, probability in law:
            contribution = distribution * probability
            bits = subset_mask
            position = 0
            while bits:
                if bits & 1:
                    contribution = or_with_bit(contribution, position, self._n)
                bits >>= 1
                position += 1
            result += contribution
        return result

    def step_distribution(self, mask: int) -> np.ndarray:
        """Exact distribution of ``C_{t+1}`` given ``C_t = mask``."""
        if mask <= 0:
            raise ValueError("COBRA requires a non-empty active set")
        cached = self._row_cache.get(mask)
        if cached is not None:
            return cached
        distribution = np.zeros(self._size, dtype=np.float64)
        distribution[0] = 1.0
        for u in range(self._n):
            if not (mask >> u) & 1:
                continue
            if self._replacement:
                for _ in range(self._mandatory):
                    distribution = self._uniform_singleton_fold(distribution, u)
                if self._rho > 0.0:
                    branched = self._uniform_singleton_fold(distribution, u)
                    distribution = (1.0 - self._rho) * distribution + self._rho * branched
            else:
                distribution = self._union_fold_with_law(
                    distribution, self._distinct_choice_law(u)
                )
        if self._n <= ROW_CACHE_LIMIT:
            self._row_cache[mask] = distribution
        return distribution

    # ------------------------------------------------------------------
    # Full-law evolution (no absorption)
    # ------------------------------------------------------------------

    def initial_distribution(self, start: int | Iterable[int]) -> np.ndarray:
        """Delta at ``C_0 = start``."""
        vertices = resolve_vertex_set(self._graph, start, role="start")
        distribution = np.zeros(self._size, dtype=np.float64)
        distribution[mask_from_vertices(vertices.tolist())] = 1.0
        return distribution

    def evolve(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Evolve a subset distribution ``steps`` rounds forward."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        current = np.asarray(distribution, dtype=np.float64).copy()
        if current.shape != (self._size,):
            raise ValueError(
                f"distribution must have shape ({self._size},), got {current.shape}"
            )
        for _ in range(steps):
            next_distribution = np.zeros_like(current)
            for mask in np.flatnonzero(current > 0.0):
                mask = int(mask)
                if mask == 0:
                    # A dead walk (all messages lost) stays dead.
                    next_distribution[0] += current[0]
                    continue
                next_distribution += current[mask] * self.step_distribution(mask)
            current = next_distribution
        return current

    def distribution_at(self, start: int | Iterable[int], t: int) -> np.ndarray:
        """Exact law of ``C_t`` from ``C_0 = start``."""
        return self.evolve(self.initial_distribution(start), t)

    def occupation_probabilities(self, start: int | Iterable[int], t: int) -> np.ndarray:
        """``P(u ∈ C_t)`` for every vertex ``u`` (length-`n` array).

        With ``branching = 1`` and a single start vertex this equals the
        ``t``-step law of a simple random walk — a cross-check used by
        the test suite.
        """
        distribution = self.distribution_at(start, t)
        all_masks = np.arange(self._size, dtype=np.int64)
        return np.array(
            [
                float(distribution[(all_masks >> u) & 1 == 1].sum())
                for u in range(self._n)
            ]
        )

    # ------------------------------------------------------------------
    # Hitting-time tails (duality LHS)
    # ------------------------------------------------------------------

    def hitting_survival_series(
        self, start: int | Iterable[int], target: int, t_max: int
    ) -> np.ndarray:
        """``P(Hit_C(v) > t)`` for ``t = 0 .. t_max``.

        ``Hit_C(v) = min{t : v ∈ C_t, C_0 = C}`` with round 0 counting,
        exactly as in the paper.
        """
        target = resolve_vertex(self._graph, target, role="target")
        if t_max < 0:
            raise ValueError(f"t_max must be non-negative, got {t_max}")
        target_bit = 1 << target
        all_masks = np.arange(self._size, dtype=np.int64)
        target_free = (all_masks & target_bit) == 0

        survival = np.empty(t_max + 1, dtype=np.float64)
        defective = self.initial_distribution(start)
        defective[~target_free] = 0.0
        survival[0] = float(defective.sum())
        for t in range(1, t_max + 1):
            next_defective = np.zeros_like(defective)
            for mask in np.flatnonzero(defective > 0.0):
                mask = int(mask)
                if mask == 0:
                    # A dead walk never hits the target: permanent survival.
                    next_defective[0] += defective[0]
                    continue
                next_defective += defective[mask] * self.step_distribution(mask)
            next_defective[~target_free] = 0.0
            defective = next_defective
            survival[t] = float(defective.sum())
        return survival

    def hitting_survival(self, start: int | Iterable[int], target: int, t: int) -> float:
        """``P(Hit_C(v) > t)`` for a single ``t``."""
        return float(self.hitting_survival_series(start, target, t)[t])
