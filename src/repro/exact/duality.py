"""Machine-precision verification of the paper's Theorem 4 (duality).

Theorem 4: for every connected graph, ``C ⊆ V``, ``v ∈ V``, ``t >= 0``,

``P̂(Hit_C(v) > t | C_0 = C)  =  P(C ∩ A_t = ∅ | A_0 = {v})``

where the left side is a COBRA process started from ``C`` and the right
a BIPS process with persistent source ``v``, both with the same
branching factor ``k``.

The paper states the theorem for regular graphs (the setting of its
main results), but the proof uses only that each vertex's random
``k``-set of neighbours has the same law in both processes and is
independent across vertices — properties that hold for arbitrary
graphs.  The verification functions below therefore accept any graph,
and the test suite confirms the identity on irregular graphs too
(documented as an observation, not a claim of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._rng import SeedLike, spawn_generators
from repro.core.process import resolve_vertex, resolve_vertex_set
from repro.exact.bips_exact import ExactBips
from repro.exact.cobra_exact import ExactCobra
from repro.exact.subsets import mask_from_vertices, masks_disjoint_from
from repro.graphs.base import Graph


def duality_series(
    graph: Graph,
    start: int | Iterable[int],
    source: int,
    t_max: int,
    *,
    branching: float = 2.0,
    replacement: bool = True,
    loss_probability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Both sides of the duality identity for ``t = 0 .. t_max``.

    Returns ``(cobra_side, bips_side)``: the COBRA hitting tails
    ``P̂(Hit_C(v) > t)`` and the BIPS disjointness probabilities
    ``P(C ∩ A_t = ∅)``.  The identity holds for with- and
    without-replacement sampling alike, and with independent
    per-message loss — the proof only needs the per-vertex choice-set
    laws of the two processes to coincide.
    """
    source = resolve_vertex(graph, source, role="source")
    start_vertices = resolve_vertex_set(graph, start, role="start")
    start_mask = mask_from_vertices(start_vertices.tolist())

    cobra = ExactCobra(
        graph,
        branching=branching,
        replacement=replacement,
        loss_probability=loss_probability,
    )
    cobra_side = cobra.hitting_survival_series(start_vertices.tolist(), source, t_max)

    bips = ExactBips(
        graph,
        source,
        branching=branching,
        replacement=replacement,
        loss_probability=loss_probability,
    )
    selector = masks_disjoint_from(start_mask, graph.n_vertices)
    bips_side = np.empty(t_max + 1, dtype=np.float64)
    current = bips.initial_distribution()
    bips_side[0] = float(current[selector].sum())
    for t in range(1, t_max + 1):
        current = bips.evolve(current, 1)
        bips_side[t] = float(current[selector].sum())
    return cobra_side, bips_side


def duality_gap(
    graph: Graph,
    start: int | Iterable[int],
    source: int,
    t_max: int,
    *,
    branching: float = 2.0,
    replacement: bool = True,
    loss_probability: float = 0.0,
) -> float:
    """Largest absolute deviation between the two sides over ``t <= t_max``.

    For a correct implementation this is float rounding noise
    (``~1e-12``); the E4 experiment reports it as the reproduction's
    duality check.
    """
    cobra_side, bips_side = duality_series(
        graph,
        start,
        source,
        t_max,
        branching=branching,
        replacement=replacement,
        loss_probability=loss_probability,
    )
    return float(np.max(np.abs(cobra_side - bips_side)))


@dataclass(frozen=True)
class MonteCarloDualityPoint:
    """Both duality sides at one horizon, estimated by simulation.

    ``cobra_estimate`` is the empirical ``P̂(Hit_C(v) > t)``;
    ``bips_estimate`` the empirical ``P(C ∩ A_t = ∅)``; the Wilson 95%
    intervals are attached, and ``intervals_overlap`` is the agreement
    criterion used by experiment E4.
    """

    t: int
    cobra_estimate: float
    bips_estimate: float
    cobra_interval: tuple[float, float]
    bips_interval: tuple[float, float]

    @property
    def difference(self) -> float:
        """Absolute difference of the two point estimates."""
        return abs(self.cobra_estimate - self.bips_estimate)

    @property
    def intervals_overlap(self) -> bool:
        """Whether the two 95% intervals intersect."""
        return (
            self.cobra_interval[0] <= self.bips_interval[1]
            and self.bips_interval[0] <= self.cobra_interval[1]
        )


def duality_monte_carlo(
    graph: Graph,
    start: int | Iterable[int],
    source: int,
    horizons: Sequence[int],
    *,
    branching: float = 2.0,
    trials: int = 2000,
    seed: SeedLike = None,
) -> list[MonteCarloDualityPoint]:
    """Estimate both duality sides by simulation on graphs of any size.

    For each horizon ``t``, runs ``trials`` independent COBRA processes
    from ``start`` (recording whether ``source`` was hit by round
    ``t``) and ``trials`` independent BIPS processes with persistent
    source ``source`` (recording whether the start set is disjoint from
    ``A_t``).  Unlike the exact engines this scales to arbitrary `n`;
    agreement is judged by Wilson-interval overlap.
    """
    from repro.analysis.stats import proportion_ci
    from repro.core.bips import BipsProcess
    from repro.core.cobra import CobraProcess

    source = resolve_vertex(graph, source, role="source")
    start_vertices = resolve_vertex_set(graph, start, role="start")
    points: list[MonteCarloDualityPoint] = []
    for t in horizons:
        cobra_misses = 0
        for rng in spawn_generators((_seed_component(seed), t, 1), trials):
            process = CobraProcess(graph, start_vertices.tolist(), branching=branching, seed=rng)
            process.run(t)
            if process.first_hit_times()[source] < 0:
                cobra_misses += 1
        bips_misses = 0
        for rng in spawn_generators((_seed_component(seed), t, 2), trials):
            process = BipsProcess(graph, source, branching=branching, seed=rng)
            process.run(t)
            if not process.active_mask[start_vertices].any():
                bips_misses += 1
        points.append(
            MonteCarloDualityPoint(
                t=t,
                cobra_estimate=cobra_misses / trials,
                bips_estimate=bips_misses / trials,
                cobra_interval=proportion_ci(cobra_misses, trials),
                bips_interval=proportion_ci(bips_misses, trials),
            )
        )
    return points


def _seed_component(seed: SeedLike) -> int:
    """Reduce a SeedLike to an integer usable inside composite seeds."""
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    # Fall back to a stable hash of the seed sequence's entropy.
    from repro._rng import derive_seed_sequence

    entropy = derive_seed_sequence(seed).entropy
    if isinstance(entropy, (int, np.integer)):
        return int(entropy) % (2**31)
    if entropy is None:
        return 0
    return int(sum(int(part) for part in np.ravel(entropy)) % (2**31))
