"""Exact distribution evolution for the BIPS epidemic.

Given ``A_t = A``, the next infected set is a product of independent
per-vertex Bernoullis: vertex ``u ≠ v`` is infected with probability
``p_u(A) = 1 - (1 - d_A(u)/d(u))^k`` (adjusted for fractional ``k``),
and the source bit is always set.  The exact step therefore folds one
Bernoulli per vertex into a delta at the source bit — ``n - 1``
O(2^n) reshape operations per starting mask.

For graphs up to :data:`MATRIX_LIMIT` vertices the full
``2^n × 2^n`` transition matrix is materialised once and reused across
steps; larger graphs (up to the global exact-engine limit) evolve the
distribution on the fly.
"""

from __future__ import annotations

import numpy as np

from repro.core.process import (
    resolve_vertex,
    validate_branching,
    validate_loss,
    validate_replacement,
)
from repro.exact.subsets import (
    bernoulli_fold,
    check_size,
    masks_disjoint_from,
    popcount_table,
)
from repro.graphs.base import Graph

#: Materialise the full transition matrix up to this many vertices
#: (2^10 x 2^10 doubles = 8 MiB).
MATRIX_LIMIT = 10


class ExactBips:
    """Exact subset-distribution evolution of BIPS on a small graph.

    Parameters
    ----------
    graph:
        A graph with at most
        :data:`~repro.exact.subsets.MAX_EXACT_VERTICES` vertices.
    source:
        The persistent source vertex ``v``.
    branching:
        Sampling factor ``k`` (real, ``>= 1``).
    replacement:
        With replacement (default, paper semantics) or distinct
        contacts; the without-replacement miss probability is the
        hypergeometric ``C(d - d_A, k) / C(d, k)``.
    loss_probability:
        Independent per-contact loss (extension): each contact is
        thinned with this probability, scaling the per-draw hit
        probability to ``(1 - loss) d_A(u)/d(u)``.
    """

    def __init__(
        self,
        graph: Graph,
        source: int,
        *,
        branching: float = 2.0,
        replacement: bool = True,
        loss_probability: float = 0.0,
    ) -> None:
        check_size(graph.n_vertices)
        self._graph = graph
        self._n = graph.n_vertices
        self._size = 1 << self._n
        self._source = resolve_vertex(graph, source, role="source")
        self._mandatory, self._rho = validate_branching(branching)
        validate_replacement(graph, self._mandatory, self._rho, replacement)
        self._replacement = bool(replacement)
        self._loss = validate_loss(loss_probability, replacement)
        self._popcount = popcount_table(self._n)
        self._neighbor_masks = np.array(
            [sum(1 << int(v) for v in graph.neighbors(u)) for u in range(self._n)],
            dtype=np.int64,
        )
        self._degrees = graph.degrees.astype(np.float64)
        self._matrix: np.ndarray | None = None

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def source(self) -> int:
        """The persistent source vertex."""
        return self._source

    # ------------------------------------------------------------------
    # One-step machinery
    # ------------------------------------------------------------------

    def infection_probabilities(self, mask: int) -> np.ndarray:
        """Per-vertex next-round infection probabilities given ``A_t = mask``.

        The source's entry is reported as 1 (it is always infected).
        """
        overlap = self._popcount[self._neighbor_masks & mask].astype(np.float64)
        degrees = self._degrees
        if self._replacement:
            hit_fraction = (1.0 - self._loss) * overlap / degrees
            miss = (1.0 - hit_fraction) ** self._mandatory
            if self._rho > 0.0:
                miss = miss * (1.0 - self._rho * hit_fraction)
        else:
            # Hypergeometric miss: C(d - a, k) / C(d, k) as a product of
            # per-draw factors; an extra distinct draw (probability rho)
            # multiplies in (d - a - k) / (d - k).
            uninfected = degrees - overlap
            miss = np.ones(self._n, dtype=np.float64)
            for draw in range(self._mandatory):
                miss *= np.clip(uninfected - draw, 0.0, None) / (degrees - draw)
            if self._rho > 0.0:
                k = self._mandatory
                extra_miss = np.clip(uninfected - k, 0.0, None) / (degrees - k)
                miss *= (1.0 - self._rho) + self._rho * extra_miss
        probabilities = 1.0 - miss
        probabilities[self._source] = 1.0
        return probabilities

    def step_distribution(self, mask: int) -> np.ndarray:
        """Exact distribution of ``A_{t+1}`` given ``A_t = mask``."""
        probabilities = self.infection_probabilities(mask)
        distribution = np.zeros(self._size, dtype=np.float64)
        distribution[1 << self._source] = 1.0
        for u in range(self._n):
            if u == self._source:
                continue
            distribution = bernoulli_fold(distribution, u, float(probabilities[u]), self._n)
        return distribution

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            matrix = np.zeros((self._size, self._size), dtype=np.float64)
            source_bit = 1 << self._source
            for mask in range(self._size):
                if mask & source_bit:
                    matrix[mask] = self.step_distribution(mask)
            self._matrix = matrix
        return self._matrix

    def evolve(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """Evolve a subset distribution ``steps`` rounds forward."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        current = np.asarray(distribution, dtype=np.float64).copy()
        if current.shape != (self._size,):
            raise ValueError(
                f"distribution must have shape ({self._size},), got {current.shape}"
            )
        if self._n <= MATRIX_LIMIT and steps > 0:
            matrix = self._ensure_matrix()
            for _ in range(steps):
                current = current @ matrix
            return current
        for _ in range(steps):
            next_distribution = np.zeros_like(current)
            for mask in np.flatnonzero(current > 0.0):
                next_distribution += current[mask] * self.step_distribution(int(mask))
            current = next_distribution
        return current

    # ------------------------------------------------------------------
    # Quantities of interest
    # ------------------------------------------------------------------

    def initial_distribution(self) -> np.ndarray:
        """Delta at ``A_0 = {v}``."""
        distribution = np.zeros(self._size, dtype=np.float64)
        distribution[1 << self._source] = 1.0
        return distribution

    def distribution_at(self, t: int) -> np.ndarray:
        """Exact law of ``A_t`` started from ``A_0 = {v}``."""
        return self.evolve(self.initial_distribution(), t)

    def disjoint_probability(self, subset_mask: int, t: int) -> float:
        """``P(C ∩ A_t = ∅ | A_0 = {v})`` for ``C`` given as a mask.

        This is the right-hand side of the paper's duality theorem.
        """
        distribution = self.distribution_at(t)
        selector = masks_disjoint_from(subset_mask, self._n)
        return float(distribution[selector].sum())

    def membership_probability(self, vertex: int, t: int) -> float:
        """``P(u ∈ A_t | A_0 = {v})``."""
        vertex = resolve_vertex(self._graph, vertex, role="queried")
        distribution = self.distribution_at(t)
        all_masks = np.arange(self._size, dtype=np.int64)
        selector = (all_masks >> vertex) & 1 == 1
        return float(distribution[selector].sum())

    def expected_size_series(self, t_max: int) -> np.ndarray:
        """``E|A_t|`` for ``t = 0 .. t_max`` started from the source delta."""
        sizes = self._popcount.astype(np.float64)
        series = np.empty(t_max + 1, dtype=np.float64)
        current = self.initial_distribution()
        series[0] = float((current * sizes).sum())
        for t in range(1, t_max + 1):
            current = self.evolve(current, 1)
            series[t] = float((current * sizes).sum())
        return series

    def infection_time_distribution(self, t_max: int) -> tuple[np.ndarray, float]:
        """First-passage law of ``infec(v)`` truncated at ``t_max``.

        Returns ``(pmf, tail)`` where ``pmf[t] = P(infec(v) = t)`` for
        ``t = 0 .. t_max`` and ``tail = P(infec(v) > t_max)``.  The
        full state is *not* absorbing in BIPS (infection can recede),
        so first passage is computed by removing mass as it first
        reaches the full mask.
        """
        full = self._size - 1
        pmf = np.zeros(t_max + 1, dtype=np.float64)
        current = self.initial_distribution()
        pmf[0] = float(current[full])
        current[full] = 0.0
        for t in range(1, t_max + 1):
            current = self.evolve(current, 1)
            pmf[t] = float(current[full])
            current[full] = 0.0
        return pmf, float(current.sum())

    def stationary_distribution(
        self, *, tolerance: float = 1e-12, t_cap: int = 100_000
    ) -> np.ndarray:
        """Stationary law of the BIPS chain.

        For a connected graph this is the point mass at the full set:
        once ``A_t = V``, every sample of every vertex hits an infected
        neighbour, so ``V`` is absorbing, and Theorem 2 guarantees it
        is reached.  The method power-iterates to that fixed point and
        is kept as an executable statement of the absorption property;
        the *interesting* transient structure is exposed by
        :meth:`quasi_stationary_distribution`.
        """
        current = self.initial_distribution()
        for _ in range(t_cap):
            next_distribution = self.evolve(current, 1)
            if float(np.abs(next_distribution - current).sum()) < tolerance:
                return next_distribution
            current = next_distribution
        raise RuntimeError(
            f"stationary distribution did not converge within {t_cap} steps"
        )

    def quasi_stationary_distribution(
        self, *, tolerance: float = 1e-12, t_cap: int = 100_000
    ) -> tuple[np.ndarray, float]:
        """Quasi-stationary law conditioned on not-yet-full infection.

        Power-iterates the sub-stochastic chain with the full state
        removed, renormalising each round.  Returns ``(qsd, theta)``
        where ``qsd`` is the limiting conditional law of ``A_t`` given
        ``infec(v) > t`` and ``theta`` is the per-round survival factor:
        ``P(infec(v) > t) ~ C·theta^t`` — the geometric tail rate the
        w.h.p. analysis (and experiment E11) measures.
        """
        full = self._size - 1
        current = self.initial_distribution()
        current[full] = 0.0
        total = float(current.sum())
        if total == 0.0:
            raise RuntimeError("the initial state is already fully infected")
        current /= total
        theta = 0.0
        for _ in range(t_cap):
            next_distribution = self.evolve(current, 1)
            next_distribution[full] = 0.0
            survival = float(next_distribution.sum())
            if survival <= 0.0:
                raise RuntimeError(
                    "absorption is certain in one round from every reachable "
                    "state; no quasi-stationary law exists (e.g. K2)"
                )
            next_distribution /= survival
            if (
                abs(survival - theta) < tolerance
                and float(np.abs(next_distribution - current).sum()) < tolerance
            ):
                return next_distribution, survival
            theta = survival
            current = next_distribution
        raise RuntimeError(
            f"quasi-stationary distribution did not converge within {t_cap} steps"
        )

    def quasi_stationary_mean_size(self, **kwargs) -> float:
        """Mean infected-set size under the quasi-stationary law.

        The "endemic level" of the transient phase: how much of the
        graph is typically infected while full infection has not yet
        occurred.
        """
        qsd, _ = self.quasi_stationary_distribution(**kwargs)
        sizes = self._popcount.astype(np.float64)
        return float((qsd * sizes).sum())

    def expected_infection_time(self, *, tolerance: float = 1e-12, t_cap: int = 10_000) -> float:
        """``E[infec(v)]`` by first-passage summation to the given tolerance."""
        full = self._size - 1
        current = self.initial_distribution()
        expectation = 0.0
        survival = 1.0 - float(current[full])
        current[full] = 0.0
        t = 0
        while survival > tolerance:
            t += 1
            if t > t_cap:
                raise RuntimeError(
                    f"expected infection time did not converge within {t_cap} steps "
                    f"(remaining mass {survival:.3e})"
                )
            current = self.evolve(current, 1)
            absorbed = float(current[full])
            expectation += t * absorbed
            survival -= absorbed
            current[full] = 0.0
        return expectation
