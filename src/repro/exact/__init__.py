"""Exact finite-state engines for small graphs.

Both COBRA and BIPS are Markov chains on the power set of vertices, so
for graphs with at most :data:`~repro.exact.subsets.MAX_EXACT_VERTICES`
vertices the full distribution over subsets can be evolved exactly
(bitmask-indexed probability vectors).  This turns the paper's duality
theorem — an exact identity, not an asymptotic — into a
machine-precision assertion, and provides ground truth against which
the Monte-Carlo simulators are validated.
"""

from repro.exact.bips_exact import ExactBips
from repro.exact.cobra_exact import ExactCobra
from repro.exact.cover_exact import ExactCobraCover
from repro.exact.duality import (
    MonteCarloDualityPoint,
    duality_gap,
    duality_monte_carlo,
    duality_series,
)
from repro.exact.subsets import (
    MAX_EXACT_VERTICES,
    mask_from_vertices,
    popcount_table,
    vertices_from_mask,
)

__all__ = [
    "ExactBips",
    "ExactCobra",
    "ExactCobraCover",
    "duality_gap",
    "duality_series",
    "duality_monte_carlo",
    "MonteCarloDualityPoint",
    "mask_from_vertices",
    "vertices_from_mask",
    "popcount_table",
    "MAX_EXACT_VERTICES",
]
