"""Exact cover-time law of COBRA on tiny graphs.

The cover time depends on the pair ``(C_t, covered set)``, so its state
space is pairs ``(A, V)`` with ``A ⊆ V`` — up to ``3^n`` states, which
is tractable for `n` up to ~8.  The engine evolves a sparse dictionary
of state probabilities, absorbing mass whose covered set reaches `V`;
the absorbed-by-round sequence is the exact pmf of ``cov``.

This closes the loop the duality cannot: Theorem 4 gives exact
*hitting-tail* identities per target vertex, but the cover time is the
maximum of dependent hitting times, for which no closed form exists —
here it is computed exactly and used to validate the Monte-Carlo
cover-time machinery end-to-end.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.process import resolve_vertex_set, validate_branching
from repro.errors import ExactEngineError
from repro.exact.cobra_exact import ExactCobra
from repro.exact.subsets import mask_from_vertices
from repro.graphs.base import Graph

#: Pair-state enumeration is 3^n-ish; keep n small.
MAX_COVER_EXACT_VERTICES = 8


class ExactCobraCover:
    """Exact distribution of the COBRA cover time on a small graph.

    Parameters
    ----------
    graph:
        A connected graph with at most
        :data:`MAX_COVER_EXACT_VERTICES` vertices.
    branching:
        Branching factor (real ``>= 1``).
    include_start_in_cover:
        Paper semantics (default false): the start set does not count
        as covered at round 0.
    replacement:
        Neighbour sampling with (default) or without replacement.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        branching: float = 2.0,
        include_start_in_cover: bool = False,
        replacement: bool = True,
    ) -> None:
        if graph.n_vertices > MAX_COVER_EXACT_VERTICES:
            raise ExactEngineError(
                f"exact cover law enumerates ~3^n pair states; n={graph.n_vertices} "
                f"exceeds the limit of {MAX_COVER_EXACT_VERTICES} vertices"
            )
        validate_branching(branching)
        self._graph = graph
        self._n = graph.n_vertices
        self._full = (1 << self._n) - 1
        self._include_start = include_start_in_cover
        self._engine = ExactCobra(graph, branching=branching, replacement=replacement)

    def cover_time_distribution(
        self, start: int | Iterable[int], *, t_max: int = 200, tolerance: float = 1e-12
    ) -> tuple[np.ndarray, float]:
        """``(pmf, tail)`` of ``cov`` from ``C_0 = start``.

        ``pmf[t] = P(cov = t)`` for ``t = 0 .. t_max``; ``tail`` is the
        unabsorbed mass beyond ``t_max``.  Evolution stops early once
        the tail drops below ``tolerance``.
        """
        start_vertices = resolve_vertex_set(self._graph, start, role="start")
        start_mask = mask_from_vertices(start_vertices.tolist())
        covered0 = start_mask if self._include_start else 0

        pmf = np.zeros(t_max + 1, dtype=np.float64)
        states: dict[tuple[int, int], float] = {}
        if covered0 == self._full:
            pmf[0] = 1.0
            return pmf, 0.0
        states[(start_mask, covered0)] = 1.0

        remaining = 1.0
        for t in range(1, t_max + 1):
            next_states: dict[tuple[int, int], float] = {}
            absorbed = 0.0
            for (active, covered), probability in states.items():
                row = self._engine.step_distribution(active)
                for next_active in np.flatnonzero(row > 0.0):
                    next_active = int(next_active)
                    mass = probability * float(row[next_active])
                    next_covered = covered | next_active
                    if next_covered == self._full:
                        absorbed += mass
                    else:
                        key = (next_active, next_covered)
                        next_states[key] = next_states.get(key, 0.0) + mass
            pmf[t] = absorbed
            remaining -= absorbed
            states = next_states
            if remaining < tolerance:
                break
        return pmf, max(remaining, 0.0)

    def expected_cover_time(
        self, start: int | Iterable[int], *, t_max: int = 500, tolerance: float = 1e-10
    ) -> float:
        """``E[cov]`` from the exact pmf (requires the tail to vanish)."""
        pmf, tail = self.cover_time_distribution(
            start, t_max=t_max, tolerance=tolerance
        )
        if tail > 100 * tolerance:
            raise ExactEngineError(
                f"cover-time tail {tail:.2e} has not converged within {t_max} rounds"
            )
        return float(np.dot(np.arange(pmf.size), pmf)) + tail * t_max

    def survival_series(
        self, start: int | Iterable[int], t_max: int
    ) -> np.ndarray:
        """``P(cov > t)`` for ``t = 0 .. t_max``."""
        pmf, tail = self.cover_time_distribution(start, t_max=t_max, tolerance=0.0)
        return 1.0 - np.cumsum(pmf)
