"""Bitmask subset algebra underlying the exact engines.

A subset ``S ⊆ {0, .., n-1}`` is the integer mask ``Σ_{u ∈ S} 2^u``;
a distribution over subsets is a length-``2^n`` float vector indexed by
mask.  The two fold operations here are the building blocks of the
exact process steps:

* :func:`bernoulli_fold` — extend a distribution by one independent
  Bernoulli vertex (used by the exact BIPS step, whose next state is a
  product of per-vertex Bernoullis);
* :func:`or_with_bit` — the union-convolution of a distribution with a
  deterministic singleton ``{x}`` (used by the exact COBRA step, whose
  next state is a union of uniformly chosen singletons).

Both are implemented as reshapes so each fold is O(2^n) NumPy work.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

import numpy as np

from repro.errors import ExactEngineError

#: Hard ceiling on exact-engine graph sizes (2^n-state vectors).
MAX_EXACT_VERTICES = 16


def check_size(n_vertices: int, *, limit: int = MAX_EXACT_VERTICES) -> None:
    """Refuse graphs whose power set would not fit in memory/time."""
    if n_vertices > limit:
        raise ExactEngineError(
            f"exact engines enumerate 2^n subsets; n={n_vertices} exceeds the "
            f"limit of {limit} vertices"
        )


def mask_from_vertices(vertices: Iterable[int]) -> int:
    """Bitmask of a vertex collection (duplicates are harmless)."""
    mask = 0
    for vertex in vertices:
        if vertex < 0:
            raise ValueError(f"vertex indices must be non-negative, got {vertex}")
        mask |= 1 << int(vertex)
    return mask


def vertices_from_mask(mask: int) -> list[int]:
    """Sorted vertex list encoded by ``mask``."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    vertices = []
    position = 0
    while mask:
        if mask & 1:
            vertices.append(position)
        mask >>= 1
        position += 1
    return vertices


@lru_cache(maxsize=32)
def popcount_table(n_bits: int) -> np.ndarray:
    """Popcounts of all masks ``0 .. 2^n_bits - 1`` (cached, read-only)."""
    check_size(n_bits)
    table = np.zeros(1, dtype=np.int64)
    for _ in range(n_bits):
        table = np.concatenate([table, table + 1])
    table.flags.writeable = False
    return table


def _as_bit_view(vector: np.ndarray, bit: int, n_bits: int) -> np.ndarray:
    """Reshape a ``2^n``-vector so axis 1 is the given bit (0 = low bit)."""
    low = 1 << bit
    high = 1 << (n_bits - bit - 1)
    return vector.reshape(high, 2, low)


def bernoulli_fold(distribution: np.ndarray, bit: int, probability: float, n_bits: int) -> np.ndarray:
    """Fold an independent Bernoulli vertex into a subset distribution.

    Requires (and assumes) that the input places no mass on masks with
    ``bit`` already set — the exact BIPS step folds each vertex exactly
    once, so the precondition holds by construction.
    """
    view = _as_bit_view(distribution, bit, n_bits)
    out = np.empty_like(view)
    out[:, 0, :] = view[:, 0, :] * (1.0 - probability)
    out[:, 1, :] = view[:, 0, :] * probability
    return out.reshape(-1)


def or_with_bit(distribution: np.ndarray, bit: int, n_bits: int) -> np.ndarray:
    """Union-convolve a subset distribution with the deterministic set ``{bit}``.

    Returns the distribution of ``S ∪ {x}`` where ``S`` follows the
    input distribution: all mass moves to the bit-set half.
    """
    view = _as_bit_view(distribution, bit, n_bits)
    out = np.zeros_like(view)
    out[:, 1, :] = view[:, 0, :] + view[:, 1, :]
    return out.reshape(-1)


def masks_disjoint_from(mask: int, n_bits: int) -> np.ndarray:
    """Boolean selector over all ``2^n_bits`` masks: disjoint from ``mask``."""
    all_masks = np.arange(1 << n_bits, dtype=np.int64)
    return (all_masks & mask) == 0


def masks_containing(vertex: int, n_bits: int) -> np.ndarray:
    """Boolean selector over all masks: those containing ``vertex``."""
    all_masks = np.arange(1 << n_bits, dtype=np.int64)
    return (all_masks >> vertex) & 1 == 1
