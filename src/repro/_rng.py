"""Random-number-generator plumbing shared across the library.

Every stochastic entry point in :mod:`repro` accepts a ``seed`` argument
of type :data:`SeedLike` and normalises it through
:func:`ensure_generator`.  Ensembles of independent runs derive child
generators through :func:`spawn_generators`, which uses NumPy's
``SeedSequence.spawn`` so that per-run streams are statistically
independent and the whole ensemble is reproducible from one integer.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Anything accepted as a source of randomness: ``None`` (OS entropy),
#: an integer, a tuple/list of integers (useful for composite seeds
#: like ``(master, n, r)``), a ``SeedSequence``, or a ``Generator``.
SeedLike = Union[
    None, int, Sequence[int], np.random.SeedSequence, np.random.Generator
]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives fresh OS entropy; an ``int``, integer sequence, or
    ``SeedSequence`` is used as the seed; an existing ``Generator`` is
    returned unchanged (not copied), so callers sharing a generator
    share its stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent child ``SeedSequence``s from ``seed``.

    The picklable form of :func:`spawn_generators`: child sequences are
    what the parallel layer ships to worker processes, and child ``i``
    is the same object regardless of how the work is later sharded.
    If ``seed`` is a ``Generator`` the children are spawned from its
    internal bit generator's sequence, advancing its spawn counter;
    otherwise a fresh ``SeedSequence`` is built.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return list(seed.bit_generator.seed_seq.spawn(count))
    return list(derive_seed_sequence(seed).spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    If ``seed`` is already a ``Generator`` the children are spawned from
    its internal bit generator, advancing it; otherwise a fresh
    ``SeedSequence`` is built.  Children are independent of each other.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]


def derive_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Return a ``SeedSequence`` equivalent to ``seed`` for spawning.

    Generators contribute their underlying seed sequence; integers,
    integer sequences, and ``None`` build a fresh sequence.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
        if isinstance(seq, np.random.SeedSequence):
            return seq
        return np.random.SeedSequence(None)
    return np.random.SeedSequence(seed)
