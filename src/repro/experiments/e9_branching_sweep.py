"""E9 — the motivation: speed vs per-round transmission budget.

The paper motivates COBRA as propagating fast *with a limited number of
transmissions per vertex per step*.  This experiment puts the branching
factor sweep (including the fractional regime of Theorem 3) and the
classical push and push–pull baselines on a common axis: rounds to
cover vs total messages and peak per-round messages.

Expected shape: ``k = 1`` is catastrophically slow (E7's walk); any
``k >= 1 + ρ`` is logarithmic, with diminishing speed returns and
linearly growing message cost as `k` rises; push/push–pull match the
round count but commit every informed vertex (resp. every vertex) to
transmit every round.
"""

from __future__ import annotations

import numpy as np

from repro._rng import spawn_generators
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.batch import batch_cobra_traces
from repro.core.metrics import summarize_trace
from repro.core.pull import PullProcess
from repro.core.push import PushProcess
from repro.core.pushpull import PushPullProcess
from repro.core.process import SpreadingProcess
from repro.core.runner import default_max_rounds, run_process
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E9Workload

SPEC = ExperimentSpec(
    experiment_id="E9",
    title="Branching factor vs transmission budget",
    claim=(
        "COBRA trades per-round transmission budget against speed: small k already "
        "achieves logarithmic cover, unlike k=1; push/push-pull need every (informed) "
        "vertex transmitting every round"
    ),
    paper_reference="Section 1 (motivation) and Theorems 1, 3",
    # v2: the COBRA sweep's message accounting rides the batched trace
    # engine (same distribution, different same-seed draws).
    version="2",
)

GRAPH_N = 1024
GRAPH_R = 8
QUICK_BRANCHINGS = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0)
FULL_BRANCHINGS = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
QUICK_SAMPLES = 8
FULL_SAMPLES = 20

#: Workload type this experiment runs from.
WORKLOAD = E9Workload


def preset(mode: str) -> E9Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E9Workload(
            n=GRAPH_N, r=GRAPH_R, branchings=QUICK_BRANCHINGS, samples=QUICK_SAMPLES
        )
    if mode == "full":
        return E9Workload(
            n=GRAPH_N, r=GRAPH_R, branchings=FULL_BRANCHINGS, samples=FULL_SAMPLES
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def _measure_with_traces(
    build, n_samples: int, seed, max_rounds: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(completion times, total messages, peak per-round messages).

    The sequential trace path, kept for the push/pull baselines (which
    have no batch engine); the COBRA sweep uses
    :func:`_measure_cobra_traces` instead.
    """
    times = np.empty(n_samples, dtype=np.int64)
    totals = np.empty(n_samples, dtype=np.int64)
    peaks = np.empty(n_samples, dtype=np.int64)
    for i, rng in enumerate(spawn_generators(seed, n_samples)):
        process: SpreadingProcess = build(rng)
        result = run_process(
            process, max_rounds=max_rounds, record_trace=True, raise_on_timeout=True
        )
        summary = summarize_trace(result.trace)
        times[i] = result.completion_time
        totals[i] = summary.total_transmissions
        peaks[i] = summary.peak_transmissions_per_round
    return times, totals, peaks


def _measure_cobra_traces(
    graph, branching: float, n_samples: int, seed, max_rounds: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The batched equivalent of :func:`_measure_with_traces` for COBRA.

    One :func:`~repro.core.batch.batch_cobra_traces` call replaces
    ``n_samples`` stepped replicas: the per-round transmission counts
    come back as an ``(R, T)`` matrix whose row sums/maxima are the
    per-replica message totals and peaks.
    """
    traces = batch_cobra_traces(
        graph,
        0,
        branching=branching,
        n_replicas=n_samples,
        seed=seed,
        max_rounds=max_rounds,
    )
    return (
        traces.completion_times,
        traces.total_transmissions(),
        traces.peak_transmissions(),
    )


def run(
    workload: "E9Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E9 and return its table and findings."""
    wl = resolve_workload(E9Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    branchings, samples = wl.branchings, wl.samples
    graph_n = wl.n

    graph, lam = expander_with_gap(graph_n, wl.r, seed=seed)
    cap = default_max_rounds(graph)
    table = Table(
        [
            "protocol",
            "mean rounds",
            "mean total msgs",
            "msgs / vertex",
            "peak msgs / round",
            "peak / n",
        ]
    )

    cobra_rows: dict[float, tuple[float, float]] = {}
    for branching in branchings:
        times, totals, peaks = _measure_cobra_traces(
            graph,
            branching,
            samples,
            (seed, int(branching * 100), 91),
            cap,
        )
        time_stats, total_stats, peak_stats = (
            summarize(times),
            summarize(totals),
            summarize(peaks),
        )
        table.add_row(
            [
                f"COBRA k={branching}",
                time_stats.mean,
                total_stats.mean,
                total_stats.mean / graph_n,
                peak_stats.mean,
                peak_stats.mean / graph_n,
            ]
        )
        cobra_rows[branching] = (time_stats.mean, total_stats.mean)

    for protocol, build in (
        ("push", lambda rng: PushProcess(graph, 0, seed=rng)),
        ("pull", lambda rng: PullProcess(graph, 0, seed=rng)),
        ("push-pull", lambda rng: PushPullProcess(graph, 0, seed=rng)),
    ):
        times, totals, peaks = _measure_with_traces(
            build, samples, (seed, hashd(protocol), 92), cap
        )
        time_stats, total_stats, peak_stats = (
            summarize(times),
            summarize(totals),
            summarize(peaks),
        )
        table.add_row(
            [
                protocol,
                time_stats.mean,
                total_stats.mean,
                total_stats.mean / graph_n,
                peak_stats.mean,
                peak_stats.mean / graph_n,
            ]
        )

    # The headline comparison uses k=1 vs k=2 when the sweep includes
    # them (the presets do); bespoke branching grids fall back to their
    # slowest and fastest sweep points.
    low_k = 1.0 if 1.0 in cobra_rows else min(cobra_rows)
    high_k = 2.0 if 2.0 in cobra_rows else max(cobra_rows)
    k1_rounds = cobra_rows[low_k][0]
    k2_rounds = cobra_rows[high_k][0]
    findings = [
        (
            f"k={low_k:g} needs {k1_rounds:.0f} rounds vs {k2_rounds:.0f} for k={high_k:g} "
            f"on the same graph "
            f"(x{k1_rounds / k2_rounds:.0f} speedup from a single extra push)"
        ),
        "beyond k=2 the round count improves only marginally while message cost grows ~ k",
        (
            "push/push-pull match COBRA's round count but their peak per-round load is ~n "
            "messages; COBRA's transmitting set is only the token holders"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "n": graph_n,
                "r": wl.r,
                "lambda": lam,
                "branchings": list(branchings),
                "samples": samples,
                "engine": "batch-traces",
            },
        ),
        tables={"protocol comparison": table},
        findings=findings,
    )


def hashd(label: str) -> int:
    """Small deterministic integer id for a label (seed component)."""
    return sum(ord(ch) * (i + 1) for i, ch in enumerate(label)) % 100_000
