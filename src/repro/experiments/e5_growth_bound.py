"""E5 — Lemma 1 / Corollary 1: the one-step expected-growth lower bound.

The lemma asserts, for BIPS with `k = 2` on a connected regular graph,

``E(|A_{t+1}| | A_t = A) >= |A| (1 + (1-λ²)(1 - |A|/n))``  for every A,

and Corollary 1 scales the gain by ``ρ`` for branching ``1 + ρ``.
Both sides are *deterministic* functions of the state, so the check is
noise-free: we compute the exact conditional expectation (paper
Eq. (3)) and the bound for many infected sets — exhaustively on small
graphs, stratified-random on larger ones — and report the minimum
exact/bound ratio, which the lemma predicts to be ``>= 1``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.graphs.base import Graph
from repro.graphs.spectral import lambda_second
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.families import GraphCase
from repro.scenarios.workloads import E5Workload
from repro.theory.growth import growth_bound_ratio, minimum_growth_ratio

SPEC = ExperimentSpec(
    experiment_id="E5",
    title="One-step growth lower bound for BIPS",
    claim=(
        "E(|A_{t+1}| | A_t = A) >= |A| (1 + rho (1-lambda^2)(1 - |A|/n)) for every "
        "infected set A on every connected regular graph (rho = 1 for k = 2)"
    ),
    paper_reference="Lemma 1 and Corollary 1",
    version="1",
)

EXHAUSTIVE_LIMIT = 12

#: Workload type this experiment runs from.
WORKLOAD = E5Workload

#: Declarative graph cases of the two presets.  Seeded generators name
#: a ``seed_offset`` reproducing the pre-scenario ``seed + i`` pattern.
_QUICK_CASES = (
    GraphCase("petersen (exhaustive)", "petersen"),
    GraphCase("cycle C9 (exhaustive)", "cycle", (9,)),
    GraphCase("complete K8 (exhaustive)", "complete", (8,)),
    GraphCase("random 4-regular n=64", "random_regular", (64, 4), seed_offset=0),
    GraphCase("random 8-regular n=128", "random_regular", (128, 8), seed_offset=1),
    GraphCase("circulant n=64 {1,2,5}", "circulant", (64, (1, 2, 5))),
    GraphCase("torus 5x5", "torus", ((5, 5),)),
)
_FULL_CASES = (
    GraphCase("petersen (exhaustive)", "petersen"),
    GraphCase("cycle C9 (exhaustive)", "cycle", (9,)),
    GraphCase("cycle C11 (exhaustive)", "cycle", (11,)),
    GraphCase("complete K8 (exhaustive)", "complete", (8,)),
    GraphCase("complete K12 (exhaustive)", "complete", (12,)),
    GraphCase("random 4-regular n=64", "random_regular", (64, 4), seed_offset=0),
    GraphCase("random 8-regular n=128", "random_regular", (128, 8), seed_offset=1),
    GraphCase("random 16-regular n=256", "random_regular", (256, 16), seed_offset=2),
    GraphCase("circulant n=64 {1,2,5}", "circulant", (64, (1, 2, 5))),
    GraphCase("torus 5x5", "torus", ((5, 5),)),
    GraphCase("torus 3x3x3", "torus", ((3, 3, 3),)),
)


def preset(mode: str) -> E5Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E5Workload(
            sampled_sets=200, cases=_QUICK_CASES, exhaustive_limit=EXHAUSTIVE_LIMIT
        )
    if mode == "full":
        return E5Workload(
            sampled_sets=1000, cases=_FULL_CASES, exhaustive_limit=EXHAUSTIVE_LIMIT
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def _exhaustive_minimum(graph: Graph, source: int, lam: float, branching: float) -> float:
    """Minimum ratio over *all* source-containing infected sets."""
    n = graph.n_vertices
    worst = np.inf
    for mask_bits in range(1 << n):
        if not (mask_bits >> source) & 1:
            continue
        mask = np.array([(mask_bits >> u) & 1 == 1 for u in range(n)])
        worst = min(worst, growth_bound_ratio(graph, mask, source, lam, branching=branching))
    return float(worst)


def run(
    workload: "E5Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E5 and return its table and findings."""
    wl = resolve_workload(E5Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sampled_sets = wl.sampled_sets
    cases: list[tuple[str, Graph]] = [
        (case.label, case.build(seed)) for case in wl.cases
    ]

    table = Table(["graph", "branching", "lambda", "states checked", "min exact/bound"])
    overall_worst = np.inf
    branchings = wl.branchings
    for case_label, graph in cases:
        lam = lambda_second(graph)
        source = 0
        exhaustive = graph.n_vertices <= wl.exhaustive_limit
        for branching in branchings:
            if exhaustive:
                states = (1 << graph.n_vertices) // 2
                worst = _exhaustive_minimum(graph, source, lam, branching)
            else:
                states = sampled_sets
                worst = minimum_growth_ratio(
                    graph,
                    source,
                    lam,
                    branching=branching,
                    n_random_sets=sampled_sets,
                    seed=(seed, graph.n_vertices, int(branching * 100)),
                )
            overall_worst = min(overall_worst, worst)
            table.add_row([case_label, branching, lam, states, worst])

    holds = overall_worst >= 1.0 - 1e-9
    findings = [
        (
            f"minimum exact/bound ratio over all graphs, branchings and states: "
            f"{overall_worst:.6f} — the bound {'HOLDS' if holds else 'FAILS'} "
            f"(Lemma 1 predicts >= 1)"
        ),
        "equality is approached at |A| = n (both sides equal n), so ratios near 1 are expected",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {"branchings": list(branchings), "sampled_sets": sampled_sets},
        ),
        tables={"growth-bound ratios": table},
        findings=findings,
    )
