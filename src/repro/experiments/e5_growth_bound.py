"""E5 — Lemma 1 / Corollary 1: the one-step expected-growth lower bound.

The lemma asserts, for BIPS with `k = 2` on a connected regular graph,

``E(|A_{t+1}| | A_t = A) >= |A| (1 + (1-λ²)(1 - |A|/n))``  for every A,

and Corollary 1 scales the gain by ``ρ`` for branching ``1 + ρ``.
Both sides are *deterministic* functions of the state, so the check is
noise-free: we compute the exact conditional expectation (paper
Eq. (3)) and the bound for many infected sets — exhaustively on small
graphs, stratified-random on larger ones — and report the minimum
exact/bound ratio, which the lemma predicts to be ``>= 1``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.graphs.base import Graph
from repro.graphs.generators import (
    circulant,
    complete,
    cycle,
    petersen,
    random_regular,
    torus,
)
from repro.graphs.spectral import lambda_second
from repro.theory.growth import growth_bound_ratio, minimum_growth_ratio

SPEC = ExperimentSpec(
    experiment_id="E5",
    title="One-step growth lower bound for BIPS",
    claim=(
        "E(|A_{t+1}| | A_t = A) >= |A| (1 + rho (1-lambda^2)(1 - |A|/n)) for every "
        "infected set A on every connected regular graph (rho = 1 for k = 2)"
    ),
    paper_reference="Lemma 1 and Corollary 1",
)

EXHAUSTIVE_LIMIT = 12


def _exhaustive_minimum(graph: Graph, source: int, lam: float, branching: float) -> float:
    """Minimum ratio over *all* source-containing infected sets."""
    n = graph.n_vertices
    worst = np.inf
    for mask_bits in range(1 << n):
        if not (mask_bits >> source) & 1:
            continue
        mask = np.array([(mask_bits >> u) & 1 == 1 for u in range(n)])
        worst = min(worst, growth_bound_ratio(graph, mask, source, lam, branching=branching))
    return float(worst)


def run(mode: str = "quick", seed: int = 0) -> ExperimentResult:
    """Run E5 and return its table and findings."""
    if mode == "quick":
        sampled_sets = 200
        cases: list[tuple[str, Graph]] = [
            ("petersen (exhaustive)", petersen()),
            ("cycle C9 (exhaustive)", cycle(9)),
            ("complete K8 (exhaustive)", complete(8)),
            ("random 4-regular n=64", random_regular(64, 4, seed=seed)),
            ("random 8-regular n=128", random_regular(128, 8, seed=seed + 1)),
            ("circulant n=64 {1,2,5}", circulant(64, (1, 2, 5))),
            ("torus 5x5", torus((5, 5))),
        ]
    elif mode == "full":
        sampled_sets = 1000
        cases = [
            ("petersen (exhaustive)", petersen()),
            ("cycle C9 (exhaustive)", cycle(9)),
            ("cycle C11 (exhaustive)", cycle(11)),
            ("complete K8 (exhaustive)", complete(8)),
            ("complete K12 (exhaustive)", complete(12)),
            ("random 4-regular n=64", random_regular(64, 4, seed=seed)),
            ("random 8-regular n=128", random_regular(128, 8, seed=seed + 1)),
            ("random 16-regular n=256", random_regular(256, 16, seed=seed + 2)),
            ("circulant n=64 {1,2,5}", circulant(64, (1, 2, 5))),
            ("torus 5x5", torus((5, 5))),
            ("torus 3x3x3", torus((3, 3, 3))),
        ]
    else:
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")

    table = Table(["graph", "branching", "lambda", "states checked", "min exact/bound"])
    overall_worst = np.inf
    branchings = (2.0, 1.5, 1.25)
    for label, graph in cases:
        lam = lambda_second(graph)
        source = 0
        exhaustive = graph.n_vertices <= EXHAUSTIVE_LIMIT
        for branching in branchings:
            if exhaustive:
                states = (1 << graph.n_vertices) // 2
                worst = _exhaustive_minimum(graph, source, lam, branching)
            else:
                states = sampled_sets
                worst = minimum_growth_ratio(
                    graph,
                    source,
                    lam,
                    branching=branching,
                    n_random_sets=sampled_sets,
                    seed=(seed, graph.n_vertices, int(branching * 100)),
                )
            overall_worst = min(overall_worst, worst)
            table.add_row([label, branching, lam, states, worst])

    holds = overall_worst >= 1.0 - 1e-9
    findings = [
        (
            f"minimum exact/bound ratio over all graphs, branchings and states: "
            f"{overall_worst:.6f} — the bound {'HOLDS' if holds else 'FAILS'} "
            f"(Lemma 1 predicts >= 1)"
        ),
        "equality is approached at |A| = n (both sides equal n), so ratios near 1 are expected",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=mode,
        seed=seed,
        parameters={"branchings": list(branchings), "sampled_sets": sampled_sets},
        tables={"growth-bound ratios": table},
        findings=findings,
    )
