"""Campaigns: batches of experiment runs with a saved manifest.

A campaign is a declarative list of experiment runs — which ids, which
mode (or named scenario, or workload overrides), which seeds —
executed in order with every result saved to disk
next to a manifest recording what was run, when, and where each result
landed.  This is the reproducibility wrapper around the registry:
``EXPERIMENTS.md`` numbers come from a one-line campaign.

Example::

    from repro.experiments.campaign import Campaign, run_campaign

    campaign = Campaign(
        name="full-reproduction",
        entries=[CampaignEntry(experiment_id=eid, mode="full", seed=0)
                 for eid in experiment_ids()],
    )
    manifest = run_campaign(campaign, "results/")

With ``cache_dir=`` set, entries whose ``(experiment, mode, seed,
parameters)`` identity is already in the result cache are loaded
instead of recomputed and marked ``"cached": true`` in the manifest.
:func:`iter_campaign` is the streaming variant: it yields each
manifest record as its entry completes (completion order under
``jobs > 1``), so a dashboard or the CLI can tail a long campaign
instead of waiting for the final manifest.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.backends import default_backend_spec, set_default_backend
from repro.errors import ExperimentError, ScenarioError
from repro.experiments import get_spec, run_experiment_cached
from repro.parallel import iter_resilient, resolve_jobs, set_default_jobs
from repro.resilience import RetryPolicy, is_transient, resolve_retry
from repro.testing.faults import fault_point

#: The only keys a campaign-entry description may carry.
_ENTRY_KEYS = frozenset({"experiment_id", "mode", "seed", "scenario", "overrides"})

#: The modes an entry may request.
_ENTRY_MODES = ("quick", "full")


@dataclass(frozen=True)
class CampaignEntry:
    """One experiment run within a campaign.

    Besides the classic ``(experiment_id, mode, seed)`` triple an entry
    may name a ``scenario`` (a registry name or a scenario JSON file
    path — the experiment id may then be omitted) and/or sparse
    workload ``overrides`` layered on top of the base configuration.
    ``mode`` and ``scenario`` are mutually exclusive: a scenario fixes
    its own base preset.
    """

    experiment_id: str
    mode: str = "quick"
    seed: int = 0
    scenario: str | None = None
    overrides: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the manifest (scenario keys only if set).

        Scenario entries omit ``mode`` — the scenario fixes its own
        base preset, and :meth:`from_dict` rejects the redundant pair —
        so ``to_dict``/``from_dict`` round-trip exactly.
        """
        data: dict[str, Any] = {"experiment_id": self.experiment_id}
        if self.scenario is None:
            data["mode"] = self.mode
        data["seed"] = self.seed
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.overrides:
            data["overrides"] = dict(self.overrides)
        return data

    def resolve_workload(self):
        """The entry's workload, or ``None`` for a plain preset entry.

        Scenario names resolve against the built-in registry (or a JSON
        file); overrides apply on top of the scenario's workload or the
        ``mode`` preset.  Raises :class:`~repro.errors.ScenarioError`
        on unknown scenarios or misfitting overrides.
        """
        if self.scenario is None and not self.overrides:
            return None
        from repro.experiments import get_experiment
        from repro.scenarios.registry import resolve_scenario

        if self.scenario is not None:
            scenario = resolve_scenario(self.scenario)
            if scenario.experiment_id.upper() != self.experiment_id.upper():
                raise ScenarioError(
                    f"campaign entry {self.experiment_id}: scenario "
                    f"{self.scenario!r} belongs to {scenario.experiment_id}"
                )
            base = scenario.workload()
        else:
            base = get_experiment(self.experiment_id).preset(self.mode)
        return base.with_overrides(self.overrides or {})

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignEntry":
        """Inverse of :meth:`to_dict`, validating the description strictly.

        Unknown keys (a typoed ``"Mode"`` would otherwise silently run
        the default), non-string ids, bad modes, non-integer seeds,
        unknown scenarios, and misfitting overrides are all
        :class:`ExperimentError`\\ s with the offending value in the
        message, so a malformed campaign JSON fails before any work is
        done rather than quietly running something else.
        """
        if not isinstance(data, dict):
            raise ExperimentError(
                f"campaign entry must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - _ENTRY_KEYS)
        if unknown:
            raise ExperimentError(
                f"campaign entry has unknown keys {unknown}; "
                f"allowed keys are {sorted(_ENTRY_KEYS)}"
            )
        scenario = data.get("scenario")
        if scenario is not None and (not isinstance(scenario, str) or not scenario):
            raise ExperimentError(
                f"campaign entry: scenario must be a non-empty string, got {scenario!r}"
            )
        if scenario is not None and "mode" in data:
            raise ExperimentError(
                f"campaign entry: pass either 'scenario' or 'mode', not both "
                f"(scenario {scenario!r} fixes its own base preset)"
            )
        experiment_id = data.get("experiment_id")
        if scenario is not None and experiment_id is None:
            from repro.scenarios.registry import resolve_scenario

            experiment_id = resolve_scenario(scenario).experiment_id
        if not isinstance(experiment_id, str):
            raise ExperimentError(
                f"campaign entry needs a string 'experiment_id', got {data!r}"
            )
        mode = data.get("mode", "quick")
        if mode not in _ENTRY_MODES:
            raise ExperimentError(
                f"campaign entry {experiment_id}: mode must be one of "
                f"{list(_ENTRY_MODES)}, got {mode!r}"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ExperimentError(
                f"campaign entry {experiment_id}: seed must be an "
                f"integer, got {seed!r}"
            )
        overrides = data.get("overrides")
        if overrides is not None and not isinstance(overrides, dict):
            raise ExperimentError(
                f"campaign entry {experiment_id}: overrides must be an object, "
                f"got {type(overrides).__name__}"
            )
        return cls(
            experiment_id=experiment_id,
            mode=mode,
            seed=seed,
            scenario=scenario,
            overrides=overrides,
        )


@dataclass
class Campaign:
    """A named, ordered batch of experiment runs."""

    name: str
    entries: list[CampaignEntry] = field(default_factory=list)

    def validate(self) -> None:
        """Fail fast on unknown ids, modes, or scenarios before any work.

        Scenario references and overrides are fully resolved here (the
        workloads are rebuilt — not kept — so campaigns stay cheap to
        validate), which surfaces unknown scenario names, missing
        scenario files, and misfitting overrides with one clear error
        each before any entry runs.
        """
        if not self.name:
            raise ExperimentError("campaign name must be non-empty")
        if not self.entries:
            raise ExperimentError(f"campaign {self.name!r} has no entries")
        for entry in self.entries:
            get_spec(entry.experiment_id)  # raises on unknown id
            if entry.mode not in _ENTRY_MODES:
                raise ExperimentError(
                    f"campaign entry {entry.experiment_id}: mode must be "
                    f"'quick' or 'full', got {entry.mode!r}"
                )
            entry.resolve_workload()  # raises on bad scenarios/overrides

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a campaign description (``{"name": ..., "entries": [...]}``).

        ``"entries"`` must be a JSON array.  A dict or string would
        otherwise *iterate* — over its keys or characters — and
        surface as a baffling per-entry error ("campaign entry must be
        an object, got str"), so the wrong container type is rejected
        up front with one clear message naming what was found.
        """
        try:
            data = json.loads(text)
            entries = data["entries"]
            if not isinstance(entries, list):
                raise ExperimentError(
                    f"campaign 'entries' must be a list of entry objects, "
                    f"got {type(entries).__name__}"
                )
            campaign = cls(
                name=data["name"],
                entries=[CampaignEntry.from_dict(entry) for entry in entries],
            )
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise ExperimentError(f"malformed campaign description: {error}") from None
        campaign.validate()
        return campaign

    def to_json(self) -> str:
        """Serialise the campaign description."""
        return json.dumps(
            {"name": self.name, "entries": [entry.to_dict() for entry in self.entries]},
            indent=2,
        )


def _cache_dir_argument(cache: Any | None, cache_dir: str | Path | None) -> str | None:
    """Normalise campaign cache options to a directory string or ``None``.

    Campaign entries may run in worker processes, so the cache travels
    as a directory path (each worker opens its own handle on the shared
    on-disk store); a :class:`~repro.cache.ResultCache` instance
    contributes its directory.
    """
    if cache is not None:
        return str(cache.directory)
    if cache_dir is not None:
        return str(cache_dir)
    return None


def _entry_stem(entry: CampaignEntry) -> str:
    """Result-file stem: unique per distinct entry configuration.

    Plain entries keep the historical ``<eid>_<mode>_s<seed>`` names
    (warm manifests stay byte-identical).  Scenario entries use the
    scenario name (a file path contributes its stem); any entry with
    overrides appends a short digest of them, so two grid points of
    the same experiment/scenario/seed cannot clobber each other's
    files.
    """
    from repro.scenarios.base import overrides_digest

    if entry.scenario is not None:
        # Only a file path goes through Path.stem — registry names may
        # legitimately contain dots and must not be truncated.
        if entry.scenario.endswith(".json"):
            tag = Path(entry.scenario).stem
        else:
            tag = entry.scenario
        tag = tag.replace("/", "-")
    else:
        tag = entry.mode
    if entry.overrides:
        tag = f"{tag}-{overrides_digest(entry.overrides)}"
    return f"{entry.experiment_id.lower()}_{tag}_s{entry.seed}"


def _execute_entry(
    entry: CampaignEntry,
    directory: Path,
    cache_dir: str | None = None,
    attempt: int = 1,
) -> dict[str, Any]:
    """Run one entry, save its result files, return its manifest record.

    Cached entries record ``"seconds": 0.0`` — the lookup cost is noise,
    and a constant keeps manifests reproducible byte-for-byte across
    runs and worker counts once the cache is warm.  ``attempts`` records
    how many tries the retry machinery spent on the entry (1 on the
    happy path), so a flaky environment is visible in the manifest.
    """
    started = time.perf_counter()
    workload = entry.resolve_workload()
    result, cached = run_experiment_cached(
        entry.experiment_id,
        mode=None if workload is not None else entry.mode,
        workload=workload,
        seed=entry.seed,
        cache_dir=cache_dir,
    )
    elapsed = 0.0 if cached else time.perf_counter() - started
    stem = _entry_stem(entry)
    result.save(directory / f"{stem}.json")
    (directory / f"{stem}.txt").write_text(result.render() + "\n")
    return {
        **entry.to_dict(),
        "result_json": f"{stem}.json",
        "result_text": f"{stem}.txt",
        "seconds": round(elapsed, 2),
        "cached": cached,
        "attempts": attempt,
        "findings": result.findings,
    }


def _isolated_entry(
    context: dict[str, Any], entry_data: dict[str, Any], attempt: int = 1
) -> dict[str, Any]:
    """Kernel: one campaign entry with the parent's defaults installed.

    In a daemonic pool worker the ensemble-jobs default is clamped to 1
    for the entry's lifetime — entry-level and replica-level
    parallelism never stack (nested pools are already disabled for
    daemons; the clamp keeps the fallback paths from even trying).
    Run inline (sequential campaigns, degraded pools) the clamp is
    skipped, so entries keep their replica-level parallelism.  The
    parent's default array backend travels in the context and is
    installed here (unvalidated — a broken spec fails at first use,
    exactly as it would in the parent): spawn workers re-import the
    package and would otherwise silently fall back to the environment
    default, dropping a ``--backend`` choice.  Previous defaults are
    always restored.
    """
    clamp = multiprocessing.current_process().daemon
    previous_jobs = set_default_jobs(1) if clamp else None
    previous_backend = set_default_backend(
        context.get("backend", default_backend_spec()), validate=False
    )
    try:
        return _execute_entry(
            CampaignEntry.from_dict(entry_data),
            Path(context["directory"]),
            cache_dir=context.get("cache_dir"),
            attempt=attempt,
        )
    finally:
        if previous_jobs is not None:
            set_default_jobs(previous_jobs)
        set_default_backend(previous_backend, validate=False)


def _resilient_entry(
    context: dict[str, Any], entry_data: dict[str, Any], attempt: int = 1
) -> dict[str, Any]:
    """:func:`_isolated_entry` behind the campaign fault-injection gate.

    The worker-side fault sites fire *before* any real work, so an
    injected crash or hang costs nothing but the retry; the token is
    the entry's result-file stem, giving fault plans a stable per-entry
    identity to match on.
    """
    token = _entry_stem(CampaignEntry.from_dict(entry_data))
    fault_point("worker_crash", token=token, attempt=attempt)
    fault_point("worker_hang", token=token, attempt=attempt)
    fault_point("worker_fault", token=token, attempt=attempt)
    return _isolated_entry(context, entry_data, attempt)


#: Error-record tracebacks keep only this many trailing characters —
#: the last frames carry the failure, and manifests stay readable.
_TRACEBACK_TAIL = 2000


def _truncated_traceback(text: str | None) -> str | None:
    if not text:
        return None
    text = text.rstrip()
    if len(text) <= _TRACEBACK_TAIL:
        return text
    return "... (truncated) ...\n" + text[-_TRACEBACK_TAIL:]


def _error_record(
    entry: CampaignEntry,
    error: BaseException,
    attempts: int = 1,
    traceback_text: str | None = None,
) -> dict[str, Any]:
    """Manifest record for a failed entry (no result files).

    ``error`` keeps the one-line ``Type: message`` form; ``terminal``
    distinguishes "retrying could never help" from "the attempt budget
    ran out"; the truncated traceback tail (worker-side when the entry
    died in a pool worker) makes post-mortems possible from the
    manifest alone.
    """
    if traceback_text is None and error.__traceback__ is not None:
        traceback_text = "".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        )
    record: dict[str, Any] = {
        **entry.to_dict(),
        "error": f"{type(error).__name__}: {error}",
        "error_type": type(error).__name__,
        "attempts": attempts,
        "terminal": not is_transient(error),
    }
    tail = _truncated_traceback(traceback_text)
    if tail is not None:
        record["traceback"] = tail
    return record


def _worker_context(directory: Path, cache_dir: str | None) -> dict[str, Any]:
    return {
        "directory": str(directory),
        "cache_dir": cache_dir,
        "backend": default_backend_spec(),
    }


def _prepare(campaign: Campaign, output_dir: str | Path) -> Path:
    campaign.validate()
    directory = Path(output_dir) / campaign.name
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _entry_label(record: dict[str, Any]) -> str:
    base = record.get("scenario", record.get("mode"))
    return f"{record['experiment_id']} ({base}, seed {record['seed']})"


# ---------------------------------------------------------------------------
# Crash-safe journal, sharding, resume
# ---------------------------------------------------------------------------

#: Basename shared by all partial-progress journals in a campaign dir.
_JOURNAL_PREFIX = "manifest.partial"

#: Journal line-format version.
_JOURNAL_SCHEMA = 1


def _campaign_fingerprint(campaign: Campaign) -> str:
    """Digest of the campaign description; guards journal replay."""
    return hashlib.sha256(campaign.to_json().encode()).hexdigest()[:16]


def _resolve_shard(shard: Any) -> tuple[int, int] | None:
    """Normalise a ``shard=`` argument to ``(index, count)`` or ``None``.

    Accepts ``"i/N"`` strings (the CLI form) or ``(i, N)`` pairs, with
    0-based ``i``.  Shard ``i`` owns the campaign entries whose index
    is ``i`` modulo ``N`` — a pure function of the campaign description,
    so N processes (or hosts) handed the same campaign partition it
    exactly, with no coordination beyond the shared result cache.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        parts = shard.split("/")
        try:
            index, count = int(parts[0]), int(parts[1])
        except (ValueError, IndexError):
            raise ExperimentError(
                f"shard must look like 'i/N' (e.g. '0/4'), got {shard!r}"
            ) from None
        if len(parts) != 2:
            raise ExperimentError(
                f"shard must look like 'i/N' (e.g. '0/4'), got {shard!r}"
            )
    else:
        try:
            index, count = shard
        except (TypeError, ValueError):
            raise ExperimentError(
                f"shard must be an 'i/N' string or an (index, count) pair, "
                f"got {shard!r}"
            ) from None
        if (
            isinstance(index, bool)
            or isinstance(count, bool)
            or not isinstance(index, int)
            or not isinstance(count, int)
        ):
            raise ExperimentError(
                f"shard index and count must be integers, got {shard!r}"
            )
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ExperimentError(f"shard index must be in [0, {count}), got {index}")
    return (index, count)


def _journal_path(directory: Path, shard_spec: tuple[int, int] | None) -> Path:
    """This run's own journal file — one per shard, so appends never race."""
    if shard_spec is None:
        return directory / f"{_JOURNAL_PREFIX}.jsonl"
    index, count = shard_spec
    return directory / f"{_JOURNAL_PREFIX}.shard{index}of{count}.jsonl"


def _append_journal_line(path: Path, payload: dict[str, Any]) -> None:
    """Append one JSON line with a single atomic ``write(2)``.

    ``O_APPEND`` plus one ``os.write`` of the whole line is atomic for
    local POSIX filesystems, so a SIGKILL mid-campaign can tear at most
    the final line — which replay skips — never an earlier one.
    """
    data = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def _start_journal(
    path: Path,
    campaign: Campaign,
    fingerprint: str,
    shard_spec: tuple[int, int] | None,
) -> None:
    """Write the header line unless the journal already has content."""
    if path.exists() and path.stat().st_size > 0:
        return
    header: dict[str, Any] = {
        "campaign": campaign.name,
        "fingerprint": fingerprint,
        "schema": _JOURNAL_SCHEMA,
        "entries": len(campaign.entries),
    }
    if shard_spec is not None:
        header["shard"] = f"{shard_spec[0]}/{shard_spec[1]}"
    _append_journal_line(path, header)


def _load_journal(
    directory: Path, campaign: Campaign, fingerprint: str
) -> dict[int, dict[str, Any]]:
    """Replayable records from every journal in the directory.

    Reads all ``manifest.partial*.jsonl`` files (a multi-host campaign
    leaves one per shard), skipping torn or malformed lines — a line
    only enters a journal after its entry completed, so anything
    unparseable is the tail write a crash interrupted.  A journal whose
    header names a different campaign fingerprint is a hard error:
    silently replaying records from a different campaign would
    fabricate results.
    """
    records: dict[int, dict[str, Any]] = {}
    for path in sorted(directory.glob(f"{_JOURNAL_PREFIX}*.jsonl")):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn tail write
            if not isinstance(data, dict):
                continue
            if "fingerprint" in data:
                if data["fingerprint"] != fingerprint:
                    raise ExperimentError(
                        f"journal {path.name} belongs to a different campaign "
                        f"(fingerprint {data['fingerprint']!r}, expected "
                        f"{fingerprint!r}); delete stale {_JOURNAL_PREFIX}* "
                        "files or use a fresh output directory"
                    )
                continue
            index = data.get("index")
            record = data.get("record")
            if isinstance(index, bool) or not isinstance(index, int):
                continue
            if not isinstance(record, dict):
                continue
            if not 0 <= index < len(campaign.entries):
                continue
            entry = campaign.entries[index]
            if (
                record.get("experiment_id") != entry.experiment_id
                or record.get("seed") != entry.seed
            ):
                continue
            records[index] = record
    return records


def _clear_journals(directory: Path, shard_spec: tuple[int, int] | None) -> None:
    """Drop journals a fresh (non-resume) run must not inherit.

    An unsharded fresh run owns the directory and clears every journal;
    a sharded fresh run clears only its own — peer shards may be alive
    on other hosts.
    """
    if shard_spec is None:
        for path in sorted(directory.glob(f"{_JOURNAL_PREFIX}*.jsonl")):
            path.unlink(missing_ok=True)
    else:
        _journal_path(directory, shard_spec).unlink(missing_ok=True)


def _replayable(
    record: dict[str, Any],
    entry: CampaignEntry,
    directory: Path,
    store_dir: str | None,
) -> bool:
    """Whether a journal record can stand in for re-executing its entry.

    Error records replay when terminal — the failure is deterministic,
    so retrying cannot change it — but not when the attempt budget
    merely ran out: a resume is a fresh budget.  Success records replay
    verbatim only when their result files still exist and no cache is
    configured; with a cache the entry re-runs instead, which is a
    near-free cache hit and also heals a cache entry the crash lost.
    """
    if "error" in record:
        return bool(record.get("terminal", True))
    if store_dir is not None:
        return False
    json_name = record.get("result_json")
    text_name = record.get("result_text")
    if not isinstance(json_name, str) or not isinstance(text_name, str):
        return False
    return (directory / json_name).exists() and (directory / text_name).exists()


def _write_manifest(
    directory: Path,
    campaign: Campaign,
    records: dict[int, dict[str, Any]],
    shard_spec: tuple[int, int] | None = None,
) -> dict[str, Any]:
    """Write the (possibly per-shard) manifest in campaign order."""
    manifest: dict[str, Any] = {"campaign": campaign.name}
    if shard_spec is not None:
        manifest["shard"] = f"{shard_spec[0]}/{shard_spec[1]}"
        name = f"manifest.shard{shard_spec[0]}of{shard_spec[1]}.json"
    else:
        name = "manifest.json"
    manifest["entries"] = [records[index] for index in sorted(records)]
    (directory / name).write_text(json.dumps(manifest, indent=2))
    return manifest


def _iter_outcomes(
    campaign: Campaign,
    directory: Path,
    store_dir: str | None,
    *,
    jobs: int | None,
    policy: "RetryPolicy | None",
    resume: bool,
    shard_spec: tuple[int, int] | None,
    entry_deadline: float | None,
    fail_fast: bool,
    progress: Callable[[str], None] | None,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Shared engine of :func:`run_campaign` and :func:`iter_campaign`.

    Yields ``(index, record)`` for every entry this run owns, exactly
    once each: journal replays first (campaign order), then live
    completions (completion order), then — after a ``fail_fast`` stop —
    ``{"skipped": true}`` records for entries never started.  Every
    live record is journalled before it is yielded, so a crash after
    the consumer saw a record never loses it.
    """
    fingerprint = _campaign_fingerprint(campaign)
    journal = _journal_path(directory, shard_spec)
    if resume:
        replayable = _load_journal(directory, campaign, fingerprint)
    else:
        _clear_journals(directory, shard_spec)
        replayable = {}
    _start_journal(journal, campaign, fingerprint, shard_spec)

    if shard_spec is None:
        owned = list(range(len(campaign.entries)))
    else:
        shard_index, shard_count = shard_spec
        owned = [
            index
            for index in range(len(campaign.entries))
            if index % shard_count == shard_index
        ]

    emitted: set[int] = set()
    failed = False
    pending: list[int] = []
    for index in owned:
        entry = campaign.entries[index]
        record = replayable.get(index)
        if record is not None and _replayable(record, entry, directory, store_dir):
            if progress is not None:
                progress(f"resume: replaying {_entry_label(record)}")
            emitted.add(index)
            failed = failed or "error" in record
            yield index, record
        else:
            pending.append(index)

    if pending and not (failed and fail_fast):
        stems = {index: _entry_stem(campaign.entries[index]) for index in pending}
        tasks = [(campaign.entries[index].to_dict(),) for index in pending]

        def backoff(task_index: int, attempt: int, error: BaseException):
            if policy is None:
                return None
            return policy.next_delay(stems[pending[task_index]], attempt, error)

        outcomes = iter_resilient(
            _resilient_entry,
            _worker_context(directory, store_dir),
            tasks,
            jobs=jobs,
            isolate=True,
            deadline=entry_deadline,
            retry_delay=backoff,
            on_event=progress,
        )
        try:
            for outcome in outcomes:
                index = pending[outcome.index]
                if outcome.ok:
                    record = outcome.value
                else:
                    record = _error_record(
                        campaign.entries[index],
                        outcome.error,
                        attempts=outcome.attempts,
                        traceback_text=outcome.traceback,
                    )
                _append_journal_line(journal, {"index": index, "record": record})
                emitted.add(index)
                if progress is not None:
                    if outcome.ok:
                        progress(
                            f"finished {_entry_label(record)} "
                            f"in {record['seconds']}s"
                        )
                    else:
                        progress(f"failed {_entry_label(record)}: {record['error']}")
                yield index, record
                if fail_fast and "error" in record:
                    break
        finally:
            outcomes.close()

    for index in owned:
        if index not in emitted:
            yield index, {**campaign.entries[index].to_dict(), "skipped": True}


def run_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    cache: Any | None = None,
    cache_dir: str | Path | None = None,
    retry: "RetryPolicy | int | None" = None,
    resume: bool = False,
    shard: Any = None,
    entry_deadline: float | None = None,
    fail_fast: bool = False,
) -> dict[str, Any]:
    """Execute a campaign, saving each result and a manifest.

    Results land in ``output_dir/<campaign-name>/`` as
    ``<eid>_<mode>_s<seed>.json`` (plus ``.txt`` renders); the manifest
    ``manifest.json`` records entries, file names, wall-clock
    durations, attempt counts, and headline findings.  Returns the
    manifest dict.

    A failing entry does not abort the campaign: its record carries an
    ``"error"`` line, an ``"error_type"``, whether the failure was
    ``"terminal"``, and a truncated ``"traceback"`` — and no result
    files.  With ``fail_fast=True``, the first error record stops the
    campaign and every entry not yet started is recorded as
    ``{"skipped": true}``.

    ``jobs > 1`` executes independent entries concurrently, each in a
    fresh worker process (per-entry isolation), with the manifest kept
    in campaign order and byte-identical in structure to a sequential
    run (entry seeding is per-entry, so results match ``jobs=1``
    exactly; only the ``seconds`` timings differ).  ``entry_deadline``
    (seconds, pooled runs) arms the hung-worker watchdog: an entry
    whose worker goes silent past the deadline fails with
    :class:`~repro.errors.EntryDeadlineError` and the pool is recycled.

    ``cache=`` (a :class:`~repro.cache.ResultCache`) or ``cache_dir=``
    (a path) enables result caching: entries already in the store are
    loaded instead of recomputed and marked ``"cached": true`` (with
    ``"seconds": 0.0``) in the manifest, so a warm fully-cached
    campaign produces a byte-identical manifest at any worker count.

    ``retry=`` (a :class:`~repro.resilience.RetryPolicy` or an integer
    attempt budget) retries *transient* failures — dead workers, missed
    deadlines, OS-level errors — with deterministic exponential
    backoff; deliberate library errors stay terminal and surface on the
    first attempt.

    Every completed entry is appended to an on-disk journal
    (``manifest.partial*.jsonl``) before the manifest exists.
    ``resume=True`` replays that journal instead of starting over:
    terminal error records are trusted verbatim, interrupted or
    transient-failed entries re-run, and completed work is skipped
    (through the cache when one is configured — a near-free hit — or
    via the journal record when not).

    ``shard="i/N"`` (0-based) runs only the entries whose campaign
    index is ``i`` modulo ``N`` and writes ``manifest.shardIofN.json``,
    so N processes or hosts can chew one campaign concurrently,
    coordinating only through the shared cache; a final unsharded
    ``resume=True`` run over the same directory merges everything into
    ``manifest.json`` at cache speed.
    """
    directory = _prepare(campaign, output_dir)
    store_dir = _cache_dir_argument(cache, cache_dir)
    resolve_jobs(jobs)  # validate eagerly, before any work
    policy = resolve_retry(retry)
    shard_spec = _resolve_shard(shard)
    records: dict[int, dict[str, Any]] = {}
    for index, record in _iter_outcomes(
        campaign,
        directory,
        store_dir,
        jobs=jobs,
        policy=policy,
        resume=resume,
        shard_spec=shard_spec,
        entry_deadline=entry_deadline,
        fail_fast=fail_fast,
        progress=progress,
    ):
        records[index] = record
    return _write_manifest(directory, campaign, records, shard_spec)


def iter_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    jobs: int | None = None,
    cache: Any | None = None,
    cache_dir: str | Path | None = None,
    retry: "RetryPolicy | int | None" = None,
    resume: bool = False,
    shard: Any = None,
    entry_deadline: float | None = None,
    fail_fast: bool = False,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Stream a campaign: yield ``(index, record)`` as entries complete.

    The streaming sibling of :func:`run_campaign` — same result files,
    same journal, same manifest on disk once the iterator is exhausted
    — but each manifest record is yielded the moment its entry
    finishes (journal replays first, then live completions in
    *completion* order under ``jobs > 1``), so a dashboard or progress
    line can tail a long campaign live.  ``index`` is the entry's
    position in the campaign, and the on-disk manifest keeps
    deterministic campaign order regardless of completion order.

    A failing entry does not abort the campaign: its record carries an
    ``"error"`` message (and no result files), and every owned entry is
    yielded exactly once.  Abandoning the iterator early stops the
    campaign without writing a manifest — the journal still holds every
    completed entry, so a later ``resume=True`` run picks up from
    there.

    Validation (unknown ids, bad modes, bad ``jobs``, bad ``shard``)
    happens eagerly, before the iterator is returned.
    """
    directory = _prepare(campaign, output_dir)
    store_dir = _cache_dir_argument(cache, cache_dir)
    resolve_jobs(jobs)  # validate eagerly, before the first yield
    policy = resolve_retry(retry)
    shard_spec = _resolve_shard(shard)
    return _iter_records(
        campaign,
        directory,
        store_dir,
        jobs=jobs,
        policy=policy,
        resume=resume,
        shard_spec=shard_spec,
        entry_deadline=entry_deadline,
        fail_fast=fail_fast,
    )


def _iter_records(
    campaign: Campaign,
    directory: Path,
    store_dir: str | None,
    **plan_options: Any,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Generator body of :func:`iter_campaign` (validation already done)."""
    records: dict[int, dict[str, Any]] = {}
    for index, record in _iter_outcomes(
        campaign, directory, store_dir, progress=None, **plan_options
    ):
        records[index] = record
        yield index, record
    _write_manifest(directory, campaign, records, plan_options["shard_spec"])
