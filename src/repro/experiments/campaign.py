"""Campaigns: batches of experiment runs with a saved manifest.

A campaign is a declarative list of experiment runs — which ids, which
mode (or named scenario, or workload overrides), which seeds —
executed in order with every result saved to disk
next to a manifest recording what was run, when, and where each result
landed.  This is the reproducibility wrapper around the registry:
``EXPERIMENTS.md`` numbers come from a one-line campaign.

Example::

    from repro.experiments.campaign import Campaign, run_campaign

    campaign = Campaign(
        name="full-reproduction",
        entries=[CampaignEntry(experiment_id=eid, mode="full", seed=0)
                 for eid in experiment_ids()],
    )
    manifest = run_campaign(campaign, "results/")

With ``cache_dir=`` set, entries whose ``(experiment, mode, seed,
parameters)`` identity is already in the result cache are loaded
instead of recomputed and marked ``"cached": true`` in the manifest.
:func:`iter_campaign` is the streaming variant: it yields each
manifest record as its entry completes (completion order under
``jobs > 1``), so a dashboard or the CLI can tail a long campaign
instead of waiting for the final manifest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.backends import default_backend_spec, set_default_backend
from repro.errors import ExperimentError, ScenarioError
from repro.experiments import get_spec, run_experiment_cached
from repro.parallel import imap_shards, map_shards, resolve_jobs, set_default_jobs

#: The only keys a campaign-entry description may carry.
_ENTRY_KEYS = frozenset({"experiment_id", "mode", "seed", "scenario", "overrides"})

#: The modes an entry may request.
_ENTRY_MODES = ("quick", "full")


@dataclass(frozen=True)
class CampaignEntry:
    """One experiment run within a campaign.

    Besides the classic ``(experiment_id, mode, seed)`` triple an entry
    may name a ``scenario`` (a registry name or a scenario JSON file
    path — the experiment id may then be omitted) and/or sparse
    workload ``overrides`` layered on top of the base configuration.
    ``mode`` and ``scenario`` are mutually exclusive: a scenario fixes
    its own base preset.
    """

    experiment_id: str
    mode: str = "quick"
    seed: int = 0
    scenario: str | None = None
    overrides: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the manifest (scenario keys only if set).

        Scenario entries omit ``mode`` — the scenario fixes its own
        base preset, and :meth:`from_dict` rejects the redundant pair —
        so ``to_dict``/``from_dict`` round-trip exactly.
        """
        data: dict[str, Any] = {"experiment_id": self.experiment_id}
        if self.scenario is None:
            data["mode"] = self.mode
        data["seed"] = self.seed
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.overrides:
            data["overrides"] = dict(self.overrides)
        return data

    def resolve_workload(self):
        """The entry's workload, or ``None`` for a plain preset entry.

        Scenario names resolve against the built-in registry (or a JSON
        file); overrides apply on top of the scenario's workload or the
        ``mode`` preset.  Raises :class:`~repro.errors.ScenarioError`
        on unknown scenarios or misfitting overrides.
        """
        if self.scenario is None and not self.overrides:
            return None
        from repro.experiments import get_experiment
        from repro.scenarios.registry import resolve_scenario

        if self.scenario is not None:
            scenario = resolve_scenario(self.scenario)
            if scenario.experiment_id.upper() != self.experiment_id.upper():
                raise ScenarioError(
                    f"campaign entry {self.experiment_id}: scenario "
                    f"{self.scenario!r} belongs to {scenario.experiment_id}"
                )
            base = scenario.workload()
        else:
            base = get_experiment(self.experiment_id).preset(self.mode)
        return base.with_overrides(self.overrides or {})

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignEntry":
        """Inverse of :meth:`to_dict`, validating the description strictly.

        Unknown keys (a typoed ``"Mode"`` would otherwise silently run
        the default), non-string ids, bad modes, non-integer seeds,
        unknown scenarios, and misfitting overrides are all
        :class:`ExperimentError`\\ s with the offending value in the
        message, so a malformed campaign JSON fails before any work is
        done rather than quietly running something else.
        """
        if not isinstance(data, dict):
            raise ExperimentError(
                f"campaign entry must be an object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - _ENTRY_KEYS)
        if unknown:
            raise ExperimentError(
                f"campaign entry has unknown keys {unknown}; "
                f"allowed keys are {sorted(_ENTRY_KEYS)}"
            )
        scenario = data.get("scenario")
        if scenario is not None and (not isinstance(scenario, str) or not scenario):
            raise ExperimentError(
                f"campaign entry: scenario must be a non-empty string, got {scenario!r}"
            )
        if scenario is not None and "mode" in data:
            raise ExperimentError(
                f"campaign entry: pass either 'scenario' or 'mode', not both "
                f"(scenario {scenario!r} fixes its own base preset)"
            )
        experiment_id = data.get("experiment_id")
        if scenario is not None and experiment_id is None:
            from repro.scenarios.registry import resolve_scenario

            experiment_id = resolve_scenario(scenario).experiment_id
        if not isinstance(experiment_id, str):
            raise ExperimentError(
                f"campaign entry needs a string 'experiment_id', got {data!r}"
            )
        mode = data.get("mode", "quick")
        if mode not in _ENTRY_MODES:
            raise ExperimentError(
                f"campaign entry {experiment_id}: mode must be one of "
                f"{list(_ENTRY_MODES)}, got {mode!r}"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ExperimentError(
                f"campaign entry {experiment_id}: seed must be an "
                f"integer, got {seed!r}"
            )
        overrides = data.get("overrides")
        if overrides is not None and not isinstance(overrides, dict):
            raise ExperimentError(
                f"campaign entry {experiment_id}: overrides must be an object, "
                f"got {type(overrides).__name__}"
            )
        return cls(
            experiment_id=experiment_id,
            mode=mode,
            seed=seed,
            scenario=scenario,
            overrides=overrides,
        )


@dataclass
class Campaign:
    """A named, ordered batch of experiment runs."""

    name: str
    entries: list[CampaignEntry] = field(default_factory=list)

    def validate(self) -> None:
        """Fail fast on unknown ids, modes, or scenarios before any work.

        Scenario references and overrides are fully resolved here (the
        workloads are rebuilt — not kept — so campaigns stay cheap to
        validate), which surfaces unknown scenario names, missing
        scenario files, and misfitting overrides with one clear error
        each before any entry runs.
        """
        if not self.name:
            raise ExperimentError("campaign name must be non-empty")
        if not self.entries:
            raise ExperimentError(f"campaign {self.name!r} has no entries")
        for entry in self.entries:
            get_spec(entry.experiment_id)  # raises on unknown id
            if entry.mode not in _ENTRY_MODES:
                raise ExperimentError(
                    f"campaign entry {entry.experiment_id}: mode must be "
                    f"'quick' or 'full', got {entry.mode!r}"
                )
            entry.resolve_workload()  # raises on bad scenarios/overrides

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a campaign description (``{"name": ..., "entries": [...]}``).

        ``"entries"`` must be a JSON array.  A dict or string would
        otherwise *iterate* — over its keys or characters — and
        surface as a baffling per-entry error ("campaign entry must be
        an object, got str"), so the wrong container type is rejected
        up front with one clear message naming what was found.
        """
        try:
            data = json.loads(text)
            entries = data["entries"]
            if not isinstance(entries, list):
                raise ExperimentError(
                    f"campaign 'entries' must be a list of entry objects, "
                    f"got {type(entries).__name__}"
                )
            campaign = cls(
                name=data["name"],
                entries=[CampaignEntry.from_dict(entry) for entry in entries],
            )
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise ExperimentError(f"malformed campaign description: {error}") from None
        campaign.validate()
        return campaign

    def to_json(self) -> str:
        """Serialise the campaign description."""
        return json.dumps(
            {"name": self.name, "entries": [entry.to_dict() for entry in self.entries]},
            indent=2,
        )


def _cache_dir_argument(cache: Any | None, cache_dir: str | Path | None) -> str | None:
    """Normalise campaign cache options to a directory string or ``None``.

    Campaign entries may run in worker processes, so the cache travels
    as a directory path (each worker opens its own handle on the shared
    on-disk store); a :class:`~repro.cache.ResultCache` instance
    contributes its directory.
    """
    if cache is not None:
        return str(cache.directory)
    if cache_dir is not None:
        return str(cache_dir)
    return None


def _entry_stem(entry: CampaignEntry) -> str:
    """Result-file stem: unique per distinct entry configuration.

    Plain entries keep the historical ``<eid>_<mode>_s<seed>`` names
    (warm manifests stay byte-identical).  Scenario entries use the
    scenario name (a file path contributes its stem); any entry with
    overrides appends a short digest of them, so two grid points of
    the same experiment/scenario/seed cannot clobber each other's
    files.
    """
    from repro.scenarios.base import overrides_digest

    if entry.scenario is not None:
        # Only a file path goes through Path.stem — registry names may
        # legitimately contain dots and must not be truncated.
        if entry.scenario.endswith(".json"):
            tag = Path(entry.scenario).stem
        else:
            tag = entry.scenario
        tag = tag.replace("/", "-")
    else:
        tag = entry.mode
    if entry.overrides:
        tag = f"{tag}-{overrides_digest(entry.overrides)}"
    return f"{entry.experiment_id.lower()}_{tag}_s{entry.seed}"


def _execute_entry(
    entry: CampaignEntry, directory: Path, cache_dir: str | None = None
) -> dict[str, Any]:
    """Run one entry, save its result files, return its manifest record.

    Cached entries record ``"seconds": 0.0`` — the lookup cost is noise,
    and a constant keeps manifests reproducible byte-for-byte across
    runs and worker counts once the cache is warm.
    """
    started = time.perf_counter()
    workload = entry.resolve_workload()
    result, cached = run_experiment_cached(
        entry.experiment_id,
        mode=None if workload is not None else entry.mode,
        workload=workload,
        seed=entry.seed,
        cache_dir=cache_dir,
    )
    elapsed = 0.0 if cached else time.perf_counter() - started
    stem = _entry_stem(entry)
    result.save(directory / f"{stem}.json")
    (directory / f"{stem}.txt").write_text(result.render() + "\n")
    return {
        **entry.to_dict(),
        "result_json": f"{stem}.json",
        "result_text": f"{stem}.txt",
        "seconds": round(elapsed, 2),
        "cached": cached,
        "findings": result.findings,
    }


def _isolated_entry(context: dict[str, Any], entry_data: dict[str, Any]) -> dict[str, Any]:
    """Worker-side kernel: one campaign entry in its own process.

    Workers are daemonic, so nested ensemble pools are disabled for the
    entry's lifetime — entry-level and replica-level parallelism never
    stack.  The parent's default array backend travels in the context
    and is installed here (unvalidated — a broken spec fails at first
    use, exactly as it would in the parent): spawn workers re-import
    the package and would otherwise silently fall back to the
    environment default, dropping a ``--backend`` choice.  Previous
    defaults are restored in case this kernel ran inline
    (single-worker fallback) rather than in a pool worker.
    """
    previous = set_default_jobs(1)
    previous_backend = set_default_backend(
        context.get("backend", default_backend_spec()), validate=False
    )
    try:
        return _execute_entry(
            CampaignEntry.from_dict(entry_data),
            Path(context["directory"]),
            cache_dir=context.get("cache_dir"),
        )
    finally:
        set_default_jobs(previous)
        set_default_backend(previous_backend, validate=False)


def _shielded_entry(context: dict[str, Any], entry_data: dict[str, Any]) -> dict[str, Any]:
    """Like :func:`_isolated_entry`, but a failure becomes an error record.

    Streaming consumers must receive every entry exactly once even when
    one worker raises; a pool iterator would otherwise abort on the
    first failure and swallow the rest of the campaign.
    """
    try:
        return _isolated_entry(context, entry_data)
    except Exception as error:  # noqa: BLE001 - worker boundary
        return {**entry_data, "error": f"{type(error).__name__}: {error}"}


def _worker_context(directory: Path, cache_dir: str | None) -> dict[str, Any]:
    return {
        "directory": str(directory),
        "cache_dir": cache_dir,
        "backend": default_backend_spec(),
    }


def _prepare(campaign: Campaign, output_dir: str | Path) -> Path:
    campaign.validate()
    directory = Path(output_dir) / campaign.name
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def _write_manifest(directory: Path, campaign: Campaign, records: list) -> dict[str, Any]:
    manifest = {"campaign": campaign.name, "entries": records}
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest


def run_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    cache: Any | None = None,
    cache_dir: str | Path | None = None,
) -> dict[str, Any]:
    """Execute a campaign, saving each result and a manifest.

    Results land in ``output_dir/<campaign-name>/`` as
    ``<eid>_<mode>_s<seed>.json`` (plus ``.txt`` renders); the manifest
    ``manifest.json`` records entries, file names, wall-clock
    durations, and headline findings.  Returns the manifest dict.

    ``jobs > 1`` executes independent entries concurrently, each in a
    fresh worker process (per-entry isolation), with the manifest kept
    in campaign order and byte-identical in structure to a sequential
    run (entry seeding is per-entry, so results match ``jobs=1``
    exactly; only the ``seconds`` timings differ).

    ``cache=`` (a :class:`~repro.cache.ResultCache`) or ``cache_dir=``
    (a path) enables result caching: entries already in the store are
    loaded instead of recomputed and marked ``"cached": true`` (with
    ``"seconds": 0.0``) in the manifest, so a warm fully-cached
    campaign produces a byte-identical manifest at any worker count.
    """
    directory = _prepare(campaign, output_dir)
    store_dir = _cache_dir_argument(cache, cache_dir)
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(campaign.entries) <= 1:
        records = []
        for entry in campaign.entries:
            if progress is not None:
                base = entry.scenario if entry.scenario is not None else entry.mode
                progress(f"running {entry.experiment_id} ({base}, seed {entry.seed})")
            records.append(_execute_entry(entry, directory, cache_dir=store_dir))
    else:
        tasks = [(entry.to_dict(),) for entry in campaign.entries]

        def report(index: int, record: dict[str, Any]) -> None:
            if progress is not None:
                base = record.get("scenario", record.get("mode"))
                progress(
                    f"finished {record['experiment_id']} ({base}, "
                    f"seed {record['seed']}) in {record['seconds']}s"
                )

        records = map_shards(
            _isolated_entry,
            _worker_context(directory, store_dir),
            tasks,
            jobs=n_workers,
            isolate=True,
            on_result=report,
        )
    return _write_manifest(directory, campaign, records)


def iter_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    jobs: int | None = None,
    cache: Any | None = None,
    cache_dir: str | Path | None = None,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Stream a campaign: yield ``(index, record)`` as entries complete.

    The streaming sibling of :func:`run_campaign` — same result files,
    same manifest on disk once the iterator is exhausted — but each
    manifest record is yielded the moment its entry finishes, in
    *completion* order under ``jobs > 1`` (``imap_unordered``), so a
    dashboard or progress line can tail a long campaign live.  ``index``
    is the entry's position in the campaign, and the on-disk manifest
    keeps deterministic campaign order regardless of completion order.

    Unlike :func:`run_campaign`, a failing entry does not abort the
    campaign: its record carries an ``"error"`` message (and no result
    files), and every entry is yielded exactly once.  Abandoning the
    iterator early stops the campaign without writing a manifest.

    Validation (unknown ids, bad modes, bad ``jobs``) happens eagerly,
    before the iterator is returned.
    """
    directory = _prepare(campaign, output_dir)
    store_dir = _cache_dir_argument(cache, cache_dir)
    n_workers = resolve_jobs(jobs)
    return _iter_records(campaign, directory, store_dir, n_workers)


def _iter_records(
    campaign: Campaign, directory: Path, store_dir: str | None, n_workers: int
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Generator body of :func:`iter_campaign` (validation already done)."""
    records: list[dict[str, Any] | None] = [None] * len(campaign.entries)
    if n_workers <= 1 or len(campaign.entries) <= 1:
        for index, entry in enumerate(campaign.entries):
            try:
                record = _execute_entry(entry, directory, cache_dir=store_dir)
            except Exception as error:  # noqa: BLE001 - mirror worker shielding
                record = {**entry.to_dict(), "error": f"{type(error).__name__}: {error}"}
            records[index] = record
            yield index, record
    else:
        tasks = [(entry.to_dict(),) for entry in campaign.entries]
        for index, record in imap_shards(
            _shielded_entry,
            _worker_context(directory, store_dir),
            tasks,
            jobs=n_workers,
            isolate=True,
            ordered=False,
        ):
            records[index] = record
            yield index, record
    _write_manifest(directory, campaign, records)
