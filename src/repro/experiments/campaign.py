"""Campaigns: batches of experiment runs with a saved manifest.

A campaign is a declarative list of experiment runs — which ids, which
mode, which seeds — executed in order with every result saved to disk
next to a manifest recording what was run, when, and where each result
landed.  This is the reproducibility wrapper around the registry:
``EXPERIMENTS.md`` numbers come from a one-line campaign.

Example::

    from repro.experiments.campaign import Campaign, run_campaign

    campaign = Campaign(
        name="full-reproduction",
        entries=[CampaignEntry(experiment_id=eid, mode="full", seed=0)
                 for eid in experiment_ids()],
    )
    manifest = run_campaign(campaign, "results/")
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.experiments import get_spec, run_experiment
from repro.parallel import map_shards, resolve_jobs, set_default_jobs


@dataclass(frozen=True)
class CampaignEntry:
    """One experiment run within a campaign."""

    experiment_id: str
    mode: str = "quick"
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the manifest."""
        return {"experiment_id": self.experiment_id, "mode": self.mode, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment_id=data["experiment_id"],
            mode=data.get("mode", "quick"),
            seed=int(data.get("seed", 0)),
        )


@dataclass
class Campaign:
    """A named, ordered batch of experiment runs."""

    name: str
    entries: list[CampaignEntry] = field(default_factory=list)

    def validate(self) -> None:
        """Fail fast on unknown ids or modes before any work is done."""
        if not self.name:
            raise ExperimentError("campaign name must be non-empty")
        if not self.entries:
            raise ExperimentError(f"campaign {self.name!r} has no entries")
        for entry in self.entries:
            get_spec(entry.experiment_id)  # raises on unknown id
            if entry.mode not in ("quick", "full"):
                raise ExperimentError(
                    f"campaign entry {entry.experiment_id}: mode must be "
                    f"'quick' or 'full', got {entry.mode!r}"
                )

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a campaign description (``{"name": ..., "entries": [...]}``)."""
        try:
            data = json.loads(text)
            campaign = cls(
                name=data["name"],
                entries=[CampaignEntry.from_dict(entry) for entry in data["entries"]],
            )
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise ExperimentError(f"malformed campaign description: {error}") from None
        campaign.validate()
        return campaign

    def to_json(self) -> str:
        """Serialise the campaign description."""
        return json.dumps(
            {"name": self.name, "entries": [entry.to_dict() for entry in self.entries]},
            indent=2,
        )


def _execute_entry(entry: CampaignEntry, directory: Path) -> dict[str, Any]:
    """Run one entry, save its result files, return its manifest record."""
    started = time.perf_counter()
    result = run_experiment(entry.experiment_id, mode=entry.mode, seed=entry.seed)
    elapsed = time.perf_counter() - started
    stem = f"{entry.experiment_id.lower()}_{entry.mode}_s{entry.seed}"
    result.save(directory / f"{stem}.json")
    (directory / f"{stem}.txt").write_text(result.render() + "\n")
    return {
        **entry.to_dict(),
        "result_json": f"{stem}.json",
        "result_text": f"{stem}.txt",
        "seconds": round(elapsed, 2),
        "findings": result.findings,
    }


def _isolated_entry(directory: str, entry_data: dict[str, Any]) -> dict[str, Any]:
    """Worker-side kernel: one campaign entry in its own process.

    Workers are daemonic, so nested ensemble pools are disabled for the
    entry's lifetime — entry-level and replica-level parallelism never
    stack.  The previous default is restored in case this kernel ran
    inline (single-worker fallback) rather than in a pool worker.
    """
    previous = set_default_jobs(1)
    try:
        return _execute_entry(CampaignEntry.from_dict(entry_data), Path(directory))
    finally:
        set_default_jobs(previous)


def run_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
) -> dict[str, Any]:
    """Execute a campaign, saving each result and a manifest.

    Results land in ``output_dir/<campaign-name>/`` as
    ``<eid>_<mode>_s<seed>.json`` (plus ``.txt`` renders); the manifest
    ``manifest.json`` records entries, file names, wall-clock
    durations, and headline findings.  Returns the manifest dict.

    ``jobs > 1`` executes independent entries concurrently, each in a
    fresh worker process (per-entry isolation), with the manifest kept
    in campaign order and byte-identical in structure to a sequential
    run (entry seeding is per-entry, so results match ``jobs=1``
    exactly; only the ``seconds`` timings differ).
    """
    campaign.validate()
    directory = Path(output_dir) / campaign.name
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "campaign": campaign.name,
        "entries": [],
    }
    n_workers = resolve_jobs(jobs)
    if n_workers <= 1 or len(campaign.entries) <= 1:
        for entry in campaign.entries:
            if progress is not None:
                progress(f"running {entry.experiment_id} ({entry.mode}, seed {entry.seed})")
            manifest["entries"].append(_execute_entry(entry, directory))
    else:
        tasks = [(entry.to_dict(),) for entry in campaign.entries]

        def report(index: int, record: dict[str, Any]) -> None:
            if progress is not None:
                progress(
                    f"finished {record['experiment_id']} ({record['mode']}, "
                    f"seed {record['seed']}) in {record['seconds']}s"
                )

        manifest["entries"] = map_shards(
            _isolated_entry,
            str(directory),
            tasks,
            jobs=n_workers,
            isolate=True,
            on_result=report,
        )
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest
