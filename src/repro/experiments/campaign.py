"""Campaigns: batches of experiment runs with a saved manifest.

A campaign is a declarative list of experiment runs — which ids, which
mode, which seeds — executed in order with every result saved to disk
next to a manifest recording what was run, when, and where each result
landed.  This is the reproducibility wrapper around the registry:
``EXPERIMENTS.md`` numbers come from a one-line campaign.

Example::

    from repro.experiments.campaign import Campaign, run_campaign

    campaign = Campaign(
        name="full-reproduction",
        entries=[CampaignEntry(experiment_id=eid, mode="full", seed=0)
                 for eid in experiment_ids()],
    )
    manifest = run_campaign(campaign, "results/")
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.experiments import get_spec, run_experiment


@dataclass(frozen=True)
class CampaignEntry:
    """One experiment run within a campaign."""

    experiment_id: str
    mode: str = "quick"
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the manifest."""
        return {"experiment_id": self.experiment_id, "mode": self.mode, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment_id=data["experiment_id"],
            mode=data.get("mode", "quick"),
            seed=int(data.get("seed", 0)),
        )


@dataclass
class Campaign:
    """A named, ordered batch of experiment runs."""

    name: str
    entries: list[CampaignEntry] = field(default_factory=list)

    def validate(self) -> None:
        """Fail fast on unknown ids or modes before any work is done."""
        if not self.name:
            raise ExperimentError("campaign name must be non-empty")
        if not self.entries:
            raise ExperimentError(f"campaign {self.name!r} has no entries")
        for entry in self.entries:
            get_spec(entry.experiment_id)  # raises on unknown id
            if entry.mode not in ("quick", "full"):
                raise ExperimentError(
                    f"campaign entry {entry.experiment_id}: mode must be "
                    f"'quick' or 'full', got {entry.mode!r}"
                )

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        """Parse a campaign description (``{"name": ..., "entries": [...]}``)."""
        try:
            data = json.loads(text)
            campaign = cls(
                name=data["name"],
                entries=[CampaignEntry.from_dict(entry) for entry in data["entries"]],
            )
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise ExperimentError(f"malformed campaign description: {error}") from None
        campaign.validate()
        return campaign

    def to_json(self) -> str:
        """Serialise the campaign description."""
        return json.dumps(
            {"name": self.name, "entries": [entry.to_dict() for entry in self.entries]},
            indent=2,
        )


def run_campaign(
    campaign: Campaign,
    output_dir: str | Path,
    *,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Execute a campaign, saving each result and a manifest.

    Results land in ``output_dir/<campaign-name>/`` as
    ``<eid>_<mode>_s<seed>.json`` (plus ``.txt`` renders); the manifest
    ``manifest.json`` records entries, file names, wall-clock
    durations, and headline findings.  Returns the manifest dict.
    """
    campaign.validate()
    directory = Path(output_dir) / campaign.name
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "campaign": campaign.name,
        "entries": [],
    }
    for entry in campaign.entries:
        if progress is not None:
            progress(f"running {entry.experiment_id} ({entry.mode}, seed {entry.seed})")
        started = time.perf_counter()
        result = run_experiment(entry.experiment_id, mode=entry.mode, seed=entry.seed)
        elapsed = time.perf_counter() - started
        stem = f"{entry.experiment_id.lower()}_{entry.mode}_s{entry.seed}"
        result.save(directory / f"{stem}.json")
        (directory / f"{stem}.txt").write_text(result.render() + "\n")
        manifest["entries"].append(
            {
                **entry.to_dict(),
                "result_json": f"{stem}.json",
                "result_text": f"{stem}.txt",
                "seconds": round(elapsed, 2),
                "findings": result.findings,
            }
        )
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest
