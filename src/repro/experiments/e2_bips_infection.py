"""E2 — Theorem 2: BIPS infects expanders in O(log n), same order as COBRA.

Workload: the same expander ladder as E1 at one degree.  We measure
BIPS (`k = 2`) infection times and COBRA cover times side by side:
Theorem 2 gives the same ``O(log n / (1-λ)³)`` bound for BIPS, and the
duality (Theorem 4) makes the two processes' completion times the same
order — the measured ratio should be a stable constant across `n`,
and both series should fit ``a + b log n`` with high ``R²``.
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.fitting import fit_log_linear
from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import (
    family_with_gap,
    measure_bips_infection,
    measure_cobra_cover,
)
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.families import GraphFamily
from repro.scenarios.workloads import E2Workload
from repro.theory.bounds import cover_time_bound

SPEC = ExperimentSpec(
    experiment_id="E2",
    title="BIPS infection time vs COBRA cover time",
    claim=(
        "With k=2 the BIPS infection time is O(log n / (1-lambda)^3) w.h.p., "
        "the same order as the COBRA cover time"
    ),
    paper_reference="Theorem 2 (and Theorem 4 for the order equivalence)",
    # v2: ensembles ride the vectorised batch engine (same distribution,
    # different same-seed draws), invalidating cached v1 results.
    version="2",
)

QUICK_SIZES = (256, 512, 1024, 2048)
QUICK_SAMPLES = 12
FULL_SIZES = (256, 512, 1024, 2048, 4096, 8192)
FULL_SAMPLES = 30
DEGREE = 8

#: Workload type this experiment runs from.
WORKLOAD = E2Workload


def preset(mode: str) -> E2Workload:
    """The quick/full workload, built from the live module constants."""
    family = GraphFamily("random_regular", {"degree": DEGREE})
    if mode == "quick":
        return E2Workload(sizes=QUICK_SIZES, samples=QUICK_SAMPLES, family=family)
    if mode == "full":
        return E2Workload(sizes=FULL_SIZES, samples=FULL_SAMPLES, family=family)
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E2Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E2 and return its tables, figure, and findings."""
    wl = resolve_workload(E2Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sizes, samples = wl.sizes, wl.samples

    table = Table(
        ["n", "lambda", "mean infec", "mean cov", "infec/cov", "T bound"]
    )
    ns: list[float] = []
    infection_means: list[float] = []
    cover_means: list[float] = []
    ratios: list[float] = []
    for offset, n in enumerate(sizes):
        graph, lam = family_with_gap(wl.family, n, seed=seed + offset)
        bips = measure_bips_infection(
            graph,
            n_samples=samples,
            seed=(seed, n, 1),
            engine=wl.engine,
            transmission_rate=wl.transmission_rate,
            recovery_rate=wl.recovery_rate,
            edge_rate_overrides=wl.edge_rate_overrides,
        )
        cobra = measure_cobra_cover(
            graph,
            n_samples=samples,
            seed=(seed, n, 2),
            engine=wl.engine,
            transmission_rate=wl.transmission_rate,
            edge_rate_overrides=wl.edge_rate_overrides,
        )
        ratio = bips.stats.mean / cobra.stats.mean
        # Bipartite family members (e.g. hypercubes) have lambda = 1,
        # where Theorem 1's bound is vacuous.
        bound = cover_time_bound(n, lam) if lam < 1.0 else float("inf")
        table.add_row(
            [n, lam, bips.stats.mean, cobra.stats.mean, ratio, bound]
        )
        ns.append(float(n))
        infection_means.append(bips.stats.mean)
        cover_means.append(cobra.stats.mean)
        ratios.append(ratio)

    bips_fit = fit_log_linear(ns, infection_means)
    cobra_fit = fit_log_linear(ns, cover_means)
    fits = Table(["process", "slope b", "intercept a", "R^2"])
    fits.add_row(["BIPS k=2", bips_fit.slope, bips_fit.intercept, bips_fit.r_squared])
    fits.add_row(["COBRA k=2", cobra_fit.slope, cobra_fit.intercept, cobra_fit.r_squared])

    figure = ascii_plot(
        {"BIPS infec": (ns, infection_means), "COBRA cov": (ns, cover_means)},
        log_x=True,
        title=f"E2: completion time vs n (log x), {wl.family.label()} graphs",
        x_label="n",
        y_label="rounds",
    )
    ratio_spread = max(ratios) / min(ratios)
    findings = [
        f"BIPS infection time is linear in log n (R^2 = {bips_fit.r_squared:.4f})",
        (
            f"infec/cov ratio stays within a factor {ratio_spread:.2f} across the ladder "
            f"(mean ratio {sum(ratios) / len(ratios):.2f}) — same order, as the duality implies"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "sizes": list(sizes),
                "degree": wl.family.params.get("degree", DEGREE),
                "samples": samples,
                "engine": wl.engine,
            },
        ),
        tables={"BIPS vs COBRA": table, "log-n fits": fits},
        figures={"completion vs n": figure},
        findings=findings,
    )
