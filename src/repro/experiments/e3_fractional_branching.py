"""E3 — Theorem 3: any constant branching surplus ρ > 0 gives O(log n).

Workload: COBRA with fractional branching factor ``1 + ρ`` on a fixed-
degree expander ladder, for several constants ``ρ``.  Theorem 3 says
every constant ``ρ > 0`` yields ``O(log n)`` cover on expanders; the
experiment checks (a) the log-n shape per ``ρ`` and (b) how the fitted
slope grows as ``ρ`` shrinks — Corollary 1's per-round growth factor
``1 + ρ(1-λ²)(1-|A|/n)`` suggests roughly ``slope ∝ 1/ρ``.
``ρ = 0`` (plain random walk) is excluded: its cover time is
``Ω(n log n)`` and is measured in E7 instead.
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.fitting import fit_linear, fit_log_linear
from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap, measure_cobra_cover
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E3Workload

SPEC = ExperimentSpec(
    experiment_id="E3",
    title="Fractional branching factor 1 + rho",
    claim=(
        "COBRA with branching factor 1 + rho covers expanders in O(log n) rounds "
        "for every constant rho > 0"
    ),
    paper_reference="Theorem 3 (via Corollary 1)",
    # v2: the batch-kernel rewrite changed this experiment's same-seed
    # draws (distribution unchanged), invalidating cached v1 results.
    version="2",
)

QUICK_SIZES = (256, 512, 1024, 2048)
QUICK_RHOS = (0.1, 0.25, 0.5, 1.0)
QUICK_SAMPLES = 10
FULL_SIZES = (256, 512, 1024, 2048, 4096)
FULL_RHOS = (0.05, 0.1, 0.25, 0.5, 1.0)
FULL_SAMPLES = 25
DEGREE = 8

#: Workload type this experiment runs from.
WORKLOAD = E3Workload


def preset(mode: str) -> E3Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E3Workload(
            sizes=QUICK_SIZES, rhos=QUICK_RHOS, samples=QUICK_SAMPLES, degree=DEGREE
        )
    if mode == "full":
        return E3Workload(
            sizes=FULL_SIZES, rhos=FULL_RHOS, samples=FULL_SAMPLES, degree=DEGREE
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E3Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E3 and return its tables, figure, and findings."""
    wl = resolve_workload(E3Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sizes, rhos, samples = wl.sizes, wl.rhos, wl.samples

    graphs = []
    for offset, n in enumerate(sizes):
        graphs.append((n,) + expander_with_gap(n, wl.degree, seed=seed + offset))

    measurements = Table(["rho", "n", "lambda", "mean cov", "median", "max"])
    fits = Table(["rho", "slope b", "intercept a", "R^2"])
    series: dict[str, tuple[list[float], list[float]]] = {}
    slopes: list[float] = []
    for rho in rhos:
        xs: list[float] = []
        ys: list[float] = []
        for n, graph, lam in graphs:
            # The vectorised batch engine covers the fractional regime,
            # so the whole rho-ladder rides the fast path.
            result = measure_cobra_cover(
                graph,
                branching=1.0 + rho,
                n_samples=samples,
                seed=(seed, n, int(rho * 1000)),
                engine="batch",
            )
            measurements.add_row(
                [rho, n, lam, result.stats.mean, result.stats.median, result.stats.maximum]
            )
            xs.append(float(n))
            ys.append(result.stats.mean)
        fit = fit_log_linear(xs, ys)
        fits.add_row([rho, fit.slope, fit.intercept, fit.r_squared])
        slopes.append(fit.slope)
        series[f"rho={rho}"] = (xs, ys)

    min_r2 = min(float(row[3]) for row in fits.rows)
    # Does slope scale like 1/rho?  Fit slope against 1/rho.
    inverse_rhos = [1.0 / rho for rho in rhos]
    slope_fit = fit_linear(inverse_rhos, slopes)

    figure = ascii_plot(
        series,
        log_x=True,
        title=f"E3: COBRA(1+rho) mean cover time vs n (log x), random {wl.degree}-regular",
        x_label="n",
        y_label="rounds",
    )
    findings = [
        f"every rho in {rhos} shows log-n cover scaling (worst R^2 = {min_r2:.4f})",
        (
            f"the fitted log-n slope grows with 1/rho "
            f"(slope ~ {slope_fit.slope:.2f}/rho + {slope_fit.intercept:.2f}, "
            f"R^2 = {slope_fit.r_squared:.3f}), matching Corollary 1's rho-scaled growth"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "sizes": list(sizes),
                "rhos": list(rhos),
                "degree": wl.degree,
                "samples": samples,
                "engine": "batch",
            },
        ),
        tables={"cover times": measurements, "log-n fits per rho": fits},
        figures={"cover vs n per rho": figure},
        findings=findings,
    )
