"""E4 — Theorem 4: the COBRA/BIPS duality, exact and Monte-Carlo.

Two tiers of verification:

* **Exact** (small graphs): evolve the full subset distributions of
  both processes and compare ``P̂(Hit_C(v) > t)`` with
  ``P(C ∩ A_t = ∅)`` for every ``t`` up to a horizon.  A correct
  implementation leaves only float rounding (``~1e-12``).  Run for
  integer and fractional branching, on regular graphs (the paper's
  setting) and an irregular one (the identity holds there too — the
  proof never uses regularity; reported as an observation).
* **Monte-Carlo** (a 200-vertex expander, beyond exact reach): estimate
  both sides by simulation and check agreement within Wilson 95%
  intervals.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.exact.duality import duality_gap, duality_monte_carlo
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.graphs.base import Graph
from repro.graphs.generators import complete, cycle, path, petersen, random_regular
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E4Workload

SPEC = ExperimentSpec(
    experiment_id="E4",
    title="COBRA <-> BIPS duality",
    claim=(
        "P(Hit_C(v) > t | C_0 = C) for COBRA equals P(C cap A_t = empty | A_0 = {v}) "
        "for BIPS, for every C, v, t and branching factor k"
    ),
    paper_reference="Theorem 4",
    version="1",
)

QUICK_TRIALS = 2000
FULL_TRIALS = 20000
EXACT_T_MAX = 12

#: Workload type this experiment runs from.
WORKLOAD = E4Workload


def preset(mode: str) -> E4Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E4Workload(trials=QUICK_TRIALS, exact_t_max=EXACT_T_MAX)
    if mode == "full":
        return E4Workload(trials=FULL_TRIALS, exact_t_max=EXACT_T_MAX)
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def _exact_cases(seed: int) -> list[tuple[str, Graph, list[int], int]]:
    """(label, graph, start set C, source v) tuples for the exact tier."""
    return [
        ("petersen, C={0}", petersen(), [0], 7),
        ("petersen, |C|=3", petersen(), [0, 3, 8], 5),
        ("complete K7", complete(7), [1], 4),
        ("cycle C9", cycle(9), [0, 2], 6),
        ("random 3-regular n=10", random_regular(10, 3, seed=seed), [0], 9),
        ("path n=6 (irregular)", path(6), [0], 5),
    ]


def run(
    workload: "E4Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E4 and return its tables and findings."""
    wl = resolve_workload(E4Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    trials, exact_t_max = wl.trials, wl.exact_t_max

    exact = Table(["case", "branching k", "t_max", "max |LHS - RHS|"], float_format="%.2e")
    worst_gap = 0.0
    for case_label, graph, start, source in _exact_cases(seed):
        for branching in (1.0, 1.5, 2.0, 3.0):
            gap = duality_gap(graph, start, source, exact_t_max, branching=branching)
            worst_gap = max(worst_gap, gap)
            exact.add_row([case_label, branching, exact_t_max, gap])

    mc_graph = random_regular(wl.mc_n, wl.mc_degree, seed=seed + 17)
    start, source = 0, wl.mc_source
    monte_carlo = Table(
        ["t", "COBRA P(Hit>t)", "BIPS P(u not in A_t)", "|diff|", "CI overlap"]
    )
    points = duality_monte_carlo(
        mc_graph, start, source, wl.mc_checkpoints, trials=trials, seed=seed
    )
    all_overlap = True
    for point in points:
        all_overlap = all_overlap and point.intervals_overlap
        monte_carlo.add_row(
            [
                point.t,
                point.cobra_estimate,
                point.bips_estimate,
                point.difference,
                point.intervals_overlap,
            ]
        )

    findings = [
        f"exact duality gap over all cases and branchings: {worst_gap:.2e} (float noise)",
        "the identity also holds exactly on an irregular graph (path n=6) — the paper "
        "proves it for regular graphs but the argument never uses regularity",
        (
            f"Monte-Carlo estimates on a {wl.mc_n}-vertex {wl.mc_degree}-regular expander "
            + ("agree within 95% Wilson intervals at every t" if all_overlap else "DISAGREE")
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {"exact_t_max": exact_t_max, "mc_trials": trials, "mc_graph_n": wl.mc_n},
        ),
        tables={"exact verification": exact, "monte-carlo verification": monte_carlo},
        findings=findings,
    )
