"""E4 — Theorem 4: the COBRA/BIPS duality, exact and Monte-Carlo.

Two tiers of verification:

* **Exact** (small graphs): evolve the full subset distributions of
  both processes and compare ``P̂(Hit_C(v) > t)`` with
  ``P(C ∩ A_t = ∅)`` for every ``t`` up to a horizon.  A correct
  implementation leaves only float rounding (``~1e-12``).  Run for
  integer and fractional branching, on regular graphs (the paper's
  setting) and an irregular one (the identity holds there too — the
  proof never uses regularity; reported as an observation).
* **Monte-Carlo** (a 200-vertex expander, beyond exact reach): estimate
  both sides by simulation and check agreement within Wilson 95%
  intervals.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.exact.duality import duality_gap, duality_monte_carlo
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.graphs.base import Graph
from repro.graphs.generators import complete, cycle, path, petersen, random_regular

SPEC = ExperimentSpec(
    experiment_id="E4",
    title="COBRA <-> BIPS duality",
    claim=(
        "P(Hit_C(v) > t | C_0 = C) for COBRA equals P(C cap A_t = empty | A_0 = {v}) "
        "for BIPS, for every C, v, t and branching factor k"
    ),
    paper_reference="Theorem 4",
)

QUICK_TRIALS = 2000
FULL_TRIALS = 20000
EXACT_T_MAX = 12


def _exact_cases(seed: int) -> list[tuple[str, Graph, list[int], int]]:
    """(label, graph, start set C, source v) tuples for the exact tier."""
    return [
        ("petersen, C={0}", petersen(), [0], 7),
        ("petersen, |C|=3", petersen(), [0, 3, 8], 5),
        ("complete K7", complete(7), [1], 4),
        ("cycle C9", cycle(9), [0, 2], 6),
        ("random 3-regular n=10", random_regular(10, 3, seed=seed), [0], 9),
        ("path n=6 (irregular)", path(6), [0], 5),
    ]


def run(mode: str = "quick", seed: int = 0) -> ExperimentResult:
    """Run E4 and return its tables and findings."""
    if mode == "quick":
        trials = QUICK_TRIALS
    elif mode == "full":
        trials = FULL_TRIALS
    else:
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")

    exact = Table(["case", "branching k", "t_max", "max |LHS - RHS|"], float_format="%.2e")
    worst_gap = 0.0
    for label, graph, start, source in _exact_cases(seed):
        for branching in (1.0, 1.5, 2.0, 3.0):
            gap = duality_gap(graph, start, source, EXACT_T_MAX, branching=branching)
            worst_gap = max(worst_gap, gap)
            exact.add_row([label, branching, EXACT_T_MAX, gap])

    mc_graph = random_regular(200, 6, seed=seed + 17)
    start, source = 0, 117
    monte_carlo = Table(
        ["t", "COBRA P(Hit>t)", "BIPS P(u not in A_t)", "|diff|", "CI overlap"]
    )
    points = duality_monte_carlo(
        mc_graph, start, source, (1, 2, 3, 5, 8), trials=trials, seed=seed
    )
    all_overlap = True
    for point in points:
        all_overlap = all_overlap and point.intervals_overlap
        monte_carlo.add_row(
            [
                point.t,
                point.cobra_estimate,
                point.bips_estimate,
                point.difference,
                point.intervals_overlap,
            ]
        )

    findings = [
        f"exact duality gap over all cases and branchings: {worst_gap:.2e} (float noise)",
        "the identity also holds exactly on an irregular graph (path n=6) — the paper "
        "proves it for regular graphs but the argument never uses regularity",
        (
            "Monte-Carlo estimates on a 200-vertex 6-regular expander "
            + ("agree within 95% Wilson intervals at every t" if all_overlap else "DISAGREE")
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=mode,
        seed=seed,
        parameters={"exact_t_max": EXACT_T_MAX, "mc_trials": trials, "mc_graph_n": 200},
        tables={"exact verification": exact, "monte-carlo verification": monte_carlo},
        findings=findings,
    )
