"""E10 — ablation: what the *persistent* source buys BIPS.

BIPS differs from plain SIS refresh dynamics in exactly one clause: the
source never loses its infection.  The paper leans on this for
Theorem 2 (w.h.p. full infection) and motivates it epidemiologically
(persistently infected BVDV carriers).  The ablation runs both
processes from a single initially infected vertex with identical
sampling:

* plain SIS — the empty set is absorbing, and from a single vertex the
  process dies out with substantial probability before taking off
  (if all ~k·d samples pointing back at the seed miss, the epidemic is
  gone); once it takes off it reaches the all-infected state, which is
  absorbing for SIS too;
* BIPS — extinction is impossible, and full infection arrives in
  ``O(log n)`` rounds on the expander, every run.
"""

from __future__ import annotations

from repro._rng import spawn_generators
from repro.analysis.stats import proportion_ci, summarize
from repro.analysis.tables import Table
from repro.core.bips import BipsProcess
from repro.core.runner import run_process
from repro.core.sis import SisProcess
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E10Workload

SPEC = ExperimentSpec(
    experiment_id="E10",
    title="Persistent source ablation (BIPS vs plain SIS)",
    claim=(
        "With the persistent source, full infection happens w.h.p.; without it the "
        "same dynamics die out with constant probability from a single seed"
    ),
    paper_reference="Section 1 (BIPS definition and BVDV motivation)",
    version="1",
)

GRAPH_N = 256
GRAPH_R = 6
QUICK_SIS_TRIALS = 300
FULL_SIS_TRIALS = 2000
QUICK_BIPS_TRIALS = 50
FULL_BIPS_TRIALS = 200
ROUND_CAP = 2000

#: Workload type this experiment runs from.
WORKLOAD = E10Workload


def preset(mode: str) -> E10Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E10Workload(
            n=GRAPH_N,
            r=GRAPH_R,
            sis_trials=QUICK_SIS_TRIALS,
            bips_trials=QUICK_BIPS_TRIALS,
            round_cap=ROUND_CAP,
        )
    if mode == "full":
        return E10Workload(
            n=GRAPH_N,
            r=GRAPH_R,
            sis_trials=FULL_SIS_TRIALS,
            bips_trials=FULL_BIPS_TRIALS,
            round_cap=ROUND_CAP,
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E10Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E10 and return its tables and findings."""
    wl = resolve_workload(E10Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sis_trials, bips_trials = wl.sis_trials, wl.bips_trials
    round_cap = wl.round_cap

    graph, lam = expander_with_gap(wl.n, wl.r, seed=seed)

    outcomes = Table(
        ["process", "branching", "trials", "extinct", "full infection", "timeout"]
    )
    details = Table(
        ["process", "branching", "P(extinct)", "95% CI", "mean t_extinct", "mean t_full"]
    )
    sis_extinction_probability: dict[float, float] = {}
    for branching in (1.0, 2.0):
        extinction_times: list[int] = []
        completion_times: list[int] = []
        timeouts = 0
        for rng in spawn_generators((seed, int(branching), 101), sis_trials):
            process = SisProcess(graph, 0, branching=branching, seed=rng)
            result = run_process(process, max_rounds=round_cap)
            if result.extinct:
                extinction_times.append(process.extinction_time)
            elif result.completed:
                completion_times.append(result.completion_time)
            else:
                timeouts += 1
        extinct = len(extinction_times)
        full = len(completion_times)
        probability = extinct / sis_trials
        sis_extinction_probability[branching] = probability
        ci = proportion_ci(extinct, sis_trials)
        outcomes.add_row(["SIS (no source)", branching, sis_trials, extinct, full, timeouts])
        details.add_row(
            [
                "SIS (no source)",
                branching,
                probability,
                f"[{ci[0]:.3f}, {ci[1]:.3f}]",
                summarize(extinction_times).mean if extinction_times else None,
                summarize(completion_times).mean if completion_times else None,
            ]
        )

    bips_times: list[int] = []
    for rng in spawn_generators((seed, 3, 102), bips_trials):
        process = BipsProcess(graph, 0, branching=2.0, seed=rng)
        result = run_process(process, max_rounds=round_cap, raise_on_timeout=True)
        bips_times.append(result.completion_time)
    bips_stats = summarize(bips_times)
    outcomes.add_row(["BIPS (persistent)", 2.0, bips_trials, 0, bips_trials, 0])
    details.add_row(["BIPS (persistent)", 2.0, 0.0, "[0, 0]", None, bips_stats.mean])

    findings = [
        (
            f"plain SIS (k=2) from one seed dies out in "
            f"{100 * sis_extinction_probability[2.0]:.1f}% of runs; BIPS never does "
            f"({bips_trials}/{bips_trials} full infections, mean {bips_stats.mean:.1f} rounds)"
        ),
        (
            f"with k=1 the SIS dynamics are critical-or-below and died out in "
            f"{100 * sis_extinction_probability[1.0]:.1f}% of runs within the cap"
        ),
        "runs of SIS that escape extinction reach the (absorbing) all-infected state — "
        "the persistent source removes the early-extinction risk without changing the speed",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "n": wl.n,
                "r": wl.r,
                "lambda": lam,
                "sis_trials": sis_trials,
                "bips_trials": bips_trials,
                "round_cap": round_cap,
            },
        ),
        tables={"outcomes": outcomes, "details": details},
        findings=findings,
    )
