"""E12 — extension: COBRA/BIPS on evolving expanders.

The paper's analysis is for a static graph; the authors' follow-up
work asks what happens when the network churns while the process runs.
This experiment re-samples the random regular graph every ``period``
rounds (period 1 = a completely fresh expander each round) and
measures COBRA cover and BIPS infection times across an `n` ladder.

Expected shape: churn does not hurt — the `O(log n)` scaling persists
at every period, and full re-sampling is mildly *faster* than the
static graph (a token's two pushes explore fresh neighbourhoods every
round, eliminating locally unlucky topology).  This is an extension
measurement, not a claim of the paper; it is reported as such.
"""

from __future__ import annotations

from repro._rng import spawn_generators
from repro.analysis.fitting import fit_log_linear
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.dynamic import (
    DynamicBipsProcess,
    DynamicCobraProcess,
    EvolvingRegularGraph,
)
from repro.core.runner import run_process
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E12Workload

SPEC = ExperimentSpec(
    experiment_id="E12",
    title="COBRA and BIPS on evolving expanders (extension)",
    claim=(
        "the O(log n) cover/infection scaling survives graph churn: re-sampling "
        "the expander every round does not slow the processes down"
    ),
    paper_reference="extension (cf. the authors' follow-up work on dynamic graphs)",
    version="1",
)

QUICK_SIZES = (128, 256, 512, 1024)
QUICK_SAMPLES = 8
FULL_SIZES = (256, 512, 1024, 2048)
FULL_SAMPLES = 15
DEGREE = 8
PERIODS = (1, 4, 10_000_000)  # fresh every round / every 4 / effectively static

#: Workload type this experiment runs from.
WORKLOAD = E12Workload


def preset(mode: str) -> E12Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E12Workload(
            sizes=QUICK_SIZES, samples=QUICK_SAMPLES, degree=DEGREE, periods=PERIODS
        )
    if mode == "full":
        return E12Workload(
            sizes=FULL_SIZES, samples=FULL_SAMPLES, degree=DEGREE, periods=PERIODS
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def _period_label(period: int) -> str:
    return "static" if period >= 10_000_000 else f"period={period}"


def run(
    workload: "E12Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E12 and return its tables and findings."""
    wl = resolve_workload(E12Workload, preset, workload, mode)
    run_mode = workload_label(preset, wl)
    sizes, samples = wl.sizes, wl.samples
    periods = wl.periods

    table = Table(["regime", "n", "mean cov", "mean infec"])
    fits = Table(["regime", "process", "slope b", "R^2"])
    slope_pairs: dict[str, float] = {}
    cover_by_regime: dict[str, list[float]] = {}
    for period in periods:
        label = _period_label(period)
        cover_means: list[float] = []
        infect_means: list[float] = []
        for offset, n in enumerate(sizes):
            cover_times: list[int] = []
            infect_times: list[int] = []
            for replica, rng in enumerate(
                spawn_generators((seed, n, period % 1000, 12), samples)
            ):
                provider = EvolvingRegularGraph(
                    n, wl.degree, period=period, seed=(seed, n, period % 1000, replica)
                )
                process = DynamicCobraProcess(provider, 0, branching=2.0, seed=rng)
                result = run_process(process, raise_on_timeout=True)
                cover_times.append(result.completion_time)

                provider2 = EvolvingRegularGraph(
                    n, wl.degree, period=period, seed=(seed, n, period % 1000, replica, 2)
                )
                bips = DynamicBipsProcess(provider2, 0, branching=2.0, seed=rng)
                result2 = run_process(bips, raise_on_timeout=True)
                infect_times.append(result2.completion_time)
            cover_stats = summarize(cover_times)
            infect_stats = summarize(infect_times)
            table.add_row([label, n, cover_stats.mean, infect_stats.mean])
            cover_means.append(cover_stats.mean)
            infect_means.append(infect_stats.mean)
        ns = [float(n) for n in sizes]
        cover_fit = fit_log_linear(ns, cover_means)
        infect_fit = fit_log_linear(ns, infect_means)
        fits.add_row([label, "COBRA", cover_fit.slope, cover_fit.r_squared])
        fits.add_row([label, "BIPS", infect_fit.slope, infect_fit.r_squared])
        slope_pairs[label] = cover_fit.slope
        cover_by_regime[label] = cover_means

    fresh_slope = slope_pairs[_period_label(periods[0])]
    static_slope = slope_pairs[_period_label(periods[-1])]
    fresh_covers = cover_by_regime[_period_label(periods[0])]
    static_covers = cover_by_regime[_period_label(periods[-1])]
    churn_ratios = [fresh / static for fresh, static in zip(fresh_covers, static_covers)]
    worst_ratio = max(churn_ratios)
    findings = [
        (
            f"log-n scaling holds in every churn regime "
            f"(COBRA slopes: fresh-per-round {fresh_slope:.2f} vs static {static_slope:.2f})"
        ),
        (
            f"churn costs little: fresh-per-round mean cover is within a factor "
            f"{worst_ratio:.2f} of the static graph at every n "
            f"(ratios {', '.join(f'{ratio:.2f}' for ratio in churn_ratios)})"
        ),
        "this is an extension beyond the paper, aligned with the authors' "
        "follow-up work on COBRA in dynamic networks",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=run_mode,
        seed=seed,
        parameters=result_parameters(
            run_mode,
            wl,
            {
                "sizes": list(sizes),
                "degree": wl.degree,
                "samples": samples,
                "periods": [_period_label(p) for p in periods],
            },
        ),
        tables={"cover/infection times": table, "log-n fits": fits},
        findings=findings,
    )
