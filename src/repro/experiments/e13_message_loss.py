"""E13 — extension: COBRA and BIPS under independent message loss.

Real gossip deployments drop messages.  The extension thins every
push/contact independently with probability ``p`` and asks two
questions the paper's machinery answers:

* **Does the duality survive?**  Yes, exactly: thinning the choice
  sets preserves the two properties the Theorem 4 proof needs
  (identical per-vertex choice-set laws, independence across
  vertices).  Verified to float precision by the exact engines.
* **What does loss cost?**  An effective branching reduction: COBRA
  with branching `k` and loss `p` pushes `(1−p)k` surviving messages
  per token on average, so by the Theorem 3 lens the process stays
  logarithmic while ``(1−p)k > 1`` — but unlike the lossless process
  it can *die* (all messages of all tokens lost in one round), which
  the experiment quantifies alongside the slowdown.
"""

from __future__ import annotations

from repro._rng import spawn_generators
from repro.analysis.stats import proportion_ci, summarize
from repro.analysis.tables import Table
from repro.core.bips import BipsProcess
from repro.core.cobra import CobraProcess
from repro.core.runner import run_process
from repro.exact.duality import duality_gap
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap
from repro.graphs.generators import complete, cycle, petersen
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E13Workload

SPEC = ExperimentSpec(
    experiment_id="E13",
    title="Message loss (extension): lossy COBRA/BIPS and their duality",
    claim=(
        "independent per-message loss preserves the COBRA<->BIPS duality exactly, "
        "and costs an effective branching reduction k -> (1-p)k plus a death "
        "probability for COBRA"
    ),
    paper_reference="extension of Theorems 3 and 4 (choice-set thinning)",
    version="1",
)

GRAPH_N = 1024
GRAPH_R = 8
#: Supercritical loss rates: effective branching (1-p)k stays above 1.
LOSS_RATES = (0.0, 0.1, 0.25, 0.4)
#: The (1-p)k = 1 threshold for k = 2 sits at p = 1/2; sweep across it.
CRITICAL_SWEEP = (0.40, 0.45, 0.50, 0.55, 0.60)
QUICK_SAMPLES = 200
FULL_SAMPLES = 1000
ROUND_CAP = 3000
EXACT_T_MAX = 10

#: Workload type this experiment runs from.
WORKLOAD = E13Workload


def preset(mode: str) -> E13Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        samples = QUICK_SAMPLES
    elif mode == "full":
        samples = FULL_SAMPLES
    else:
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
    return E13Workload(
        n=GRAPH_N,
        r=GRAPH_R,
        loss_rates=LOSS_RATES,
        critical_sweep=CRITICAL_SWEEP,
        samples=samples,
        round_cap=ROUND_CAP,
        exact_t_max=EXACT_T_MAX,
    )


def run(
    workload: "E13Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E13 and return its tables and findings."""
    wl = resolve_workload(E13Workload, preset, workload, mode)
    run_mode = workload_label(preset, wl)
    samples = wl.samples
    graph_n, round_cap = wl.n, wl.round_cap

    # --- exact lossy duality --------------------------------------------
    exact = Table(
        ["graph", "branching", "loss p", "max |LHS - RHS|"], float_format="%.2e"
    )
    worst_gap = 0.0
    for label, graph, start, source in (
        ("petersen", petersen(), [0], 7),
        ("K6", complete(6), [1, 2], 4),
        ("C9", cycle(9), [0], 5),
    ):
        for branching in (1.5, 2.0):
            for loss in (0.1, 0.3, 0.6):
                gap = duality_gap(
                    graph,
                    start,
                    source,
                    wl.exact_t_max,
                    branching=branching,
                    loss_probability=loss,
                )
                worst_gap = max(worst_gap, gap)
                exact.add_row([label, branching, loss, gap])

    # --- cost of loss on an expander -------------------------------------
    graph, lam = expander_with_gap(graph_n, wl.r, seed=seed)
    cost = Table(
        [
            "loss p",
            "effective k",
            "COBRA mean cov",
            "COBRA died",
            "P(death) 95% CI",
            "BIPS mean reach-all",
        ]
    )
    cobra_means: dict[float, float] = {}
    for loss in wl.loss_rates:
        cover_times: list[int] = []
        deaths = 0
        for rng in spawn_generators((seed, int(loss * 100), 131), samples):
            process = CobraProcess(graph, 0, branching=2.0, loss_probability=loss, seed=rng)
            result = run_process(process, max_rounds=round_cap)
            if result.completed:
                cover_times.append(result.completion_time)
            elif result.extinct:
                deaths += 1
        # BIPS under loss: the full state is no longer absorbing (a
        # saturated vertex keeps its infection only w.p. 1 - p^k), so
        # simultaneous full infection effectively never occurs at
        # moderate p.  The meaningful coverage metric — and the dual of
        # COBRA's cover — is the first round by which every vertex has
        # been infected at least once.
        reach_all_times: list[int] = []
        for rng in spawn_generators((seed, int(loss * 100), 132), max(samples // 4, 25)):
            process = BipsProcess(graph, 0, branching=2.0, loss_probability=loss, seed=rng)
            while process.cumulative_count < graph_n and process.round_index < round_cap:
                process.step()
            if process.cumulative_count < graph_n:
                raise RuntimeError("lossy BIPS failed to reach every vertex in the cap")
            reach_all_times.append(process.round_index)
        ci = proportion_ci(deaths, samples)
        cover_mean = summarize(cover_times).mean if cover_times else float("nan")
        cobra_means[loss] = cover_mean
        cost.add_row(
            [
                loss,
                2.0 * (1.0 - loss),
                cover_mean,
                f"{deaths}/{samples}",
                f"[{ci[0]:.3f}, {ci[1]:.3f}]",
                summarize(reach_all_times).mean,
            ]
        )

    # --- the criticality transition at (1-p)k = 1 -------------------------
    transition = Table(
        ["loss p", "effective k", "covered", "died", "P(cover)"]
    )
    for loss in wl.critical_sweep:
        covered = 0
        died = 0
        for rng in spawn_generators((seed, int(loss * 1000), 133), samples):
            process = CobraProcess(graph, 0, branching=2.0, loss_probability=loss, seed=rng)
            result = run_process(process, max_rounds=round_cap)
            if result.completed:
                covered += 1
            elif result.extinct:
                died += 1
        transition.add_row(
            [loss, 2.0 * (1.0 - loss), covered, died, covered / samples]
        )

    slowdown = cobra_means[wl.loss_rates[-1]] / cobra_means[0.0]
    cover_probabilities = dict(
        zip(transition.column("loss p"), transition.column("P(cover)"))
    )
    findings = [
        f"the duality holds exactly under loss: worst gap {worst_gap:.2e} "
        "across graphs, branchings and loss rates (float noise)",
        (
            f"loss is an effective branching reduction: at p = {wl.loss_rates[-1]} "
            f"(effective k = {2 * (1 - wl.loss_rates[-1]):.1f}) mean cover is "
            f"x{slowdown:.1f} the lossless time, mirroring Theorem 3's 1/rho slope"
        ),
        (
            f"a phase transition sits at (1-p)k = 1 (p = 0.5 for k = 2): cover "
            f"probability drops from {cover_probabilities[wl.critical_sweep[0]]:.2f} "
            f"at p = {wl.critical_sweep[0]:.2f} to "
            f"{cover_probabilities[wl.critical_sweep[-1]]:.2f} at "
            f"p = {wl.critical_sweep[-1]:.2f} — below threshold the token "
            "population dies before covering, Theorem 3's rho > 0 condition seen "
            "from the other side"
        ),
        "loss destroys BIPS's absorbing full state (a saturated vertex keeps its "
        "infection only w.p. 1 - p^k), so the reach-every-vertex time replaces "
        "infec(v) as the coverage metric — and it stays logarithmic",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=run_mode,
        seed=seed,
        parameters=result_parameters(
            run_mode,
            wl,
            {
                "n": graph_n,
                "r": wl.r,
                "lambda": lam,
                "loss_rates": list(wl.loss_rates),
                "samples": samples,
            },
        ),
        tables={
            "exact lossy duality": exact,
            "cost of loss": cost,
            "criticality transition": transition,
        },
        findings=findings,
    )
