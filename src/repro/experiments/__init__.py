"""Experiment registry: one module per paper claim, keyed ``E1`` .. ``E10``.

Each module exposes ``SPEC`` (an
:class:`~repro.experiments.spec.ExperimentSpec`) and
``run(mode="quick"|"full", seed=0) -> ExperimentResult``.  Use
:func:`get_experiment` / :func:`run_experiment` for access by id, or
the CLI (``python -m repro``).
"""

from __future__ import annotations

from types import ModuleType

from repro.errors import ExperimentError
from repro.experiments import (
    e1_cover_expanders,
    e2_bips_infection,
    e3_fractional_branching,
    e4_duality,
    e5_growth_bound,
    e6_phases,
    e7_baselines,
    e8_spectral_sweep,
    e9_branching_sweep,
    e10_persistence_ablation,
    e11_whp_tails,
    e12_dynamic_graphs,
    e13_message_loss,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec

#: Registry of experiment modules in presentation order.
REGISTRY: dict[str, ModuleType] = {
    module.SPEC.experiment_id: module
    for module in (
        e1_cover_expanders,
        e2_bips_infection,
        e3_fractional_branching,
        e4_duality,
        e5_growth_bound,
        e6_phases,
        e7_baselines,
        e8_spectral_sweep,
        e9_branching_sweep,
        e10_persistence_ablation,
        e11_whp_tails,
        e12_dynamic_graphs,
        e13_message_loss,
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in presentation order."""
    return list(REGISTRY)


def get_experiment(experiment_id: str) -> ModuleType:
    """The experiment module for an id (case-insensitive)."""
    module = REGISTRY.get(experiment_id.upper())
    if module is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(REGISTRY)}"
        )
    return module


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an id."""
    return get_experiment(experiment_id).SPEC


def run_experiment(experiment_id: str, *, mode: str = "quick", seed: int = 0) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    return get_experiment(experiment_id).run(mode=mode, seed=seed)


__all__ = [
    "REGISTRY",
    "experiment_ids",
    "get_experiment",
    "get_spec",
    "run_experiment",
    "ExperimentResult",
    "ExperimentSpec",
]
