"""Experiment registry: one module per paper claim, keyed ``E1`` .. ``E13``.

Each module exposes ``SPEC`` (an
:class:`~repro.experiments.spec.ExperimentSpec`), a ``WORKLOAD``
dataclass type with a ``preset(mode)`` factory, and
``run(workload=None, seed=0, *, mode=None) -> ExperimentResult`` —
``run()`` alone is the quick preset, ``run(mode="full")`` the legacy
shim, and ``run(workload)`` any bespoke
:class:`~repro.scenarios.base.Workload`.  Use :func:`get_experiment` /
:func:`run_experiment` for access by id, or the CLI
(``python -m repro``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any
from types import ModuleType

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cache import ResultCache
from repro.experiments import (
    e1_cover_expanders,
    e2_bips_infection,
    e3_fractional_branching,
    e4_duality,
    e5_growth_bound,
    e6_phases,
    e7_baselines,
    e8_spectral_sweep,
    e9_branching_sweep,
    e10_persistence_ablation,
    e11_whp_tails,
    e12_dynamic_graphs,
    e13_message_loss,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec

#: Registry of experiment modules in presentation order.
REGISTRY: dict[str, ModuleType] = {
    module.SPEC.experiment_id: module
    for module in (
        e1_cover_expanders,
        e2_bips_infection,
        e3_fractional_branching,
        e4_duality,
        e5_growth_bound,
        e6_phases,
        e7_baselines,
        e8_spectral_sweep,
        e9_branching_sweep,
        e10_persistence_ablation,
        e11_whp_tails,
        e12_dynamic_graphs,
        e13_message_loss,
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in presentation order."""
    return list(REGISTRY)


def get_experiment(experiment_id: str) -> ModuleType:
    """The experiment module for an id (case-insensitive)."""
    module = REGISTRY.get(experiment_id.upper())
    if module is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(REGISTRY)}"
        )
    return module


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an id."""
    return get_experiment(experiment_id).SPEC


#: Sentinel distinguishing "not a cacheable constant" from a cacheable None.
_NOT_A_PARAMETER = object()


def _parameter_value(value: Any) -> Any:
    """A module constant normalised for hashing, or the reject sentinel.

    Only plain JSON-shaped data (scalars, strings, nested lists/tuples
    and string-keyed dicts) counts as a workload parameter; functions,
    classes, arrays, and other machinery are not part of a run's
    identity.
    """
    if isinstance(value, float):
        # Non-finite floats cannot appear in a canonical cache key
        # (repro.cache rejects them), so they are not parameters.
        if value != value or value in (float("inf"), float("-inf")):
            return _NOT_A_PARAMETER
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (list, tuple)):
        items = [_parameter_value(item) for item in value]
        if any(item is _NOT_A_PARAMETER for item in items):
            return _NOT_A_PARAMETER
        return items
    if isinstance(value, dict):
        normalised = {}
        for key, item in value.items():
            item = _parameter_value(item)
            if not isinstance(key, str) or item is _NOT_A_PARAMETER:
                return _NOT_A_PARAMETER
            normalised[key] = item
        return normalised
    return _NOT_A_PARAMETER


def resolved_parameters(
    experiment_id: str, mode: str = "quick", workload: Any = None
) -> dict[str, Any]:
    """The run-identity parameters of an experiment, computable *before* a run.

    For preset runs (``mode=``, or a workload exactly equal to the
    quick/full preset) this is the legacy format: the experiment's spec
    (version included) plus every UPPER_CASE module-level workload
    constant with JSON-shaped data — the values the presets are built
    from (and the values the micro-scale test overrides patch).
    Keeping the legacy format means the workload refactor changed no
    preset cache keys (golden-tested), and patching ``QUICK_TRIALS``
    (or editing a constant in source) still changes the key, so stale
    cache entries can never shadow a differently-parameterised run.

    A bespoke ``workload`` is keyed by its canonical serialisation
    instead: ``{"spec": ..., "mode": "scenario", "workload": ...}``.
    Together with ``seed`` the returned dict determines what a run
    would compute, which is exactly what the result cache must key on.
    """
    from repro.scenarios.base import workload_label  # deferred: import cycle

    module = get_experiment(experiment_id)
    if workload is not None and not isinstance(workload, str):
        label = workload_label(module.preset, workload)
        if label == "scenario":
            return {
                "spec": module.SPEC.to_dict(),
                "mode": "scenario",
                "workload": workload.to_dict(),
            }
        mode = label
    elif isinstance(workload, str):
        mode = workload
    constants = {}
    for name in sorted(vars(module)):
        if not name.isupper() or name.startswith("_") or name == "SPEC":
            continue
        value = _parameter_value(getattr(module, name))
        if value is not _NOT_A_PARAMETER:
            constants[name] = value
    return {"spec": module.SPEC.to_dict(), "mode": mode, "constants": constants}


def _resolve_cache(
    cache: "ResultCache | None", cache_dir: Any | None
) -> "ResultCache | None":
    """Normalise the ``cache=`` / ``cache_dir=`` pair to a cache or ``None``."""
    if cache is not None:
        return cache
    if cache_dir is not None:
        from repro.cache import ResultCache  # deferred: avoids an import cycle

        return ResultCache(cache_dir)
    return None


def run_experiment_cached(
    experiment_id: str,
    *,
    mode: str | None = None,
    seed: int = 0,
    workload: Any = None,
    cache: "ResultCache | None" = None,
    cache_dir: Any | None = None,
) -> tuple[ExperimentResult, bool]:
    """Run one experiment, consulting a result cache when one is given.

    ``workload`` (a :class:`~repro.scenarios.base.Workload` of the
    experiment's type) runs a bespoke configuration; ``mode`` the
    quick/full preset (the default is quick).  Passing both is an
    error.  Returns ``(result, cached)`` where ``cached`` is True when
    the result came from the cache instead of being recomputed.  A
    fresh computation is stored back, so the next identical call is a
    hit.  Preset runs (including a workload exactly equal to a preset)
    keep their pre-scenario cache keys; bespoke workloads are keyed by
    their canonical JSON under the ``"scenario"`` mode label.
    """
    from repro.parallel import shared_graph_scope
    from repro.scenarios.base import workload_label

    module = get_experiment(experiment_id)
    store = _resolve_cache(cache, cache_dir)
    if store is None:
        with shared_graph_scope():
            return module.run(workload, seed=seed, mode=mode), False
    if workload is None:
        label = mode if mode is not None else "quick"
        parameters = resolved_parameters(experiment_id, label)
    else:
        if mode is not None:
            raise ExperimentError(
                f"pass either workload= or mode=, not both "
                f"(got mode={mode!r} and a workload)"
            )
        label = (
            workload
            if isinstance(workload, str)
            else workload_label(module.preset, workload)
        )
        parameters = resolved_parameters(experiment_id, workload=workload)
    hit = store.get(module.SPEC.experiment_id, label, seed, parameters)
    if hit is not None:
        return hit, True
    with shared_graph_scope():
        result = module.run(workload, seed=seed, mode=mode)
    store.put(module.SPEC.experiment_id, label, seed, parameters, result)
    return result, False


def run_experiment(
    experiment_id: str,
    *,
    mode: str | None = None,
    seed: int = 0,
    workload: Any = None,
    cache: "ResultCache | None" = None,
    cache_dir: Any | None = None,
) -> ExperimentResult:
    """Run one experiment by id and return its result.

    ``workload``/``mode`` select the configuration exactly as in
    :func:`run_experiment_cached`.  ``cache=`` (a
    :class:`~repro.cache.ResultCache`) or ``cache_dir=`` (a path)
    enables result caching: a previously stored identical run is
    loaded instead of recomputed.
    """
    result, _ = run_experiment_cached(
        experiment_id,
        mode=mode,
        seed=seed,
        workload=workload,
        cache=cache,
        cache_dir=cache_dir,
    )
    return result


__all__ = [
    "REGISTRY",
    "experiment_ids",
    "get_experiment",
    "get_spec",
    "resolved_parameters",
    "run_experiment",
    "run_experiment_cached",
    "ExperimentResult",
    "ExperimentSpec",
]
