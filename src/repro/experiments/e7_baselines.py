"""E7 — §1 comparisons: complete graphs, grids/tori, and k = 1 walks.

Three claims from the paper's introduction (results of Dutta et al.
that motivate Theorem 1, plus the k = 1 lower bound):

* on the complete graph ``K_n`` COBRA covers in ``O(log n)`` rounds;
* on the `d`-dimensional grid it covers in ``Õ(n^{1/d})`` — measured
  here on tori with odd sides, the regular non-bipartite grid
  analogue (see DESIGN.md's substitution table);
* with ``k = 1`` (a single random walk) cover needs ``Ω(n log n)``
  rounds on *any* graph, so branching is necessary for ``O(log n)``.
"""

from __future__ import annotations

import math

from repro.analysis.fitting import fit_log_linear, fit_power_law
from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import (
    expander_with_gap,
    measure_cobra_cover,
    measure_random_walk_cover,
)
from repro.graphs.generators import complete, torus
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E7Workload

SPEC = ExperimentSpec(
    experiment_id="E7",
    title="Complete graphs, tori, and the k=1 baseline",
    claim=(
        "COBRA k=2 covers K_n in O(log n) and d-dimensional grids in ~n^(1/d); "
        "k=1 (a single random walk) needs Omega(n log n) on any graph"
    ),
    paper_reference="Section 1 (results (i)-(iii) of Dutta et al., and the k=1 remark)",
    # v2: the COBRA ensembles ride the batch engine default (same
    # distribution, different same-seed draws).
    version="2",
)

QUICK = {
    "complete_sizes": (64, 256, 1024, 4096),
    "torus2d_sides": (15, 21, 31, 45),
    "torus3d_sides": (5, 7, 9),
    "walk_sizes": (128, 256, 512, 1024),
    "samples": 10,
}
# Complete graphs are stored as explicit edge lists, so the ladder stops
# at 4096 (~8.4M edges); the log-n shape is already unambiguous there.
FULL = {
    "complete_sizes": (64, 256, 1024, 2048, 4096),
    "torus2d_sides": (15, 21, 31, 45, 63),
    "torus3d_sides": (5, 7, 9, 11),
    "walk_sizes": (128, 256, 512, 1024, 2048),
    "samples": 25,
}
WALK_DEGREE = 8

#: Workload type this experiment runs from.
WORKLOAD = E7Workload


def preset(mode: str) -> E7Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        config = QUICK
    elif mode == "full":
        config = FULL
    else:
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
    return E7Workload(
        complete_sizes=config["complete_sizes"],
        torus2d_sides=config["torus2d_sides"],
        torus3d_sides=config["torus3d_sides"],
        walk_sizes=config["walk_sizes"],
        samples=config["samples"],
        walk_degree=WALK_DEGREE,
    )


def run(
    workload: "E7Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E7 and return its tables and findings."""
    wl = resolve_workload(E7Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    samples = wl.samples

    # --- complete graphs -------------------------------------------------
    complete_table = Table(["n", "mean cov", "cov / log2 n"])
    complete_ns: list[float] = []
    complete_means: list[float] = []
    for n in wl.complete_sizes:
        result = measure_cobra_cover(complete(n), n_samples=samples, seed=(seed, n, 71))
        complete_table.add_row([n, result.stats.mean, result.stats.mean / math.log2(n)])
        complete_ns.append(float(n))
        complete_means.append(result.stats.mean)
    complete_fit = fit_log_linear(complete_ns, complete_means)

    # --- tori (grid analogue) --------------------------------------------
    torus_table = Table(["dim", "side", "n", "mean cov", "n^(1/d)"])
    torus_fits = Table(["dim", "power-law exponent", "R^2", "theory 1/d"])
    exponents: dict[int, float] = {}
    for dim, sides in ((2, wl.torus2d_sides), (3, wl.torus3d_sides)):
        ns: list[float] = []
        means: list[float] = []
        for side in sides:
            graph = torus((side,) * dim)
            n = graph.n_vertices
            result = measure_cobra_cover(graph, n_samples=samples, seed=(seed, n, 72))
            torus_table.add_row([dim, side, n, result.stats.mean, n ** (1.0 / dim)])
            ns.append(float(n))
            means.append(result.stats.mean)
        fit = fit_power_law(ns, means)
        exponents[dim] = fit.slope
        torus_fits.add_row([dim, fit.slope, fit.r_squared, 1.0 / dim])

    # --- k = 1: a single random walk --------------------------------------
    walk_table = Table(
        ["n", "RW mean cover", "n ln n", "COBRA k=2 mean cov", "speedup"]
    )
    walk_ns: list[float] = []
    walk_means: list[float] = []
    for offset, n in enumerate(wl.walk_sizes):
        graph, _ = expander_with_gap(n, wl.walk_degree, seed=seed + 100 + offset)
        walk = measure_random_walk_cover(graph, n_samples=samples, seed=(seed, n, 73))
        cobra = measure_cobra_cover(graph, n_samples=samples, seed=(seed, n, 74))
        walk_table.add_row(
            [
                n,
                walk.stats.mean,
                n * math.log(n),
                cobra.stats.mean,
                walk.stats.mean / cobra.stats.mean,
            ]
        )
        walk_ns.append(float(n))
        walk_means.append(walk.stats.mean)
    walk_fit = fit_power_law(walk_ns, walk_means)

    findings = [
        (
            f"K_n: cover is linear in log n (slope {complete_fit.slope:.2f}, "
            f"R^2 = {complete_fit.r_squared:.4f})"
        ),
        (
            f"tori: power-law exponents {exponents[2]:.2f} (2-D) and {exponents[3]:.2f} (3-D) "
            f"vs the predicted 1/d = 0.50 and 0.33 (log factors push them slightly above)"
        ),
        (
            f"k=1 walk cover grows like n^{walk_fit.slope:.2f} (superlinear in n, "
            f"consistent with Omega(n log n)), while COBRA k=2 stays logarithmic — "
            f"branching is what buys the exponential speedup"
        ),
    ]
    config = {
        "complete_sizes": wl.complete_sizes,
        "torus2d_sides": wl.torus2d_sides,
        "torus3d_sides": wl.torus3d_sides,
        "walk_sizes": wl.walk_sizes,
        "samples": samples,
    }
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {key: list(value) if isinstance(value, tuple) else value
             for key, value in config.items()},
        ),
        tables={
            "complete graphs": complete_table,
            "tori": torus_table,
            "torus power-law fits": torus_fits,
            "random walk vs COBRA": walk_table,
        },
        findings=findings,
    )
