"""Experiment metadata: what claim is tested, where in the paper it lives."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity card of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        Registry key, ``"E1"`` .. ``"E10"``.
    title:
        One-line human-readable name.
    claim:
        The paper claim the experiment validates, paraphrased.
    paper_reference:
        Where the claim is stated (theorem/lemma/section).
    version:
        Methodology revision of the experiment.  The spec (version
        included) is part of the result-cache key, so bumping it
        invalidates cached results when an experiment's procedure
        changes in a way its workload constants don't capture.
    """

    experiment_id: str
    title: str
    claim: str
    paper_reference: str
    version: str = "1"

    def to_dict(self) -> dict[str, str]:
        """Plain-dict form for JSON storage."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            claim=data["claim"],
            paper_reference=data["paper_reference"],
            version=data.get("version", "1"),
        )

    def header(self) -> str:
        """Multi-line banner used at the top of rendered results."""
        return (
            f"[{self.experiment_id}] {self.title}\n"
            f"  claim : {self.claim}\n"
            f"  source: {self.paper_reference}"
        )
