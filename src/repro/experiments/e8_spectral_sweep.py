"""E8 — Theorem 1's spectral-gap dependence.

Theorem 1 bounds the cover time by ``log n / (1-λ)³``; the cube is an
artefact of the proof, so the interesting empirical question is how the
*measured* cover time grows as the gap closes.  Two families sweep the
gap at (nearly) fixed `n`:

* circulants ``C_n(1..j)`` — analytically known gaps spanning five
  orders of magnitude as `j` shrinks;
* random `r`-regular graphs — gaps from ``≈0.06`` (`r = 3`) up to
  ``≈0.9`` (`r = 64`).

The report fits ``log cov`` against ``log 1/(1-λ)`` and checks the
exponent sits below Theorem 1's ceiling of 3.  (On circulants the true
dependence is ≈ gap^(-1/2): cover ~ n/j while gap ~ (j/n)² — a case
where the paper's bound is valid but far from tight, which the table
makes visible.)
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.fitting import fit_power_law
from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap, measure_cobra_cover
from repro.graphs.generators import circulant
from repro.graphs.spectral import analytic_lambda
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E8Workload
from repro.theory.bounds import cover_time_bound

SPEC = ExperimentSpec(
    experiment_id="E8",
    title="Cover time vs spectral gap",
    claim=(
        "COV(G) = O(log n / (1-lambda)^3): the gap exponent of the measured cover "
        "time must not exceed 3"
    ),
    paper_reference="Theorem 1 (gap dependence)",
    # v2: ensembles ride the vectorised batch engine (same distribution,
    # different same-seed draws), invalidating cached v1 results.
    version="2",
)

CIRCULANT_N = 513  # odd => non-bipartite for every offset set
QUICK_CHORDS = (1, 2, 4, 8, 16)
FULL_CHORDS = (1, 2, 3, 4, 6, 8, 12, 16, 24)
REGULAR_N = 512
QUICK_DEGREES = (3, 4, 6, 8, 16, 32)
FULL_DEGREES = (3, 4, 6, 8, 12, 16, 24, 32, 64)
QUICK_SAMPLES = 10
FULL_SAMPLES = 25

#: Workload type this experiment runs from.
WORKLOAD = E8Workload


def preset(mode: str) -> E8Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E8Workload(
            circulant_n=CIRCULANT_N,
            chords=QUICK_CHORDS,
            regular_n=REGULAR_N,
            degrees=QUICK_DEGREES,
            samples=QUICK_SAMPLES,
        )
    if mode == "full":
        return E8Workload(
            circulant_n=CIRCULANT_N,
            chords=FULL_CHORDS,
            regular_n=REGULAR_N,
            degrees=FULL_DEGREES,
            samples=FULL_SAMPLES,
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E8Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E8 and return its tables, figure, and findings."""
    wl = resolve_workload(E8Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    chords, degrees, samples = wl.chords, wl.degrees, wl.samples
    circulant_n, regular_n = wl.circulant_n, wl.regular_n

    table = Table(
        ["family", "param", "lambda", "1/(1-lambda)", "mean cov", "bound T"]
    )
    circulant_points: tuple[list[float], list[float]] = ([], [])
    for j in chords:
        offsets = tuple(range(1, j + 1))
        graph = circulant(circulant_n, offsets)
        lam = analytic_lambda("circulant", n=circulant_n, offsets=offsets)
        result = measure_cobra_cover(graph, n_samples=samples, seed=(seed, j, 81))
        inverse_gap = 1.0 / (1.0 - lam)
        table.add_row(
            [
                f"circulant({circulant_n}, 1..j)",
                f"j={j}",
                lam,
                inverse_gap,
                result.stats.mean,
                cover_time_bound(circulant_n, lam),
            ]
        )
        circulant_points[0].append(inverse_gap)
        circulant_points[1].append(result.stats.mean)

    regular_points: tuple[list[float], list[float]] = ([], [])
    for offset, r in enumerate(degrees):
        graph, lam = expander_with_gap(regular_n, r, seed=seed + 200 + offset)
        result = measure_cobra_cover(graph, n_samples=samples, seed=(seed, r, 82))
        inverse_gap = 1.0 / (1.0 - lam)
        table.add_row(
            [
                f"random regular n={regular_n}",
                f"r={r}",
                lam,
                inverse_gap,
                result.stats.mean,
                cover_time_bound(regular_n, lam),
            ]
        )
        regular_points[0].append(inverse_gap)
        regular_points[1].append(result.stats.mean)

    circulant_fit = fit_power_law(*circulant_points)
    regular_fit = fit_power_law(*regular_points)
    fits = Table(["family", "gap exponent", "R^2", "Theorem 1 ceiling"])
    fits.add_row(["circulant", circulant_fit.slope, circulant_fit.r_squared, 3.0])
    fits.add_row(["random regular", regular_fit.slope, regular_fit.r_squared, 3.0])

    figure = ascii_plot(
        {
            f"circulant({circulant_n})": circulant_points,
            f"random reg n={regular_n}": regular_points,
        },
        log_x=True,
        log_y=True,
        title="E8: COBRA k=2 mean cover time vs 1/(1-lambda) (log-log)",
        x_label="1/(1-lambda)",
        y_label="rounds",
    )
    exponent_ok = max(circulant_fit.slope, regular_fit.slope) <= 3.0
    findings = [
        (
            f"measured gap exponents: circulant {circulant_fit.slope:.2f}, "
            f"random regular {regular_fit.slope:.2f} — "
            f"{'both below' if exponent_ok else 'EXCEEDING'} Theorem 1's ceiling of 3"
        ),
        (
            "on circulants the dependence is ~ gap^(-1/2) (cover ~ n/j, gap ~ (j/n)^2): "
            "the paper's bound is valid but loose on this family"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "circulant_n": circulant_n,
                "chords": list(chords),
                "regular_n": regular_n,
                "degrees": list(degrees),
                "samples": samples,
                "engine": "batch",
            },
        ),
        tables={"cover vs gap": table, "power-law fits": fits},
        figures={"cover vs inverse gap": figure},
        findings=findings,
    )
