"""Micro-scale parameter overrides shared by smoke harnesses.

One table mapping each experiment id to the module-constant overrides
that shrink its *quick* configuration to toy scale, so the full code
path (graph building, measurement, fitting, rendering) executes in
seconds.  Both the unit tests (`tests/experiments/test_experiment_runs.py`)
and the benchmark harness's ``REPRO_BENCH_QUICK=1`` mode consume this
table — keeping them in one place means CI smoke always exercises
exactly the parameters the tests validate.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments import get_experiment

#: Per-experiment module-constant overrides for micro-scale smoke runs.
MICRO_OVERRIDES: dict[str, dict[str, Any]] = {
    "E1": {"QUICK_SIZES": (64, 128), "QUICK_DEGREES": (3, 8), "QUICK_SAMPLES": 3},
    "E2": {"QUICK_SIZES": (64, 128), "QUICK_SAMPLES": 3},
    "E3": {"QUICK_SIZES": (64, 128), "QUICK_RHOS": (0.5, 1.0), "QUICK_SAMPLES": 3},
    "E4": {"QUICK_TRIALS": 200, "EXACT_T_MAX": 4},
    "E5": {},  # already sub-second at quick scale
    "E6": {"QUICK_SIZES": (128, 256), "QUICK_TRAJECTORIES": 3},
    "E7": {
        "QUICK": {
            "complete_sizes": (32, 64, 128),
            "torus2d_sides": (5, 9, 13),
            "torus3d_sides": (3, 5),
            "walk_sizes": (32, 64),
            "samples": 3,
        }
    },
    "E8": {
        "CIRCULANT_N": 65,
        "QUICK_CHORDS": (1, 4),
        "REGULAR_N": 64,
        "QUICK_DEGREES": (3, 8),
        "QUICK_SAMPLES": 3,
    },
    "E9": {"GRAPH_N": 128, "QUICK_BRANCHINGS": (1.0, 2.0), "QUICK_SAMPLES": 3},
    "E10": {"GRAPH_N": 64, "QUICK_SIS_TRIALS": 40, "QUICK_BIPS_TRIALS": 10},
    "E11": {
        "TAIL_GRAPH_N": 256,
        "QUICK_TAIL_SAMPLES": 400,
        "QUICK_LADDER": (128, 256),
        "QUICK_LADDER_SAMPLES": 60,
    },
    "E12": {"QUICK_SIZES": (64, 128), "QUICK_SAMPLES": 3},
    "E13": {"GRAPH_N": 128, "QUICK_SAMPLES": 30, "EXACT_T_MAX": 4},
}


def apply_micro_overrides(
    experiment_id: str, setter: Callable[[object, str, Any], None]
) -> None:
    """Apply an experiment's micro overrides through ``setter``.

    ``setter`` is called as ``setter(module, name, value)``; pass
    ``monkeypatch.setattr`` from a test, or plain ``setattr`` from a
    harness that restores values itself.
    """
    module = get_experiment(experiment_id)
    for name, value in MICRO_OVERRIDES[experiment_id.upper()].items():
        setter(module, name, value)
