"""E1 — Theorem 1: COBRA covers expanders in O(log n), degree-free.

Workload: connected random `r`-regular graphs over a ladder of sizes
`n` and a spread of degrees `r`.  For every ``(n, r)`` cell we measure
an ensemble of COBRA (`k = 2`) cover times from a fixed start vertex,
then (a) fit ``cov = a + b log n`` per degree and report ``R²`` — the
linear-in-``log n`` shape *is* Theorem 1's content on expanders — and
(b) compare the fitted slopes across degrees, which Theorem 1 predicts
to be comparable for every `3 <= r <= n-1` (the bound is independent
of `r`).
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.fitting import fit_log_linear
from repro.analysis.tables import Table
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap, measure_cobra_cover
from repro.graphs.generators import complete
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E1Workload
from repro.theory.bounds import cover_time_bound, spectral_condition_holds

SPEC = ExperimentSpec(
    experiment_id="E1",
    title="COBRA cover time on regular expanders",
    claim=(
        "With k=2, COV(G) = O(log n / (1-lambda)^3) — O(log n) on expanders — "
        "independent of the degree r for 3 <= r <= n-1"
    ),
    paper_reference="Theorem 1",
    # v2: ensembles ride the vectorised batch engine (same distribution,
    # different same-seed draws), invalidating cached v1 results.
    version="2",
)

QUICK_SIZES = (256, 512, 1024, 2048)
QUICK_DEGREES = (3, 8, 32)
QUICK_SAMPLES = 12

FULL_SIZES = (256, 512, 1024, 2048, 4096, 8192)
FULL_DEGREES = (3, 8, 32, 64)
FULL_SAMPLES = 30

#: Workload type this experiment runs from.
WORKLOAD = E1Workload


def preset(mode: str) -> E1Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E1Workload(sizes=QUICK_SIZES, degrees=QUICK_DEGREES, samples=QUICK_SAMPLES)
    if mode == "full":
        return E1Workload(sizes=FULL_SIZES, degrees=FULL_DEGREES, samples=FULL_SAMPLES)
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E1Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E1 and return its tables, figure, and findings."""
    wl = resolve_workload(E1Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sizes, degrees, samples = wl.sizes, wl.degrees, wl.samples

    measurements = Table(
        ["n", "r", "lambda", "condition", "mean cov", "median", "max", "T = log n/(1-l)^3"]
    )
    series: dict[str, tuple[list[float], list[float]]] = {}
    fits = Table(["r", "slope b", "intercept a", "R^2"])
    slopes: list[float] = []

    graph_seed = seed
    for r in degrees:
        xs: list[float] = []
        ys: list[float] = []
        for n in sizes:
            graph, lam = expander_with_gap(n, r, seed=graph_seed)
            graph_seed += 1
            result = measure_cobra_cover(
                graph,
                n_samples=samples,
                seed=(seed, n, r),
                branching=wl.branching,
                engine=wl.engine,
                transmission_rate=wl.transmission_rate,
            )
            measurements.add_row(
                [
                    n,
                    r,
                    lam,
                    spectral_condition_holds(n, lam),
                    result.stats.mean,
                    result.stats.median,
                    result.stats.maximum,
                    cover_time_bound(n, lam),
                ]
            )
            xs.append(float(n))
            ys.append(result.stats.mean)
        fit = fit_log_linear(xs, ys)
        fits.add_row([r, fit.slope, fit.intercept, fit.r_squared])
        slopes.append(fit.slope)
        series[f"r={r}"] = (xs, ys)

    # The complete graph is the r = n-1 endpoint of the degree range.
    complete_rows = Table(["n", "lambda", "mean cov", "mean cov / log2(n)"])
    import math

    for n in sizes:
        graph = complete(n)
        result = measure_cobra_cover(
            graph,
            n_samples=samples,
            seed=(seed, n, 999_983),
            branching=wl.branching,
            engine=wl.engine,
            transmission_rate=wl.transmission_rate,
        )
        complete_rows.add_row(
            [n, 1.0 / (n - 1), result.stats.mean, result.stats.mean / math.log2(n)]
        )

    slope_spread = max(slopes) / min(slopes) if min(slopes) > 0 else float("inf")
    min_r2 = min(float(row[3]) for row in fits.rows)
    figure = ascii_plot(
        series,
        log_x=True,
        title="E1: COBRA k=2 mean cover time vs n (log x) on random r-regular graphs",
        x_label="n",
        y_label="rounds",
    )

    findings = [
        f"cover time is linear in log n: worst per-degree fit R^2 = {min_r2:.4f}",
        (
            f"degree independence: fitted log-n slopes across r = {degrees} "
            f"differ by a factor of {slope_spread:.2f} "
            f"(Theorem 1 predicts comparable slopes for all r)"
        ),
        "measured cover times sit far below the explicit bound T (paper constants are loose)",
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "sizes": list(sizes),
                "degrees": list(degrees),
                "samples": samples,
                "branching": wl.branching,
                "engine": wl.engine,
            },
        ),
        tables={
            "cover times": measurements,
            "log-n fits per degree": fits,
            "complete graph (r = n-1 endpoint)": complete_rows,
        },
        figures={"cover vs n": figure},
        findings=findings,
    )
