"""E6 — Lemmas 2-4: the three-phase growth of the BIPS infected set.

The proof of Theorem 2 decomposes a BIPS run into a small-set phase
(to ``m = K log n/(1-λ)²``), a mid phase (to ``9n/10``) and an endgame
(to ``n``), with explicit round budgets per phase.  We record infected-
set trajectories on an expander ladder, measure where each trajectory
actually crosses the thresholds, and compare against the budgets.

Two honest caveats are built into the report: (a) the paper's constant
``K = 4000`` makes the boundary exceed `n` at simulation scale, so the
threshold uses ``K = 1`` — the *shape* of the decomposition is what is
being checked; (b) the budgets use the paper's loose explicit
constants, so measured durations should sit well below them (the check
is that they do, and that durations scale like ``log n``).
"""

from __future__ import annotations

from repro.analysis.fitting import fit_log_linear
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.batch import batch_bips_traces
from repro.core.runner import default_max_rounds
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap
from repro.analysis.phases import split_phases
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E6Workload
from repro.theory.bounds import (
    lemma2_round_budget,
    lemma3_round_budget,
    lemma4_round_budget,
    phase_boundary_size,
)

SPEC = ExperimentSpec(
    experiment_id="E6",
    title="Three-phase growth of the BIPS infection",
    claim=(
        "The infected set crosses m = K log n/(1-lambda)^2 within "
        "13m/(1-lambda) + 24C log n/(1-lambda)^2 rounds, reaches 9n/10 within "
        "23 log n/(1-lambda) more, and covers within 8 log n/(1-lambda) more, w.h.p."
    ),
    paper_reference="Lemmas 2, 3, 4 (proof of Theorem 2)",
    # v2: trajectories come from the batched trace engine (same
    # distribution, different same-seed draws).
    version="2",
)

QUICK_SIZES = (512, 1024, 2048, 4096)
QUICK_TRAJECTORIES = 10
FULL_SIZES = (512, 1024, 2048, 4096, 8192)
FULL_TRAJECTORIES = 30
DEGREE = 8
SIMULATION_K = 1.0  # scaled-down boundary constant (paper: 4000)

#: Workload type this experiment runs from.
WORKLOAD = E6Workload


def preset(mode: str) -> E6Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E6Workload(
            sizes=QUICK_SIZES,
            trajectories=QUICK_TRAJECTORIES,
            degree=DEGREE,
            boundary_constant=SIMULATION_K,
        )
    if mode == "full":
        return E6Workload(
            sizes=FULL_SIZES,
            trajectories=FULL_TRAJECTORIES,
            degree=DEGREE,
            boundary_constant=SIMULATION_K,
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E6Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E6 and return its tables and findings."""
    wl = resolve_workload(E6Workload, preset, workload, mode)
    label = workload_label(preset, wl)
    sizes, trajectories = wl.sizes, wl.trajectories

    table = Table(
        [
            "n",
            "lambda",
            "boundary m",
            "small mean",
            "small budget",
            "mid mean",
            "mid budget",
            "endgame mean",
            "endgame budget",
        ]
    )
    ns: list[float] = []
    mid_means: list[float] = []
    end_means: list[float] = []
    within_budget = True
    for offset, n in enumerate(sizes):
        graph, lam = expander_with_gap(n, wl.degree, seed=seed + offset)
        boundary = phase_boundary_size(n, lam, constant=wl.boundary_constant)
        small_rounds: list[int] = []
        mid_rounds: list[int] = []
        endgame_rounds: list[int] = []
        cap = default_max_rounds(graph)
        # One batched-trace call evolves every trajectory of this cell
        # simultaneously; ``active_trajectory`` recovers the per-round
        # ``|A_t|`` curve (round 0 included) each lemma check needs.
        traces = batch_bips_traces(
            graph,
            0,
            branching=wl.branching,
            n_replicas=trajectories,
            seed=(seed, n, 6),
            max_rounds=cap,
        )
        for replica in range(trajectories):
            trajectory = traces.active_trajectory(replica)
            breakdown = split_phases(trajectory, n, boundary)
            if (
                breakdown.small_phase_rounds is None
                or breakdown.mid_phase_rounds is None
                or breakdown.endgame_rounds is None
            ):
                raise RuntimeError(f"BIPS trajectory on n={n} did not complete all phases")
            small_rounds.append(breakdown.small_phase_rounds)
            mid_rounds.append(breakdown.mid_phase_rounds)
            endgame_rounds.append(breakdown.endgame_rounds)
        small_budget = lemma2_round_budget(boundary, n, lam)
        mid_budget = lemma3_round_budget(n, lam)
        endgame_budget = lemma4_round_budget(n, lam)
        small_stats = summarize(small_rounds)
        mid_stats = summarize(mid_rounds)
        endgame_stats = summarize(endgame_rounds)
        within_budget = within_budget and (
            small_stats.maximum <= small_budget
            and mid_stats.maximum <= mid_budget
            and endgame_stats.maximum <= endgame_budget
        )
        table.add_row(
            [
                n,
                lam,
                boundary,
                small_stats.mean,
                small_budget,
                mid_stats.mean,
                mid_budget,
                endgame_stats.mean,
                endgame_budget,
            ]
        )
        ns.append(float(n))
        mid_means.append(mid_stats.mean)
        end_means.append(endgame_stats.mean)

    mid_fit = fit_log_linear(ns, mid_means)
    end_fit = fit_log_linear(ns, end_means)
    findings = [
        (
            "every measured phase duration (max over trajectories) sits below its "
            f"lemma budget: {'yes' if within_budget else 'NO'}"
        ),
        (
            f"mid-phase duration grows like log n (slope {mid_fit.slope:.2f}, "
            f"R^2 = {mid_fit.r_squared:.3f}); endgame likewise "
            f"(slope {end_fit.slope:.2f}, R^2 = {end_fit.r_squared:.3f})"
        ),
        (
            f"the boundary uses K = {wl.boundary_constant} instead of the paper's 4000 "
            "(with K = 4000 the boundary exceeds n at simulation scale)"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=label,
        seed=seed,
        parameters=result_parameters(
            label,
            wl,
            {
                "sizes": list(sizes),
                "degree": wl.degree,
                "trajectories": trajectories,
                "boundary_constant": wl.boundary_constant,
                "engine": "batch-traces",
            },
        ),
        tables={"phase durations vs budgets": table},
        findings=findings,
    )
