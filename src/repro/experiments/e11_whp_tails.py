"""E11 — the "with high probability" clause of Theorems 1 and 2.

The theorems claim their round counts hold w.h.p. — failure probability
``O(n^{-c})`` — via the restart argument of Eq. (1): each window of
``T`` rounds succeeds with constant probability, so
``P(cov > j T) <= q^j`` decays geometrically.  This experiment measures
the upper tail of the cover/infection-time distribution directly:

* large completion-time ensembles on a fixed expander → empirical
  survival functions and a geometric-tail fit (``log P(X > t)`` should
  be linear in ``t``, i.e. a straight tail);
* tail quantiles across the `n` ladder: the 99th percentile should
  track the mean with a bounded additive offset (max/mean → 1), not a
  multiplicative blow-up — the signature of concentration.

On tiny graphs, the exact cover-time law (`repro.exact.ExactCobraCover`)
confirms the geometric decay with no sampling error at all.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import Table
from repro.analysis.tails import (
    empirical_survival,
    fit_geometric_tail,
    restart_expectation_bound,
)
from repro.core.bips import BipsProcess
from repro.core.cobra import CobraProcess
from repro.core.runner import sample_completion_times
from repro.exact.cover_exact import ExactCobraCover
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import expander_with_gap
from repro.graphs.generators import complete
from repro.scenarios.base import resolve_workload, result_parameters, workload_label
from repro.scenarios.workloads import E11Workload

SPEC = ExperimentSpec(
    experiment_id="E11",
    title="High-probability tails of cover and infection times",
    claim=(
        "cov and infec hold w.h.p.: the restart argument (Eq. (1)) makes their "
        "upper tails decay geometrically, so quantiles track the mean"
    ),
    paper_reference="Theorems 1-3 (w.h.p. clauses) and Eq. (1)",
    version="1",
)

TAIL_GRAPH_N = 1024
TAIL_GRAPH_R = 8
QUICK_TAIL_SAMPLES = 2000
FULL_TAIL_SAMPLES = 10000
QUICK_LADDER = (256, 512, 1024, 2048)
FULL_LADDER = (256, 512, 1024, 2048, 4096)
QUICK_LADDER_SAMPLES = 200
FULL_LADDER_SAMPLES = 500

#: Workload type this experiment runs from.
WORKLOAD = E11Workload


def preset(mode: str) -> E11Workload:
    """The quick/full workload, built from the live module constants."""
    if mode == "quick":
        return E11Workload(
            tail_n=TAIL_GRAPH_N,
            tail_r=TAIL_GRAPH_R,
            tail_samples=QUICK_TAIL_SAMPLES,
            ladder=QUICK_LADDER,
            ladder_samples=QUICK_LADDER_SAMPLES,
        )
    if mode == "full":
        return E11Workload(
            tail_n=TAIL_GRAPH_N,
            tail_r=TAIL_GRAPH_R,
            tail_samples=FULL_TAIL_SAMPLES,
            ladder=FULL_LADDER,
            ladder_samples=FULL_LADDER_SAMPLES,
        )
    raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")


def run(
    workload: "E11Workload | str | None" = None,
    seed: int = 0,
    *,
    mode: str | None = None,
) -> ExperimentResult:
    """Run E11 and return its tables and findings."""
    wl = resolve_workload(E11Workload, preset, workload, mode)
    run_label = workload_label(preset, wl)
    tail_samples, ladder, ladder_samples = wl.tail_samples, wl.ladder, wl.ladder_samples
    tail_n, tail_r = wl.tail_n, wl.tail_r

    # --- geometric tails on a fixed expander ---------------------------
    graph, lam = expander_with_gap(tail_n, tail_r, seed=seed)
    tails = Table(
        ["process", "samples", "mean", "p99", "max", "tail rate / round", "halving time"]
    )
    rates: dict[str, float] = {}
    survival_series: dict[str, tuple[list[float], list[float]]] = {}
    cobra_mean = cobra_p99 = float("nan")
    for label, factory in (
        ("COBRA k=2", lambda rng: CobraProcess(graph, 0, seed=rng)),
        ("BIPS k=2", lambda rng: BipsProcess(graph, 0, seed=rng)),
    ):
        times = sample_completion_times(factory, tail_samples, seed=(seed, len(label)))
        fit = fit_geometric_tail(times, threshold_quantile=0.5)
        rates[label] = fit.rate
        mean = float(times.mean())
        p99 = float(np.percentile(times, 99))
        if label.startswith("COBRA"):
            cobra_mean, cobra_p99 = mean, p99
        values, survival = empirical_survival(times)
        positive = survival > 0
        survival_series[label] = (
            values[positive].tolist(),
            survival[positive].tolist(),
        )
        tails.add_row(
            [label, tail_samples, mean, p99, int(times.max()), fit.rate, fit.halving_time]
        )
    survival_figure = ascii_plot(
        survival_series,
        log_y=True,
        title=(
            f"E11: survival P(time > t), n={tail_n} expander "
            "(straight line on log y = geometric tail)"
        ),
        x_label="t (rounds)",
        y_label="P(X > t)",
    )

    # --- concentration across the ladder --------------------------------
    concentration = Table(["n", "mean cov", "p99", "max", "p99/mean", "max/mean"])
    spreads: list[float] = []
    for offset, n in enumerate(ladder):
        ladder_graph, _ = expander_with_gap(n, tail_r, seed=seed + 50 + offset)
        times = sample_completion_times(
            lambda rng: CobraProcess(ladder_graph, 0, seed=rng),
            ladder_samples,
            seed=(seed, n, 111),
        )
        mean = float(times.mean())
        p99 = float(np.percentile(times, 99))
        spread = float(times.max()) / mean
        spreads.append(spread)
        concentration.add_row([n, mean, p99, int(times.max()), p99 / mean, spread])

    # --- exact tail on a tiny graph -------------------------------------
    exact_engine = ExactCobraCover(complete(7))
    pmf, tail_mass = exact_engine.cover_time_distribution(0, t_max=60)
    survival = 1.0 - np.cumsum(pmf)
    # Per-round decay ratio of the exact survival once past the bulk.
    usable = np.flatnonzero(survival > 1e-12)
    late = usable[usable >= 10]
    exact_ratios = survival[late[1:]] / survival[late[:-1]]
    exact_table = Table(["quantity", "value"], float_format="%.6g")
    exact_table.add_row(["E[cov] (exact, K7)", exact_engine.expected_cover_time(0)])
    exact_table.add_row(["exact tail ratio, min over t>=10", float(exact_ratios.min())])
    exact_table.add_row(["exact tail ratio, max over t>=10", float(exact_ratios.max())])
    # Eq. (1) sanity: windows of T = p99 fail with q <= 0.01, so the
    # restart bound T/(1-q)^2 must dominate the measured mean.
    eq1_bound = restart_expectation_bound(cobra_p99, 0.01)
    exact_table.add_row(["Eq.(1) bound with T = COBRA p99, q = 0.01", eq1_bound])
    exact_table.add_row(["measured COBRA mean (must be below)", cobra_mean])

    max_spread_growth = max(spreads) / min(spreads)
    findings = [
        (
            f"upper tails are geometric: per-round decay rates "
            f"{rates['COBRA k=2']:.3f} (COBRA) and {rates['BIPS k=2']:.3f} (BIPS) "
            f"on the n={tail_n} expander — straight lines on log-survival axes"
        ),
        (
            f"concentration across the ladder: max/mean stays within "
            f"[{min(spreads):.2f}, {max(spreads):.2f}] (ratio {max_spread_growth:.2f}) — "
            "no heavy tail opens up as n grows, as the w.h.p. clause requires"
        ),
        (
            "the exact K7 cover law decays at an asymptotically constant "
            f"per-round ratio ({float(exact_ratios.min()):.4f}.."
            f"{float(exact_ratios.max()):.4f} for t >= 10), the restart argument's "
            "geometric signature with zero sampling noise"
        ),
    ]
    return ExperimentResult(
        spec=SPEC,
        mode=run_label,
        seed=seed,
        parameters=result_parameters(
            run_label,
            wl,
            {
                "tail_graph": {"n": tail_n, "r": tail_r, "lambda": lam},
                "tail_samples": tail_samples,
                "ladder": list(ladder),
                "ladder_samples": ladder_samples,
            },
        ),
        tables={
            "geometric tail fits": tails,
            "concentration across n": concentration,
            "exact tail (K7)": exact_table,
        },
        figures={"log-survival": survival_figure},
        findings=findings,
    )
