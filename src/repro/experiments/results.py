"""Experiment result records: tables + figures + findings, JSON-round-trippable."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentSpec


@dataclass
class ExperimentResult:
    """Everything one experiment run produced.

    Attributes
    ----------
    spec:
        The experiment's identity card.
    mode:
        ``"quick"`` (CI-scale) or ``"full"`` (EXPERIMENTS.md-scale).
    seed:
        Master seed of the run.
    parameters:
        The concrete workload parameters used (JSON-serialisable).
    tables:
        Named result tables.
    figures:
        Named ASCII figures (multi-line strings).
    findings:
        Headline conclusions, one sentence each, in display order.
    """

    spec: ExperimentSpec
    mode: str
    seed: int
    parameters: dict[str, Any] = field(default_factory=dict)
    tables: dict[str, Table] = field(default_factory=dict)
    figures: dict[str, str] = field(default_factory=dict)
    findings: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report: banner, findings, tables, figures."""
        blocks = [self.spec.header(), f"  mode  : {self.mode} (seed {self.seed})"]
        if self.findings:
            blocks.append("findings:")
            blocks.extend(f"  * {finding}" for finding in self.findings)
        for name, table in self.tables.items():
            blocks.append(f"\n-- {name} --")
            blocks.append(table.render())
        for name, figure in self.figures.items():
            blocks.append(f"\n-- {name} --")
            blocks.append(figure)
        return "\n".join(blocks)

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (tables stored as records)."""
        return {
            "spec": self.spec.to_dict(),
            "mode": self.mode,
            "seed": self.seed,
            "parameters": self.parameters,
            "tables": {name: table.to_records() for name, table in self.tables.items()},
            "figures": dict(self.figures),
            "findings": list(self.findings),
        }

    def save(self, path: str | Path) -> Path:
        """Write the result as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, default=_coerce))
        return path

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_json_dict`."""
        try:
            spec = ExperimentSpec.from_dict(data["spec"])
            tables = {
                name: Table.from_records(records) if records else Table(["empty"])
                for name, records in data["tables"].items()
            }
            return cls(
                spec=spec,
                mode=data["mode"],
                seed=data["seed"],
                parameters=data["parameters"],
                tables=tables,
                figures=data["figures"],
                findings=data["findings"],
            )
        except KeyError as missing:
            raise ExperimentError(f"malformed result payload: missing {missing}") from None

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Read a result previously written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        try:
            return cls.from_json_dict(data)
        except ExperimentError as error:
            raise ExperimentError(f"malformed result file {path}: {error}") from None


def _coerce(value: Any):
    """JSON fallback for NumPy scalars."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value)}")
