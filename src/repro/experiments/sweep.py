"""Shared measurement helpers for the experiment modules.

Each helper runs an ensemble of independently seeded replicas of one
process configuration and returns both the raw completion times and a
:class:`~repro.analysis.stats.SummaryStats`.  Graph-building helpers
bundle the expander construction with its spectral-gap measurement so
experiments report ``λ`` alongside every row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, derive_seed_sequence
from repro.analysis.stats import SummaryStats, summarize
from repro.core.batch import batch_bips_infection_times, batch_cobra_cover_times
from repro.core.bips import BipsProcess
from repro.core.event import event_bips_infection_times, event_cobra_cover_times
from repro.core.cobra import CobraProcess
from repro.core.push import PushProcess
from repro.core.pushpull import PushPullProcess
from repro.core.randomwalk import RandomWalkProcess
from repro.core.runner import sample_completion_times
from repro.core.sparse import sparse_bips_infection_times, sparse_cobra_cover_times
from repro.errors import ExperimentError
from repro.graphs.base import Graph
from repro.graphs.generators import random_regular
from repro.graphs.spectral import lambda_second


@dataclass(frozen=True)
class EnsembleMeasurement:
    """Raw completion times and their summary for one configuration."""

    times: np.ndarray
    stats: SummaryStats

    @property
    def mean(self) -> float:
        """Mean completion time."""
        return self.stats.mean


def _measure(
    factory,
    n_samples: int,
    seed: SeedLike,
    max_rounds: int | None,
    jobs: int | None = None,
) -> EnsembleMeasurement:
    times = sample_completion_times(
        factory,
        n_samples,
        seed=seed,
        max_rounds=max_rounds,
        raise_on_timeout=True,
        jobs=jobs,
    )
    return EnsembleMeasurement(times=times, stats=summarize(times))


#: The engine-selection seam: every measurement helper that offers a
#: choice accepts exactly these names (and the CLI mirrors them).
#: ``"compiled"`` is sugar for the batch engine on the compiled numba
#: backend — same kernel shape, JIT round loops.
ENGINES = ("process", "batch", "compiled", "event", "sparse")

#: Engines that accept a ``backend`` argument.  The batch engine runs
#: any backend; the sparse engine accepts host backends (numpy
#: reference or the compiled numba tier); ``compiled`` *is* a backend
#: choice, so an explicit ``backend`` there must provide compiled
#: kernels.
_BACKEND_ENGINES = ("batch", "compiled", "sparse")


def _validate_engine(engine: str, backend=None, rate_options=None) -> None:
    if engine not in ENGINES:
        raise ExperimentError(
            f"engine must be one of {', '.join(repr(e) for e in ENGINES)}, "
            f"got {engine!r}"
        )
    if backend is not None and engine not in _BACKEND_ENGINES:
        raise ExperimentError(
            f"backend={backend!r} requires engine='batch' (any backend) or "
            f"engine='compiled'/'sparse' (host backends); engine={engine!r} "
            f"runs on host NumPy only"
        )
    if engine != "event" and rate_options:
        names = ", ".join(sorted(rate_options))
        raise ExperimentError(
            f"{names} only apply to the continuous-time engine; pass "
            f"engine='event' (got engine={engine!r})"
        )


def _compiled_engine_backend(backend):
    """The backend ``engine="compiled"`` should run: numba by default.

    An explicit ``backend`` must actually provide compiled kernels —
    silently running the reference kernels under an engine named
    "compiled" would misreport every benchmark built on the seam.
    """
    from repro.backends import resolve_backend

    if backend is None:
        return "numba"
    if not resolve_backend(backend).provides_compiled_kernels:
        raise ExperimentError(
            f"engine='compiled' needs a backend with compiled kernels; "
            f"backend={backend!r} has none (drop the backend argument to "
            "get 'numba', or use engine='batch')"
        )
    return backend


def _event_max_time(
    max_rounds: int | None, time_step: float | None, transmission_rate: float
) -> float | None:
    """``max_rounds`` converted to the event engine's time horizon.

    One round corresponds to one tick (``time_step`` mode) or to the
    mean firing interval ``1 / transmission_rate`` (asynchronous mode),
    so round-based callers keep their timeout semantics.
    """
    if max_rounds is None:
        return None
    if time_step is not None:
        return max_rounds * time_step
    return max_rounds / transmission_rate


def measure_cobra_cover(
    graph: Graph,
    *,
    start: int = 0,
    branching: float = 2.0,
    n_samples: int = 10,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    jobs: int | None = None,
    engine: str = "batch",
    backend=None,
    transmission_rate: float = 1.0,
    time_step: float | None = None,
    edge_rate_overrides=None,
) -> EnsembleMeasurement:
    """Ensemble of COBRA cover times on ``graph``.

    ``engine="batch"`` (the default) uses the vectorised
    :func:`~repro.core.batch.batch_cobra_cover_times` fast path;
    ``"process"`` steps independent
    :class:`~repro.core.cobra.CobraProcess` replicas instead.  The two
    are identical in distribution (any real branching factor,
    including the fractional ``1 + ρ`` of Theorem 3), and the batch
    engine is much faster for large ensembles.  ``engine="event"``
    runs the continuous-time Gillespie kernel
    (:func:`~repro.core.event.event_cobra_cover_times`), which is the
    only engine accepting the rate options: ``transmission_rate``,
    ``time_step`` (``None`` = asynchronous exponential clocks, a float
    = the discrete-round limit), and ``edge_rate_overrides``
    (``(u, v, rate)`` triples).  All engines are identical in
    distribution at uniform rates (the event engine in the round
    limit), and ``max_rounds`` maps onto the event engine's time
    horizon one round per tick (or per mean firing interval).
    ``engine="sparse"`` runs the frontier-sparse kernel
    (:func:`~repro.core.sparse.sparse_cobra_cover_times`) whose
    per-round cost tracks the active frontier instead of ``R·n`` —
    the engine of choice for million-vertex graphs (also equal in
    distribution).  ``engine="compiled"`` is the batch engine on the
    compiled numba backend — bit-identical to ``engine="batch"`` for a
    fixed seed, several times faster on dense cells (requires the
    ``cobra-repro[numba]`` extra).  ``jobs`` shards the replicas over
    worker processes with seed-stable results in every engine.
    ``backend`` selects the array backend for the batch engine (any
    backend) and the sparse engine (host backends: ``"numpy"`` or
    ``"numba"``); ``None`` = the process-wide default (batch) or the
    host reference kernels (sparse).
    """
    rate_options = {}
    if transmission_rate != 1.0:
        rate_options["transmission_rate"] = transmission_rate
    if time_step is not None:
        rate_options["time_step"] = time_step
    if edge_rate_overrides:
        rate_options["edge_rate_overrides"] = edge_rate_overrides
    _validate_engine(engine, backend, rate_options)
    if engine == "event":
        times = event_cobra_cover_times(
            graph,
            start,
            branching=branching,
            transmission_rate=transmission_rate,
            time_step=time_step,
            edge_rate_overrides=edge_rate_overrides,
            n_replicas=n_samples,
            seed=seed,
            max_time=_event_max_time(max_rounds, time_step, transmission_rate),
            jobs=jobs,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    if engine == "sparse":
        times = sparse_cobra_cover_times(
            graph,
            start,
            branching=branching,
            n_replicas=n_samples,
            seed=seed,
            max_rounds=max_rounds,
            jobs=jobs,
            backend=backend,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    if engine == "compiled":
        backend = _compiled_engine_backend(backend)
        engine = "batch"
    if engine == "batch":
        times = batch_cobra_cover_times(
            graph,
            start,
            branching=branching,
            n_replicas=n_samples,
            seed=seed,
            max_rounds=max_rounds,
            jobs=jobs,
            backend=backend,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    return _measure(
        lambda rng: CobraProcess(graph, start, branching=branching, seed=rng),
        n_samples,
        seed,
        max_rounds,
        jobs,
    )


def measure_bips_infection(
    graph: Graph,
    *,
    source: int = 0,
    branching: float = 2.0,
    n_samples: int = 10,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    jobs: int | None = None,
    engine: str = "batch",
    backend=None,
    transmission_rate: float = 1.0,
    recovery_rate: float = 0.0,
    time_step: float | None = None,
    edge_rate_overrides=None,
) -> EnsembleMeasurement:
    """Ensemble of BIPS infection times on ``graph``.

    Supports the same ``engine`` / ``jobs`` / ``backend`` / rate
    options (and the same ``"batch"`` default) as
    :func:`measure_cobra_cover`, plus ``recovery_rate``: with
    ``engine="event"`` and asynchronous clocks, infected non-source
    vertices additionally recover spontaneously at that rate
    (:func:`~repro.core.event.event_bips_infection_times`).
    """
    rate_options = {}
    if transmission_rate != 1.0:
        rate_options["transmission_rate"] = transmission_rate
    if recovery_rate != 0.0:
        rate_options["recovery_rate"] = recovery_rate
    if time_step is not None:
        rate_options["time_step"] = time_step
    if edge_rate_overrides:
        rate_options["edge_rate_overrides"] = edge_rate_overrides
    _validate_engine(engine, backend, rate_options)
    if engine == "event":
        times = event_bips_infection_times(
            graph,
            source,
            branching=branching,
            transmission_rate=transmission_rate,
            recovery_rate=recovery_rate,
            time_step=time_step,
            edge_rate_overrides=edge_rate_overrides,
            n_replicas=n_samples,
            seed=seed,
            max_time=_event_max_time(max_rounds, time_step, transmission_rate),
            jobs=jobs,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    if engine == "sparse":
        times = sparse_bips_infection_times(
            graph,
            source,
            branching=branching,
            n_replicas=n_samples,
            seed=seed,
            max_rounds=max_rounds,
            jobs=jobs,
            backend=backend,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    if engine == "compiled":
        backend = _compiled_engine_backend(backend)
        engine = "batch"
    if engine == "batch":
        times = batch_bips_infection_times(
            graph,
            source,
            branching=branching,
            n_replicas=n_samples,
            seed=seed,
            max_rounds=max_rounds,
            jobs=jobs,
            backend=backend,
        )
        return EnsembleMeasurement(times=times, stats=summarize(times))
    return _measure(
        lambda rng: BipsProcess(graph, source, branching=branching, seed=rng),
        n_samples,
        seed,
        max_rounds,
        jobs,
    )


def measure_push_broadcast(
    graph: Graph,
    *,
    start: int = 0,
    n_samples: int = 10,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    jobs: int | None = None,
) -> EnsembleMeasurement:
    """Ensemble of push-protocol broadcast times on ``graph``."""
    return _measure(
        lambda rng: PushProcess(graph, start, seed=rng), n_samples, seed, max_rounds, jobs
    )


def measure_pushpull_broadcast(
    graph: Graph,
    *,
    start: int = 0,
    n_samples: int = 10,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    jobs: int | None = None,
) -> EnsembleMeasurement:
    """Ensemble of push–pull broadcast times on ``graph``."""
    return _measure(
        lambda rng: PushPullProcess(graph, start, seed=rng), n_samples, seed, max_rounds, jobs
    )


def measure_random_walk_cover(
    graph: Graph,
    *,
    start: int = 0,
    n_walkers: int = 1,
    n_samples: int = 10,
    seed: SeedLike = None,
    max_rounds: int | None = None,
    jobs: int | None = None,
) -> EnsembleMeasurement:
    """Ensemble of random-walk cover times on ``graph``."""
    return _measure(
        lambda rng: RandomWalkProcess(graph, start, n_walkers=n_walkers, seed=rng),
        n_samples,
        seed,
        max_rounds,
        jobs,
    )


def expander_with_gap(
    n: int, r: int, seed: SeedLike = None, *, lambda_method: str = "auto"
) -> tuple[Graph, float]:
    """A connected random `r`-regular graph together with its measured ``λ``."""
    sequence = derive_seed_sequence(seed)
    graph = random_regular(n, r, seed=np.random.default_rng(sequence))
    return graph, lambda_second(graph, method=lambda_method)


def family_with_gap(
    family, n: int, seed: SeedLike = None, *, lambda_method: str = "auto"
) -> tuple[Graph, float]:
    """A size-``n`` member of a declarative graph family plus its ``λ``.

    ``family`` is a :class:`~repro.scenarios.families.GraphFamily` (or
    anything its ``from_value`` accepts).  For the ``random_regular``
    kind this is bit-identical to :func:`expander_with_gap` at the same
    ``(n, degree, seed)`` — the scenario layer's preset path and the
    legacy helper build the same graphs.  Bipartite family members
    (hypercubes, even-sided tori) report ``λ = 1``; callers guarding a
    ``1/(1-λ)`` bound should check for that.
    """
    from repro.scenarios.families import GraphFamily  # deferred: import cycle

    graph = GraphFamily.from_value(family).build(n, seed=seed)
    return graph, lambda_second(graph, method=lambda_method)
