"""Tests for the paper's closed-form bounds in :mod:`repro.theory.bounds`."""

from __future__ import annotations

import math

import pytest

from repro.theory.bounds import (
    cover_time_bound,
    dutta_cover_bound,
    fractional_growth_bound,
    growth_lower_bound,
    lemma2_round_budget,
    lemma3_round_budget,
    lemma4_round_budget,
    phase_boundary_size,
    spectral_condition_holds,
)


class TestCoverTimeBound:
    def test_formula(self):
        assert cover_time_bound(100, 0.5) == pytest.approx(math.log(100) / 0.125)

    def test_explodes_as_gap_closes(self):
        assert cover_time_bound(100, 0.99) > cover_time_bound(100, 0.5) * 1000

    def test_validation(self):
        with pytest.raises(ValueError, match="lambda"):
            cover_time_bound(100, 1.0)
        with pytest.raises(ValueError, match="lambda"):
            cover_time_bound(100, -0.1)
        with pytest.raises(ValueError, match="n must"):
            cover_time_bound(1, 0.5)


class TestDuttaBound:
    def test_formula(self):
        assert dutta_cover_bound(100) == pytest.approx(math.log(100) ** 2)

    def test_theorem1_improves_on_it_for_large_n(self):
        # On an expander with constant gap, T = log n / (1 - lam)^3 is
        # eventually below log^2 n.
        lam = 0.5
        n = 10**9
        assert cover_time_bound(n, lam) < dutta_cover_bound(n)

    def test_validation(self):
        with pytest.raises(ValueError, match="n must"):
            dutta_cover_bound(1)


class TestSpectralCondition:
    def test_expander_satisfies(self):
        assert spectral_condition_holds(1000, 0.5)

    def test_tiny_gap_fails(self):
        # 1 - lambda = 1e-4 << sqrt(log(1000)/1000) ~ 0.083.
        assert not spectral_condition_holds(1000, 1 - 1e-4)

    def test_constant_scales_requirement(self):
        n, lam = 1000, 0.9
        assert spectral_condition_holds(n, lam, constant=1.0)
        assert not spectral_condition_holds(n, lam, constant=2.0)


class TestGrowthBounds:
    def test_lemma1_formula(self):
        # |A|=10, n=100, lam=0.5: 10 * (1 + 0.75 * 0.9) = 16.75.
        assert growth_lower_bound(10, 100, 0.5) == pytest.approx(16.75)

    def test_no_gain_at_full_infection(self):
        assert growth_lower_bound(100, 100, 0.5) == pytest.approx(100.0)

    def test_corollary1_reduces_to_lemma1_at_rho_one(self):
        assert fractional_growth_bound(10, 100, 0.5, 1.0) == pytest.approx(
            growth_lower_bound(10, 100, 0.5)
        )

    def test_corollary1_rho_zero_is_neutral(self):
        assert fractional_growth_bound(10, 100, 0.5, 0.0) == pytest.approx(10.0)

    def test_size_validation(self):
        with pytest.raises(ValueError, match="size"):
            growth_lower_bound(101, 100, 0.5)
        with pytest.raises(ValueError, match="rho"):
            fractional_growth_bound(10, 100, 0.5, 1.5)


class TestPhaseBudgets:
    def test_lemma2_formula(self):
        n, lam, m = 1000, 0.5, 40.0
        expected = 13 * 40 / 0.5 + 24 * math.log(1000) / 0.25
        assert lemma2_round_budget(m, n, lam) == pytest.approx(expected)

    def test_lemma2_confidence_scales_log_term(self):
        base = lemma2_round_budget(10, 1000, 0.5, confidence=1.0)
        doubled = lemma2_round_budget(10, 1000, 0.5, confidence=2.0)
        assert doubled > base
        assert doubled - base == pytest.approx(24 * math.log(1000) / 0.25)

    def test_lemma3_and_4_formulas(self):
        n, lam = 1000, 0.5
        assert lemma3_round_budget(n, lam) == pytest.approx(23 * math.log(n) / 0.5)
        assert lemma4_round_budget(n, lam) == pytest.approx(8 * math.log(n) / 0.5)

    def test_phase_boundary_default_is_paper_constant(self):
        n, lam = 1000, 0.5
        assert phase_boundary_size(n, lam) == pytest.approx(4000 * math.log(n) / 0.25)

    def test_lemma2_rejects_nonpositive_m(self):
        with pytest.raises(ValueError, match="m must"):
            lemma2_round_budget(0, 1000, 0.5)


class TestBudgetOrdering:
    def test_budgets_shrink_with_larger_gap(self):
        for budget in (lemma3_round_budget, lemma4_round_budget):
            assert budget(1000, 0.2) < budget(1000, 0.8)
