"""Tests for the exact one-step growth expectation (paper Eq. (3))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.spectral import lambda_second
from repro.theory.growth import (
    expected_next_infected_size,
    growth_bound_ratio,
    infected_neighbor_counts,
    minimum_growth_ratio,
)


class TestInfectedNeighborCounts:
    def test_counts_on_cycle(self, c9):
        mask = np.zeros(9, dtype=bool)
        mask[[0, 1]] = True
        counts = infected_neighbor_counts(c9, mask)
        assert counts[0] == 1  # neighbour 1 infected
        assert counts[1] == 1  # neighbour 0 infected
        assert counts[2] == 1  # neighbour 1 infected
        assert counts[8] == 1  # neighbour 0 infected
        assert counts[5] == 0

    def test_shape_validation(self, c9):
        with pytest.raises(ValueError, match="shape"):
            infected_neighbor_counts(c9, np.zeros(5, dtype=bool))


class TestExpectedNextSize:
    def test_singleton_source_on_regular_graph(self, petersen):
        # E = 1 + r * (1 - (1 - 1/r)^2) = 1 + 3 * (1 - 4/9) = 8/3.
        value = expected_next_infected_size(petersen, [0], 0)
        assert value == pytest.approx(1 + 3 * (1 - (2 / 3) ** 2))

    def test_full_set_gives_n(self, petersen):
        value = expected_next_infected_size(petersen, list(range(10)), 0)
        assert value == pytest.approx(10.0)

    def test_k1_equals_size_on_regular_graphs(self, petersen):
        # With k=1 the sum of hit probabilities telescopes to |A| minus
        # the source adjustment: E = 1 + sum_{u != v} d_A(u)/r, and
        # sum_u d_A(u) = r |A|, so E = |A| + 1 - d_A(v)/r.
        infected = [0, 1, 5]
        value = expected_next_infected_size(petersen, infected, 0, branching=1.0)
        d_source = sum(1 for w in petersen.neighbors(0) if w in infected)
        assert value == pytest.approx(3 + 1 - d_source / 3)

    def test_requires_source_in_set(self, petersen):
        with pytest.raises(ValueError, match="must contain the source"):
            expected_next_infected_size(petersen, [1, 2], 0)

    def test_monotone_in_branching(self, petersen):
        infected = [0, 1, 2]
        values = [
            expected_next_infected_size(petersen, infected, 0, branching=b)
            for b in (1.0, 1.5, 2.0, 3.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestGrowthBoundRatio:
    def test_lemma1_holds_on_petersen_exhaustively(self, petersen):
        lam = 2.0 / 3.0
        worst = np.inf
        for mask_bits in range(1 << 10):
            if not mask_bits & 1:
                continue
            mask = np.array([(mask_bits >> u) & 1 == 1 for u in range(10)])
            worst = min(worst, growth_bound_ratio(petersen, mask, 0, lam))
        assert worst >= 1.0 - 1e-12

    def test_corollary1_holds_on_cycle(self, c9):
        lam = lambda_second(c9)
        for branching in (1.25, 1.5, 1.75):
            ratio = minimum_growth_ratio(
                c9, 0, lam, branching=branching, n_random_sets=100, seed=0
            )
            assert ratio >= 1.0 - 1e-9

    def test_minimum_growth_ratio_deterministic(self, small_expander):
        lam = lambda_second(small_expander)
        a = minimum_growth_ratio(small_expander, 0, lam, n_random_sets=50, seed=3)
        b = minimum_growth_ratio(small_expander, 0, lam, n_random_sets=50, seed=3)
        assert a == b

    def test_bound_tight_at_full_set(self, petersen):
        mask = np.ones(10, dtype=bool)
        assert growth_bound_ratio(petersen, mask, 0, 2 / 3) == pytest.approx(1.0)
