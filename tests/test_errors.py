"""Tests for the exception hierarchy and public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    BackendError,
    CoverTimeoutError,
    ExactEngineError,
    ExperimentError,
    GraphConstructionError,
    GraphPropertyError,
    InfectionTimeoutError,
    ProcessError,
    ProcessTimeoutError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            GraphConstructionError,
            GraphPropertyError,
            ProcessError,
            ProcessTimeoutError,
            CoverTimeoutError,
            InfectionTimeoutError,
            ExactEngineError,
            ExperimentError,
            BackendError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_timeout_flavours_share_a_base(self):
        # One except clause catches both goal flavours; the legacy
        # CoverTimeoutError stays catchable exactly as before.
        assert issubclass(CoverTimeoutError, ProcessTimeoutError)
        assert issubclass(InfectionTimeoutError, ProcessTimeoutError)
        assert not issubclass(InfectionTimeoutError, CoverTimeoutError)
        assert not issubclass(CoverTimeoutError, InfectionTimeoutError)

    def test_sequential_runner_raises_goal_flavoured_timeouts(self):
        from repro.core.runner import run_process

        graph = repro.graphs.random_regular(64, 4, seed=7)
        with pytest.raises(CoverTimeoutError):
            run_process(
                repro.CobraProcess(graph, 0, seed=1),
                max_rounds=1,
                raise_on_timeout=True,
            )
        with pytest.raises(InfectionTimeoutError):
            run_process(
                repro.BipsProcess(graph, 0, seed=1),
                max_rounds=1,
                raise_on_timeout=True,
            )

    def test_catchable_individually(self):
        with pytest.raises(GraphConstructionError):
            repro.graphs.complete(1)
        with pytest.raises(ProcessError):
            repro.CobraProcess(repro.graphs.petersen(), 0, branching=0.5)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_subpackage_alls_resolve(self):
        for package in (repro.graphs, repro.core, repro.exact, repro.theory,
                        repro.analysis, repro.experiments):
            for name in package.__all__:
                assert hasattr(package, name), f"{package.__name__}.{name} missing"

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a module docstring"
