"""Tests for experiment specs and result records."""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec


@pytest.fixture
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="E0",
        title="toy experiment",
        claim="everything works",
        paper_reference="Theorem 0",
    )


@pytest.fixture
def result(spec) -> ExperimentResult:
    table = Table(["n", "mean"], rows=[(10, 1.5), (20, 2.5)])
    return ExperimentResult(
        spec=spec,
        mode="quick",
        seed=0,
        parameters={"sizes": [10, 20]},
        tables={"cover": table},
        figures={"fig": "o--o\n|  |"},
        findings=["it works"],
    )


class TestSpec:
    def test_roundtrip(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_header_contains_fields(self, spec):
        header = spec.header()
        assert "[E0]" in header
        assert "everything works" in header
        assert "Theorem 0" in header


class TestResultRender:
    def test_render_contains_everything(self, result):
        rendered = result.render()
        assert "[E0] toy experiment" in rendered
        assert "* it works" in rendered
        assert "-- cover --" in rendered
        assert "-- fig --" in rendered

    def test_render_without_findings(self, spec):
        result = ExperimentResult(spec=spec, mode="quick", seed=0)
        assert "findings" not in result.render()


class TestResultPersistence:
    def test_json_roundtrip(self, result, tmp_path):
        path = result.save(tmp_path / "out" / "e0.json")
        assert path.exists()
        loaded = ExperimentResult.load(path)
        assert loaded.spec == result.spec
        assert loaded.mode == "quick"
        assert loaded.parameters == {"sizes": [10, 20]}
        assert loaded.findings == ["it works"]
        assert loaded.figures == result.figures
        assert loaded.tables["cover"].column("mean") == [1.5, 2.5]

    def test_numpy_scalars_serialised(self, spec, tmp_path):
        import numpy as np

        table = Table(["x"], rows=[(np.int64(3),), (np.float64(1.5),)])
        result = ExperimentResult(
            spec=spec, mode="quick", seed=0, tables={"t": table}
        )
        loaded = ExperimentResult.load(result.save(tmp_path / "np.json"))
        assert loaded.tables["t"].column("x") == [3, 1.5]

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"mode": "quick"}')
        with pytest.raises(ExperimentError, match="malformed"):
            ExperimentResult.load(bad)
