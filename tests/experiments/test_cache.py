"""Unit tests for the content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.analysis.tables import Table
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_json,
    result_key,
)
from repro.errors import CacheError
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec


@pytest.fixture
def result() -> ExperimentResult:
    spec = ExperimentSpec(
        experiment_id="E0",
        title="toy experiment",
        claim="everything works",
        paper_reference="Theorem 0",
    )
    table = Table(["n", "mean"], rows=[(10, 1.5), (20, 2.5)])
    return ExperimentResult(
        spec=spec,
        mode="quick",
        seed=0,
        parameters={"sizes": [10, 20]},
        tables={"cover": table},
        figures={"fig": "o--o"},
        findings=["it works"],
    )


PARAMS = {"sizes": [10, 20], "rho": 0.5}


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_tuples_become_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_numpy_scalars_normalised(self):
        import numpy as np

        assert canonical_json({"n": np.int64(3)}) == canonical_json({"n": 3})
        assert canonical_json(np.float64(0.5)) == canonical_json(0.5)

    def test_int_and_float_distinct(self):
        assert canonical_json(1) != canonical_json(1.0)

    def test_bool_and_int_distinct(self):
        assert canonical_json(True) != canonical_json(1)

    def test_nan_rejected(self):
        with pytest.raises(CacheError, match="finite"):
            canonical_json(float("nan"))
        with pytest.raises(CacheError, match="finite"):
            canonical_json({"x": float("inf")})

    def test_non_string_keys_rejected(self):
        with pytest.raises(CacheError, match="keys must be strings"):
            canonical_json({1: "x"})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(CacheError, match="JSON-serialisable"):
            canonical_json({"f": object()})


class TestResultKey:
    def test_case_insensitive_experiment_id(self):
        assert result_key("e5", "quick", 0, PARAMS) == result_key("E5", "quick", 0, PARAMS)

    def test_distinct_across_fields(self):
        base = result_key("E5", "quick", 0, PARAMS)
        assert result_key("E6", "quick", 0, PARAMS) != base
        assert result_key("E5", "full", 0, PARAMS) != base
        assert result_key("E5", "quick", 1, PARAMS) != base
        assert result_key("E5", "quick", 0, {**PARAMS, "rho": 0.75}) != base


class TestResultCache:
    def test_roundtrip(self, tmp_path, result):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("E0", "quick", 0, PARAMS) is None
        path = cache.put("E0", "quick", 0, PARAMS, result)
        assert path.exists()
        loaded = cache.get("E0", "quick", 0, PARAMS)
        assert loaded is not None
        assert loaded.to_json_dict() == result.to_json_dict()
        assert cache.stats.to_dict() == {"hits": 1, "misses": 1, "writes": 1}

    def test_entry_is_self_describing(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 3, PARAMS, result)
        entry = json.loads(path.read_text())
        assert entry["schema"] == CACHE_SCHEMA_VERSION
        assert entry["key"] == result_key("E0", "quick", 3, PARAMS)
        assert entry["experiment_id"] == "E0"
        assert entry["seed"] == 3

    def test_different_parameters_do_not_collide(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put("E0", "quick", 0, PARAMS, result)
        assert cache.get("E0", "quick", 0, {**PARAMS, "rho": 0.75}) is None
        assert cache.get("E0", "quick", 1, PARAMS) is None

    def test_truncated_entry_is_a_miss_and_rewritten(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get("E0", "quick", 0, PARAMS) is None
        assert cache.stats.misses == 1
        cache.put("E0", "quick", 0, PARAMS, result)
        assert cache.get("E0", "quick", 0, PARAMS) is not None

    def test_foreign_schema_is_a_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get("E0", "quick", 0, PARAMS) is None

    def test_size_clear_prune(self, tmp_path, result):
        import os
        import time

        cache = ResultCache(tmp_path)
        cache.put("E0", "quick", 0, PARAMS, result)
        cache.put("E0", "quick", 1, PARAMS, result)
        entries, total_bytes = cache.size()
        assert entries == 2
        assert total_bytes > 0

        # Corrupt one entry, leave one *stale* temp file behind.
        corrupt = cache.entry_path("E0", "quick", 1, PARAMS)
        corrupt.write_text("{half an entry")
        stray = tmp_path / ".tmp-stray.tmp"
        stray.write_text("x")
        ancient = time.time() - 7200
        os.utime(stray, (ancient, ancient))
        assert cache.prune() == 2
        assert cache.size()[0] == 1
        assert cache.get("E0", "quick", 0, PARAMS) is not None

        assert cache.clear() == 1
        assert cache.size() == (0, 0)

    def test_prune_spares_fresh_temp_files(self, tmp_path, result):
        # A fresh .tmp-* file belongs to a concurrent writer mid-publish;
        # prune must not break that writer's atomic rename.
        cache = ResultCache(tmp_path)
        in_flight = tmp_path / ".tmp-inflight.tmp"
        in_flight.write_text("partial payload")
        assert cache.prune() == 0
        assert in_flight.exists()

    def test_in_flight_temp_files_invisible_to_size(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put("E0", "quick", 0, PARAMS, result)
        (tmp_path / ".tmp-inflight.tmp").write_text("partial payload")
        assert cache.size()[0] == 1

    def test_create_false_is_read_only(self, tmp_path):
        missing = tmp_path / "never-made"
        cache = ResultCache(missing, create=False)
        assert cache.size() == (0, 0)
        assert cache.prune() == 0
        assert cache.clear() == 0
        assert not missing.exists()

    def test_no_temp_files_left_behind(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put("E0", "quick", 0, PARAMS, result)
        assert not list(tmp_path.glob(".tmp-*"))


class TestQuarantine:
    def test_corrupt_entry_quarantined_on_read(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text("{torn write")
        assert cache.get("E0", "quick", 0, PARAMS) is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{torn write"  # evidence preserved

    def test_quarantined_entry_invisible_to_size_and_get(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text("junk")
        cache.get("E0", "quick", 0, PARAMS)
        assert cache.size() == (0, 0)
        # A second read is a plain miss, not a re-parse of the junk.
        assert cache.get("E0", "quick", 0, PARAMS) is None
        assert cache.stats.misses == 2

    def test_put_after_quarantine_publishes_clean_entry(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text("junk")
        cache.get("E0", "quick", 0, PARAMS)
        cache.put("E0", "quick", 0, PARAMS, result)
        assert cache.get("E0", "quick", 0, PARAMS) is not None

    def test_prune_collects_quarantined_files(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text("junk")
        cache.get("E0", "quick", 0, PARAMS)  # quarantines
        assert cache.prune() == 1
        assert not list(tmp_path.glob("*.corrupt"))

    def test_clear_removes_quarantined_files(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        path.write_text("junk")
        cache.get("E0", "quick", 0, PARAMS)
        cache.put("E0", "quick", 1, PARAMS, result)
        assert cache.clear() == 2  # one live entry + one quarantined
        assert cache.size() == (0, 0)

    def test_stale_schema_entries_are_not_quarantined(self, tmp_path, result):
        # A foreign-schema entry is valid JSON from another era — stale,
        # not corrupt; prune() deletes it but get() leaves it in place.
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, result)
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get("E0", "quick", 0, PARAMS) is None
        assert path.exists()
        assert not list(tmp_path.glob("*.corrupt"))


class TestCacheCorruptionFault:
    def test_injected_corruption_tears_the_published_entry(self, tmp_path, result, monkeypatch):
        from repro.testing.faults import inject_faults

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        cache = ResultCache(tmp_path)
        with inject_faults({"site": "cache_corrupt"}):
            path = cache.put("E0", "quick", 0, PARAMS, result)
        # The entry is torn exactly as a crash mid-rewrite would leave
        # it: a read quarantines it and degrades to a miss...
        assert cache.get("E0", "quick", 0, PARAMS) is None
        assert path.with_name(path.name + ".corrupt").exists()
        # ...and the next (fault-free) put self-heals.
        cache.put("E0", "quick", 0, PARAMS, result)
        assert cache.get("E0", "quick", 0, PARAMS) is not None

    def test_cache_path_must_be_directory(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        with pytest.raises(CacheError, match="not a directory"):
            ResultCache(blocker)

    def test_stats_summary_counts(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put("E0", "quick", 0, PARAMS, result)
        cache.get("E0", "quick", 0, PARAMS)
        cache.get("E0", "quick", 9, PARAMS)
        summary = cache.stats_summary()
        assert summary["entries"] == 1
        assert summary["hits"] == 1
        assert summary["misses"] == 1
        assert summary["writes"] == 1
        assert summary["schema"] == CACHE_SCHEMA_VERSION
