"""Tests for the campaign runner."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import e4_duality
from repro.experiments.campaign import Campaign, CampaignEntry, run_campaign


class TestCampaignDescription:
    def test_roundtrip(self):
        campaign = Campaign(
            name="demo",
            entries=[CampaignEntry("E4"), CampaignEntry("E5", mode="full", seed=3)],
        )
        parsed = Campaign.from_json(campaign.to_json())
        assert parsed.name == "demo"
        assert parsed.entries == campaign.entries

    def test_defaults_applied(self):
        campaign = Campaign.from_json(
            '{"name": "d", "entries": [{"experiment_id": "E5"}]}'
        )
        assert campaign.entries[0].mode == "quick"
        assert campaign.entries[0].seed == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            Campaign.from_json(
                '{"name": "d", "entries": [{"experiment_id": "E99"}]}'
            )

    def test_bad_mode_rejected(self):
        with pytest.raises(ExperimentError, match="mode"):
            Campaign.from_json(
                '{"name": "d", "entries": [{"experiment_id": "E5", "mode": "huge"}]}'
            )

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError, match="no entries"):
            Campaign(name="d").validate()
        with pytest.raises(ExperimentError, match="name"):
            Campaign(name="", entries=[CampaignEntry("E5")]).validate()

    def test_malformed_json_rejected(self):
        with pytest.raises(ExperimentError, match="malformed"):
            Campaign.from_json("{nope")

    def test_unknown_entry_keys_rejected(self):
        # A typoed key must fail loudly, not silently run the default.
        with pytest.raises(ExperimentError, match="unknown keys.*'Mode'"):
            Campaign.from_json(
                '{"name": "d", "entries": [{"experiment_id": "E5", "Mode": "full"}]}'
            )
        with pytest.raises(ExperimentError, match="unknown keys"):
            CampaignEntry.from_dict({"experiment_id": "E5", "sede": 3})

    def test_bad_mode_rejected_in_from_dict(self):
        with pytest.raises(ExperimentError, match="mode must be"):
            CampaignEntry.from_dict({"experiment_id": "E5", "mode": "huge"})

    def test_missing_mode_still_defaults_to_quick(self):
        assert CampaignEntry.from_dict({"experiment_id": "E5"}).mode == "quick"

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed must be an"):
            CampaignEntry.from_dict({"experiment_id": "E5", "seed": "3"})
        with pytest.raises(ExperimentError, match="seed must be an"):
            CampaignEntry.from_dict({"experiment_id": "E5", "seed": True})

    def test_non_dict_entry_rejected(self):
        with pytest.raises(ExperimentError, match="must be an object"):
            Campaign.from_json('{"name": "d", "entries": ["E5"]}')

    def test_worker_context_carries_the_default_backend(self, tmp_path):
        # Spawn workers re-import the package and re-seed the backend
        # default from the environment, so the parent's choice must
        # travel in the worker context (like jobs and cache_dir).
        from pathlib import Path

        from repro import backends
        from repro.experiments.campaign import _worker_context

        previous = backends.set_default_backend("array-api:numpy")
        try:
            context = _worker_context(Path(tmp_path), None)
            assert context["backend"] == "array-api:numpy"
        finally:
            backends.set_default_backend(previous, validate=False)

        # The worker-side kernel installs the shipped spec for the
        # entry's duration and restores the previous default after.
        import repro.experiments.campaign as campaign_module

        seen = {}
        original = campaign_module._execute_entry

        def spy(entry, directory, cache_dir=None, attempt=1):
            seen["spec"] = backends.default_backend_spec()
            return {"ok": True}

        before = backends.default_backend_spec()
        campaign_module._execute_entry = spy
        try:
            campaign_module._isolated_entry(
                {"directory": str(tmp_path), "backend": "array-api:numpy"},
                {"experiment_id": "E5"},
            )
        finally:
            campaign_module._execute_entry = original
        assert seen["spec"] == "array-api:numpy"
        assert backends.default_backend_spec() == before

    def test_non_list_entries_rejected_with_type_name(self):
        # A dict used to iterate its keys and a string its characters,
        # each failing with a baffling per-entry message; the container
        # type is now rejected up front, naming what was found.
        with pytest.raises(ExperimentError, match="must be a list.*dict"):
            Campaign.from_json(
                '{"name": "d", "entries": {"experiment_id": "E5"}}'
            )
        with pytest.raises(ExperimentError, match="must be a list.*str"):
            Campaign.from_json('{"name": "d", "entries": "E5"}')
        with pytest.raises(ExperimentError, match="must be a list.*int"):
            Campaign.from_json('{"name": "d", "entries": 3}')

    def test_missing_or_non_string_id_rejected(self):
        with pytest.raises(ExperimentError, match="experiment_id"):
            CampaignEntry.from_dict({"mode": "quick"})
        with pytest.raises(ExperimentError, match="experiment_id"):
            CampaignEntry.from_dict({"experiment_id": 5})


class TestRunCampaign:
    def test_executes_and_writes_manifest(self, tmp_path, monkeypatch):
        # Keep it fast: shrink E4 and run it twice with different seeds.
        monkeypatch.setattr(e4_duality, "QUICK_TRIALS", 50)
        monkeypatch.setattr(e4_duality, "EXACT_T_MAX", 3)
        campaign = Campaign(
            name="mini",
            entries=[CampaignEntry("E4", seed=0), CampaignEntry("E4", seed=1)],
        )
        messages: list[str] = []
        manifest = run_campaign(campaign, tmp_path, progress=messages.append)

        directory = tmp_path / "mini"
        assert (directory / "manifest.json").exists()
        assert (directory / "e4_quick_s0.json").exists()
        assert (directory / "e4_quick_s1.txt").exists()
        assert len(manifest["entries"]) == 2
        assert all(entry["seconds"] >= 0 for entry in manifest["entries"])
        assert all(entry["findings"] for entry in manifest["entries"])
        assert len(messages) == 2

        reloaded = json.loads((directory / "manifest.json").read_text())
        assert reloaded["campaign"] == "mini"

    def test_results_load_back(self, tmp_path, monkeypatch):
        from repro.experiments.results import ExperimentResult

        monkeypatch.setattr(e4_duality, "QUICK_TRIALS", 50)
        monkeypatch.setattr(e4_duality, "EXACT_T_MAX", 3)
        campaign = Campaign(name="load", entries=[CampaignEntry("E4")])
        run_campaign(campaign, tmp_path)
        result = ExperimentResult.load(tmp_path / "load" / "e4_quick_s0.json")
        assert result.spec.experiment_id == "E4"

    def test_parallel_matches_sequential(self, tmp_path, monkeypatch):
        # Same campaign at jobs=1 and jobs=2: identical manifests
        # (modulo wall-clock timings) and identical result payloads.
        monkeypatch.setattr(e4_duality, "QUICK_TRIALS", 50)
        monkeypatch.setattr(e4_duality, "EXACT_T_MAX", 3)
        campaign = Campaign(
            name="par",
            entries=[CampaignEntry("E4", seed=0), CampaignEntry("E4", seed=1)],
        )
        sequential = run_campaign(campaign, tmp_path / "seq", jobs=1)
        messages: list[str] = []
        parallel = run_campaign(
            campaign, tmp_path / "par", jobs=2, progress=messages.append
        )

        def strip_timings(manifest):
            return [
                {key: value for key, value in entry.items() if key != "seconds"}
                for entry in manifest["entries"]
            ]

        assert strip_timings(sequential) == strip_timings(parallel)
        assert len(messages) == 2
        for stem in ("e4_quick_s0", "e4_quick_s1"):
            left = json.loads((tmp_path / "seq" / "par" / f"{stem}.json").read_text())
            right = json.loads((tmp_path / "par" / "par" / f"{stem}.json").read_text())
            assert left == right

    def test_jobs_parameter_validated(self, tmp_path):
        from repro.errors import ParallelError

        campaign = Campaign(name="bad", entries=[CampaignEntry("E5")])
        with pytest.raises(ParallelError, match="jobs"):
            run_campaign(campaign, tmp_path, jobs=-2)


class TestIterCampaign:
    def _mini(self, monkeypatch) -> Campaign:
        monkeypatch.setattr(e4_duality, "QUICK_TRIALS", 50)
        monkeypatch.setattr(e4_duality, "EXACT_T_MAX", 3)
        return Campaign(
            name="stream",
            entries=[CampaignEntry("E4", seed=0), CampaignEntry("E4", seed=1)],
        )

    def test_streams_records_and_writes_manifest(self, tmp_path, monkeypatch):
        from repro.experiments.campaign import iter_campaign

        campaign = self._mini(monkeypatch)
        yielded = list(iter_campaign(campaign, tmp_path))
        assert [index for index, _ in yielded] == [0, 1]
        assert all(record["findings"] for _, record in yielded)

        manifest = json.loads((tmp_path / "stream" / "manifest.json").read_text())
        assert manifest["entries"] == [record for _, record in yielded]

    def test_matches_run_campaign_manifest(self, tmp_path, monkeypatch):
        from repro.experiments.campaign import iter_campaign

        campaign = self._mini(monkeypatch)
        cache_dir = tmp_path / "cache"
        run_campaign(campaign, tmp_path / "warm", cache_dir=cache_dir)

        batch = run_campaign(campaign, tmp_path / "batch", cache_dir=cache_dir)
        list(iter_campaign(campaign, tmp_path / "streamed", jobs=2, cache_dir=cache_dir))
        streamed = json.loads(
            (tmp_path / "streamed" / "stream" / "manifest.json").read_text()
        )
        assert streamed == batch

    def test_validates_eagerly(self, tmp_path):
        from repro.experiments.campaign import iter_campaign

        with pytest.raises(ExperimentError, match="no entries"):
            iter_campaign(Campaign(name="empty"), tmp_path)

    def test_abandoning_iterator_writes_no_manifest(self, tmp_path, monkeypatch):
        from repro.experiments.campaign import iter_campaign

        campaign = self._mini(monkeypatch)
        iterator = iter_campaign(campaign, tmp_path)
        next(iterator)
        iterator.close()
        assert not (tmp_path / "stream" / "manifest.json").exists()
