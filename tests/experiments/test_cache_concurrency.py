"""Concurrency and corruption behaviour of the result cache and streaming.

The cache is shared by campaign workers running in separate processes,
so the contract under contention is: concurrent writers of one key
both leave a complete entry behind (atomic rename, last wins), readers
never observe a torn write, corruption degrades to a miss, and the
streaming campaign iterator delivers every entry exactly once even
when a worker raises.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.analysis.tables import Table
from repro.cache import ResultCache
from repro.experiments import e5_growth_bound
from repro.experiments.campaign import Campaign, CampaignEntry, iter_campaign
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec

PARAMS = {"sizes": [8, 16]}


def _toy_result(tag: int) -> ExperimentResult:
    spec = ExperimentSpec(
        experiment_id="E0",
        title="toy",
        claim="race safety",
        paper_reference="none",
    )
    return ExperimentResult(
        spec=spec,
        mode="quick",
        seed=0,
        parameters=dict(PARAMS),
        tables={"t": Table(["tag"], rows=[(tag,)])},
        findings=[f"written by writer {tag}"],
    )


def _racing_writer(cache_dir: str, barrier, tag: int) -> None:
    """One contender: wait at the barrier, then hammer the shared key."""
    cache = ResultCache(cache_dir)
    barrier.wait(timeout=30)
    for _ in range(10):
        cache.put("E0", "quick", 0, PARAMS, _toy_result(tag))


class TestConcurrentWriters:
    def test_same_key_race_is_safe(self, tmp_path):
        """N processes hammering one key leave exactly one valid entry."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        n_writers = 4
        barrier = context.Barrier(n_writers)
        writers = [
            context.Process(target=_racing_writer, args=(str(tmp_path), barrier, tag))
            for tag in range(n_writers)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
        assert all(writer.exitcode == 0 for writer in writers)

        cache = ResultCache(tmp_path)
        assert cache.size()[0] == 1
        assert not list(tmp_path.glob(".tmp-*"))
        winner = cache.get("E0", "quick", 0, PARAMS)
        assert winner is not None
        # Whoever won, the entry is one complete write, not a blend.
        (finding,) = winner.findings
        tag = int(finding.rsplit(" ", 1)[1])
        assert winner.tables["t"].column("tag") == [tag]

    def test_reader_during_writes_never_sees_torn_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        for tag in range(20):
            cache.put("E0", "quick", 0, PARAMS, _toy_result(tag))
            seen = cache.get("E0", "quick", 0, PARAMS)
            assert seen is not None
            assert seen.findings == [f"written by writer {tag}"]


class TestCorruption:
    def test_truncated_entry_is_miss_then_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("E0", "quick", 0, PARAMS, _toy_result(1))
        complete = path.read_bytes()
        path.write_bytes(complete[: len(complete) // 3])

        assert cache.get("E0", "quick", 0, PARAMS) is None
        cache.put("E0", "quick", 0, PARAMS, _toy_result(2))
        refreshed = cache.get("E0", "quick", 0, PARAMS)
        assert refreshed is not None
        assert refreshed.findings == ["written by writer 2"]

    def test_empty_file_and_wrong_json_shape_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.entry_path("E0", "quick", 0, PARAMS)
        path.write_text("")
        assert cache.get("E0", "quick", 0, PARAMS) is None
        path.write_text("[1, 2, 3]")
        assert cache.get("E0", "quick", 0, PARAMS) is None
        path.write_text('{"schema": 1, "key": "mismatched", "result": {}}')
        assert cache.get("E0", "quick", 0, PARAMS) is None


def _exploding_run(workload=None, seed: int = 0, *, mode: str | None = None):
    if seed == 1:
        raise RuntimeError(f"worker died on seed {seed}")
    return _REAL_E5_RUN(workload, seed=seed, mode=mode)


_REAL_E5_RUN = e5_growth_bound.run


class TestStreamingWithFailures:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_iter_campaign_yields_every_entry_exactly_once(
        self, tmp_path, monkeypatch, jobs
    ):
        if jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        monkeypatch.setattr(e5_growth_bound, "run", _exploding_run)
        campaign = Campaign(
            name="faulty",
            entries=[CampaignEntry("E5", seed=seed) for seed in range(3)],
        )
        yielded = list(iter_campaign(campaign, tmp_path, jobs=jobs))

        assert sorted(index for index, _ in yielded) == [0, 1, 2]
        by_index = {index: record for index, record in yielded}
        assert "error" in by_index[1]
        assert "RuntimeError" in by_index[1]["error"]
        assert "worker died on seed 1" in by_index[1]["error"]
        for index in (0, 2):
            assert by_index[index]["findings"]
            assert "error" not in by_index[index]

        # The manifest preserves campaign order and carries the error record.
        manifest = json.loads((tmp_path / "faulty" / "manifest.json").read_text())
        assert [entry["seed"] for entry in manifest["entries"]] == [0, 1, 2]
        assert "error" in manifest["entries"][1]
        # Failed entries leave no result files behind.
        assert not (tmp_path / "faulty" / "e5_quick_s1.json").exists()
        assert (tmp_path / "faulty" / "e5_quick_s0.json").exists()
