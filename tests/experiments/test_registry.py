"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_ids, get_experiment, get_spec


class TestRegistry:
    def test_thirteen_experiments_registered(self):
        ids = experiment_ids()
        assert ids == [f"E{i}" for i in range(1, 14)]

    def test_every_module_has_spec_and_run(self):
        for experiment_id in experiment_ids():
            module = get_experiment(experiment_id)
            assert module.SPEC.experiment_id == experiment_id
            assert callable(module.run)

    def test_specs_reference_the_paper(self):
        references = [get_spec(i).paper_reference for i in experiment_ids()]
        joined = " ".join(references)
        for landmark in ("Theorem 1", "Theorem 2", "Theorem 3", "Theorem 4", "Lemma"):
            assert landmark in joined

    def test_case_insensitive_lookup(self):
        assert get_spec("e4").experiment_id == "E4"

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("E99")

    def test_run_rejects_bad_mode(self):
        for experiment_id in experiment_ids():
            with pytest.raises(ValueError, match="mode"):
                get_experiment(experiment_id).run(mode="gigantic")
