"""Equivalence tests: a cache hit must be indistinguishable from a recomputation.

Every registered experiment is run once at micro scale with a cold
cache (computing and storing) and once with a warm cache (loading);
the two result payloads must be identical JSON.  On top of that, warm
fully-cached campaigns must produce byte-identical manifests at any
worker count.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import ResultCache
from repro.experiments import experiment_ids, resolved_parameters, run_experiment_cached
from repro.experiments.campaign import Campaign, CampaignEntry, run_campaign
from repro.experiments.microscale import apply_micro_overrides


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_cached_equals_recomputed(experiment_id, tmp_path, monkeypatch):
    apply_micro_overrides(experiment_id, monkeypatch.setattr)
    cache = ResultCache(tmp_path / "cache")

    computed, was_cached = run_experiment_cached(experiment_id, seed=1, cache=cache)
    assert not was_cached
    loaded, was_cached = run_experiment_cached(experiment_id, seed=1, cache=cache)
    assert was_cached
    assert loaded.to_json_dict() == computed.to_json_dict()
    assert cache.stats.hits == 1

    # A different seed must not reuse the entry.
    _, was_cached = run_experiment_cached(experiment_id, seed=2, cache=cache)
    assert not was_cached


def test_micro_overrides_do_not_collide_with_defaults(tmp_path, monkeypatch):
    # The micro-scale E4 entry and the default quick E4 entry describe
    # different workloads, so they must occupy different cache keys.
    cache = ResultCache(tmp_path / "cache")
    apply_micro_overrides("E4", monkeypatch.setattr)
    run_experiment_cached("E4", seed=1, cache=cache)
    monkeypatch.undo()
    assert cache.get("E4", "quick", 1, resolved_parameters("E4", "quick")) is None


class TestCampaignManifestIdentity:
    def _campaign(self):
        return Campaign(
            name="equiv",
            entries=[
                CampaignEntry("E4", seed=0),
                CampaignEntry("E5", seed=0),
                CampaignEntry("E4", seed=1),
            ],
        )

    def test_jobs1_and_jobs4_manifests_bit_identical_with_cache(
        self, tmp_path, monkeypatch
    ):
        apply_micro_overrides("E4", monkeypatch.setattr)
        cache_dir = tmp_path / "cache"
        campaign = self._campaign()

        # Warm the store, then run at both worker counts fully cached.
        run_campaign(campaign, tmp_path / "warm", cache_dir=cache_dir)
        run_campaign(campaign, tmp_path / "seq", jobs=1, cache_dir=cache_dir)
        run_campaign(campaign, tmp_path / "par", jobs=4, cache_dir=cache_dir)

        sequential = (tmp_path / "seq" / "equiv" / "manifest.json").read_bytes()
        parallel = (tmp_path / "par" / "equiv" / "manifest.json").read_bytes()
        assert sequential == parallel

        manifest = json.loads(sequential)
        assert [entry["cached"] for entry in manifest["entries"]] == [True] * 3
        assert [entry["seconds"] for entry in manifest["entries"]] == [0.0] * 3

        # Result payloads are byte-identical per entry, too.
        for record in manifest["entries"]:
            left = (tmp_path / "seq" / "equiv" / record["result_json"]).read_bytes()
            right = (tmp_path / "par" / "equiv" / record["result_json"]).read_bytes()
            assert left == right

    def test_cached_flag_recorded_per_entry(self, tmp_path, monkeypatch):
        apply_micro_overrides("E4", monkeypatch.setattr)
        cache_dir = tmp_path / "cache"
        campaign = Campaign(name="flags", entries=[CampaignEntry("E4", seed=0)])
        cold = run_campaign(campaign, tmp_path / "cold", cache_dir=cache_dir)
        warm = run_campaign(campaign, tmp_path / "hot", cache_dir=cache_dir)
        assert cold["entries"][0]["cached"] is False
        assert warm["entries"][0]["cached"] is True
        assert cold["entries"][0]["findings"] == warm["entries"][0]["findings"]

    def test_no_cache_means_never_cached(self, tmp_path, monkeypatch):
        apply_micro_overrides("E4", monkeypatch.setattr)
        campaign = Campaign(name="plain", entries=[CampaignEntry("E4", seed=0)])
        manifest = run_campaign(campaign, tmp_path)
        manifest = run_campaign(campaign, tmp_path)
        assert manifest["entries"][0]["cached"] is False
