"""Retry, journal/resume, sharding, and fault-injection behaviour of campaigns.

Everything here runs real (tiny) experiments — E5's quick preset costs
a fraction of a second — and injects failures through the deterministic
fault harness, so the behaviours hold under both fork and spawn start
methods (fault plans travel in the environment, not in patched module
state).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    Campaign,
    CampaignEntry,
    _campaign_fingerprint,
    _journal_path,
    _resolve_shard,
    iter_campaign,
    run_campaign,
)
from repro.resilience import RetryPolicy
from repro.testing.faults import inject_faults

#: A zero-backoff policy so retry tests spend no wall-clock sleeping.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _mini(n: int = 3) -> Campaign:
    return Campaign(
        name="resil", entries=[CampaignEntry("E5", seed=seed) for seed in range(n)]
    )


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


class TestRetries:
    def test_transient_fault_retried_to_success(self, tmp_path):
        with inject_faults({"site": "worker_fault", "max_attempt": 2, "match": "s1"}):
            manifest = run_campaign(
                _mini(2), tmp_path, retry=FAST_RETRY
            )
        records = manifest["entries"]
        assert [record["seed"] for record in records] == [0, 1]
        assert "error" not in records[1]
        assert records[0]["attempts"] == 1
        assert records[1]["attempts"] == 3  # two injected failures, then success
        assert records[1]["findings"]

    def test_terminal_fault_fails_on_first_attempt(self, tmp_path):
        with inject_faults({"site": "worker_fault", "terminal": True, "match": "s1"}):
            manifest = run_campaign(_mini(2), tmp_path, retry=FAST_RETRY)
        record = manifest["entries"][1]
        assert record["error_type"] == "InjectedTerminalError"
        assert record["error"].startswith("InjectedTerminalError:")
        assert record["attempts"] == 1
        assert record["terminal"] is True
        assert "fault_point" in record["traceback"]
        # Failed entries leave no result files behind.
        assert not (tmp_path / "resil" / "e5_quick_s1.json").exists()

    def test_exhausted_budget_records_nonterminal_error(self, tmp_path):
        with inject_faults({"site": "worker_fault", "match": "s1"}):
            manifest = run_campaign(_mini(2), tmp_path, retry=2)
        record = manifest["entries"][1]
        assert record["error_type"] == "InjectedFaultError"
        assert record["attempts"] == 2
        assert record["terminal"] is False

    def test_retries_never_change_results(self, tmp_path):
        plain = run_campaign(_mini(2), tmp_path / "plain")
        with inject_faults({"site": "worker_fault", "max_attempt": 1}):
            retried = run_campaign(_mini(2), tmp_path / "retried", retry=FAST_RETRY)

        def essentials(manifest):
            return [
                {k: v for k, v in record.items() if k in ("seed", "findings")}
                for record in manifest["entries"]
            ]

        assert essentials(plain) == essentials(retried)


class TestFailFast:
    def test_fail_fast_skips_unstarted_entries(self, tmp_path):
        with inject_faults({"site": "worker_fault", "terminal": True, "match": "s1"}):
            manifest = run_campaign(_mini(3), tmp_path, fail_fast=True)
        records = manifest["entries"]
        assert "error" not in records[0]
        assert "error" in records[1]
        assert records[2] == {**CampaignEntry("E5", seed=2).to_dict(), "skipped": True}

    def test_fail_fast_streaming_yields_every_entry(self, tmp_path):
        with inject_faults({"site": "worker_fault", "terminal": True, "match": "s1"}):
            yielded = dict(
                iter_campaign(_mini(3), tmp_path, fail_fast=True)
            )
        assert sorted(yielded) == [0, 1, 2]
        assert yielded[2].get("skipped") is True


class TestWorkerCrash:
    def test_crash_mid_campaign_is_reaped_and_retried(self, tmp_path):
        # A hard-killed pool worker never returns its result; only the
        # entry deadline can detect it.  The crashed attempt costs one
        # deadline window, then the retry succeeds on a fresh pool.
        with inject_faults(
            {"site": "worker_crash", "max_attempt": 1, "match": "s0"}
        ):
            manifest = run_campaign(
                _mini(2),
                tmp_path,
                jobs=2,
                retry=FAST_RETRY,
                entry_deadline=8.0,
            )
        records = manifest["entries"]
        assert "error" not in records[0]
        assert records[0]["attempts"] == 2
        assert records[0]["findings"]
        assert "error" not in records[1]


class TestCacheCorruption:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_corrupted_cache_write_heals_on_next_campaign(self, tmp_path, jobs):
        # A torn cache write (the classic write race / crash-mid-publish)
        # must cost at most a recompute, never wrong numbers.  Works
        # under fork and spawn alike: the fault plan travels in the
        # environment and fires in whichever process runs the put.
        campaign = _mini(2)
        cache_dir = tmp_path / "cache"
        with inject_faults({"site": "cache_corrupt", "match": "_s1_"}):
            first = run_campaign(
                campaign, tmp_path / "a", jobs=jobs, cache_dir=cache_dir
            )
        second = run_campaign(
            campaign, tmp_path / "b", jobs=jobs, cache_dir=cache_dir
        )
        # Seed 0's entry was cached cleanly; seed 1's was torn, so the
        # second campaign quarantined it and recomputed.
        assert second["entries"][0]["cached"] is True
        assert second["entries"][1]["cached"] is False
        assert list((tmp_path / "cache").glob("*.corrupt"))
        assert [r["findings"] for r in first["entries"]] == [
            r["findings"] for r in second["entries"]
        ]
        # Third time around the healed entry serves a clean hit.
        third = run_campaign(campaign, tmp_path / "c", jobs=jobs, cache_dir=cache_dir)
        assert all(r["cached"] for r in third["entries"])


class TestJournalAndResume:
    def test_journal_records_every_completion(self, tmp_path):
        campaign = _mini(2)
        run_campaign(campaign, tmp_path)
        journal = _journal_path(tmp_path / "resil", None)
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        assert lines[0]["fingerprint"] == _campaign_fingerprint(campaign)
        assert sorted(line["index"] for line in lines[1:]) == [0, 1]

    def test_resume_replays_completed_entries_verbatim(self, tmp_path):
        campaign = _mini(3)
        iterator = iter_campaign(campaign, tmp_path)
        first_index, first_record = next(iterator)
        iterator.close()  # crash: no manifest, journal holds entry 0
        assert first_index == 0
        assert not (tmp_path / "resil" / "manifest.json").exists()

        manifest = run_campaign(campaign, tmp_path, resume=True)
        records = manifest["entries"]
        assert len(records) == 3
        # The journaled record is replayed byte-for-byte — even its
        # measured wall-clock seconds — proving no recompute happened.
        assert records[0] == first_record
        for record in records:
            assert (tmp_path / "resil" / record["result_json"]).exists()

    def test_resume_reruns_entries_with_missing_result_files(self, tmp_path):
        campaign = _mini(2)
        iterator = iter_campaign(campaign, tmp_path)
        _, first_record = next(iterator)
        iterator.close()
        (tmp_path / "resil" / first_record["result_json"]).unlink()

        manifest = run_campaign(campaign, tmp_path, resume=True)
        assert (tmp_path / "resil" / first_record["result_json"]).exists()
        assert all("error" not in record for record in manifest["entries"])

    def test_resume_with_cache_goes_through_the_cache(self, tmp_path):
        campaign = _mini(2)
        cache_dir = tmp_path / "cache"
        iterator = iter_campaign(campaign, tmp_path, cache_dir=cache_dir)
        next(iterator)
        iterator.close()

        manifest = run_campaign(
            campaign, tmp_path, cache_dir=cache_dir, resume=True
        )
        # The interrupted entry's computation is already in the cache,
        # so the resumed run recomputes nothing for it.
        assert manifest["entries"][0]["cached"] is True
        assert manifest["entries"][0]["seconds"] == 0.0

    def test_resume_replays_terminal_errors_without_rerunning(self, tmp_path):
        campaign = _mini(2)
        with inject_faults({"site": "worker_fault", "terminal": True, "match": "s1"}):
            first = run_campaign(campaign, tmp_path)
        # No faults active now: a rerun would succeed — but the terminal
        # failure is deterministic in real life, so resume trusts it.
        manifest = run_campaign(campaign, tmp_path, resume=True)
        assert manifest["entries"][1] == first["entries"][1]

    def test_resume_reruns_transient_exhausted_errors(self, tmp_path):
        campaign = _mini(2)
        with inject_faults({"site": "worker_fault", "match": "s1"}):
            first = run_campaign(campaign, tmp_path, retry=2)
        assert first["entries"][1]["terminal"] is False
        manifest = run_campaign(campaign, tmp_path, resume=True)
        assert "error" not in manifest["entries"][1]  # fresh budget, clean env

    def test_fresh_run_clears_stale_journal(self, tmp_path):
        campaign = _mini(2)
        run_campaign(campaign, tmp_path)
        run_campaign(campaign, tmp_path)  # fresh run, not resume
        journal = _journal_path(tmp_path / "resil", None)
        lines = journal.read_text().splitlines()
        assert len(lines) == 3  # one header + one line per entry, no leftovers

    def test_resume_rejects_a_different_campaigns_journal(self, tmp_path):
        run_campaign(_mini(2), tmp_path)
        other = Campaign(
            name="resil", entries=[CampaignEntry("E5", seed=9)]
        )
        with pytest.raises(ExperimentError, match="different campaign"):
            run_campaign(other, tmp_path, resume=True)


class TestSharding:
    def test_resolve_shard_forms(self):
        assert _resolve_shard(None) is None
        assert _resolve_shard("0/4") == (0, 4)
        assert _resolve_shard("3/4") == (3, 4)
        assert _resolve_shard((1, 2)) == (1, 2)

    def test_resolve_shard_rejects_malformed(self):
        for bad in ("x/y", "1", "1/2/3", "-1/2", "2/2", "0/0"):
            with pytest.raises(ExperimentError, match="shard"):
                _resolve_shard(bad)
        with pytest.raises(ExperimentError, match="shard"):
            _resolve_shard((True, 2))

    def test_shards_partition_and_merge(self, tmp_path):
        campaign = _mini(3)
        cache_dir = tmp_path / "cache"
        shard0 = run_campaign(
            campaign, tmp_path, shard="0/2", cache_dir=cache_dir
        )
        shard1 = run_campaign(
            campaign, tmp_path, shard="1/2", cache_dir=cache_dir
        )
        assert shard0["shard"] == "0/2"
        assert [r["seed"] for r in shard0["entries"]] == [0, 2]
        assert [r["seed"] for r in shard1["entries"]] == [1]
        directory = tmp_path / "resil"
        assert (directory / "manifest.shard0of2.json").exists()
        assert (directory / "manifest.shard1of2.json").exists()
        assert not (directory / "manifest.json").exists()

        # The merge run resumes unsharded over the same directory: every
        # entry is already in the shared cache, so it is pure assembly.
        merged = run_campaign(
            campaign, tmp_path, cache_dir=cache_dir, resume=True
        )
        assert [r["seed"] for r in merged["entries"]] == [0, 1, 2]
        assert all(r["cached"] for r in merged["entries"])
        assert (directory / "manifest.json").exists()

    def test_sharded_fresh_run_keeps_peer_journals(self, tmp_path):
        campaign = _mini(3)
        run_campaign(campaign, tmp_path, shard="0/2")
        run_campaign(campaign, tmp_path, shard="1/2")
        directory = tmp_path / "resil"
        # Shard 1 starting fresh must not clear shard 0's journal.
        assert _journal_path(directory, (0, 2)).exists()
        assert _journal_path(directory, (1, 2)).exists()
