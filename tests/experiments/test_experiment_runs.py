"""End-to-end runs of every experiment at micro scale.

Each experiment's module-level parameter constants are patched down to
the shared toy sizes in :mod:`repro.experiments.microscale` (also used
by the CI benchmark smoke) so the full code path (graph building,
measurement, fitting, table/figure assembly) executes in seconds.  The
real quick and full parameter sets are exercised by the benchmark
harness.
"""

from __future__ import annotations

from repro.experiments import (
    e1_cover_expanders,
    e2_bips_infection,
    e3_fractional_branching,
    e4_duality,
    e5_growth_bound,
    e6_phases,
    e7_baselines,
    e8_spectral_sweep,
    e9_branching_sweep,
    e10_persistence_ablation,
    e11_whp_tails,
    e12_dynamic_graphs,
    e13_message_loss,
)
from repro.experiments.microscale import apply_micro_overrides


def assert_wellformed(result, experiment_id: str) -> None:
    assert result.spec.experiment_id == experiment_id
    assert result.mode == "quick"
    assert result.findings
    assert result.tables
    for table in result.tables.values():
        assert table.n_rows > 0
    rendered = result.render()
    assert experiment_id in rendered


class TestMicroRuns:
    def test_e1(self, monkeypatch):
        apply_micro_overrides("E1", monkeypatch.setattr)
        result = e1_cover_expanders.run(seed=1)
        assert_wellformed(result, "E1")
        assert result.tables["cover times"].n_rows == 4
        assert "cover vs n" in result.figures

    def test_e2(self, monkeypatch):
        apply_micro_overrides("E2", monkeypatch.setattr)
        result = e2_bips_infection.run(seed=1)
        assert_wellformed(result, "E2")
        ratios = result.tables["BIPS vs COBRA"].column("infec/cov")
        assert all(0.1 < ratio < 10 for ratio in ratios)

    def test_e3(self, monkeypatch):
        apply_micro_overrides("E3", monkeypatch.setattr)
        result = e3_fractional_branching.run(seed=1)
        assert_wellformed(result, "E3")

    def test_e4(self, monkeypatch):
        apply_micro_overrides("E4", monkeypatch.setattr)
        result = e4_duality.run(seed=1)
        assert_wellformed(result, "E4")
        gaps = result.tables["exact verification"].column("max |LHS - RHS|")
        assert max(gaps) < 1e-10

    def test_e5(self):
        # E5 is already sub-second at quick scale; run it as-is.
        result = e5_growth_bound.run(seed=1)
        assert_wellformed(result, "E5")
        ratios = result.tables["growth-bound ratios"].column("min exact/bound")
        assert min(ratios) >= 1.0 - 1e-9

    def test_e6(self, monkeypatch):
        apply_micro_overrides("E6", monkeypatch.setattr)
        result = e6_phases.run(seed=1)
        assert_wellformed(result, "E6")

    def test_e7(self, monkeypatch):
        apply_micro_overrides("E7", monkeypatch.setattr)
        result = e7_baselines.run(seed=1)
        assert_wellformed(result, "E7")
        speedups = result.tables["random walk vs COBRA"].column("speedup")
        assert all(s > 1 for s in speedups)

    def test_e8(self, monkeypatch):
        apply_micro_overrides("E8", monkeypatch.setattr)
        result = e8_spectral_sweep.run(seed=1)
        assert_wellformed(result, "E8")

    def test_e9(self, monkeypatch):
        apply_micro_overrides("E9", monkeypatch.setattr)
        result = e9_branching_sweep.run(seed=1)
        assert_wellformed(result, "E9")
        # 2 COBRA rows + push + pull + push-pull.
        assert result.tables["protocol comparison"].n_rows == 5

    def test_e10(self, monkeypatch):
        apply_micro_overrides("E10", monkeypatch.setattr)
        result = e10_persistence_ablation.run(seed=1)
        assert_wellformed(result, "E10")
        outcomes = result.tables["outcomes"]
        bips_row = outcomes.rows[-1]
        assert bips_row[3] == 0  # BIPS never extinct

    def test_e11(self, monkeypatch):
        apply_micro_overrides("E11", monkeypatch.setattr)
        result = e11_whp_tails.run(seed=1)
        assert_wellformed(result, "E11")
        rates = result.tables["geometric tail fits"].column("tail rate / round")
        assert all(0.0 < rate < 1.0 for rate in rates)

    def test_e12(self, monkeypatch):
        apply_micro_overrides("E12", monkeypatch.setattr)
        result = e12_dynamic_graphs.run(seed=1)
        assert_wellformed(result, "E12")
        # 3 regimes x 2 sizes rows.
        assert result.tables["cover/infection times"].n_rows == 6

    def test_e13(self, monkeypatch):
        apply_micro_overrides("E13", monkeypatch.setattr)
        result = e13_message_loss.run(seed=1)
        assert_wellformed(result, "E13")
        gaps = result.tables["exact lossy duality"].column("max |LHS - RHS|")
        assert max(gaps) < 1e-10
