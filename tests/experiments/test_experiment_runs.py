"""End-to-end runs of every experiment at micro scale.

Each experiment's module-level parameter constants are monkeypatched
down to toy sizes so the full code path (graph building, measurement,
fitting, table/figure assembly) executes in seconds.  The real quick
and full parameter sets are exercised by the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    e1_cover_expanders,
    e2_bips_infection,
    e3_fractional_branching,
    e4_duality,
    e5_growth_bound,
    e6_phases,
    e7_baselines,
    e8_spectral_sweep,
    e9_branching_sweep,
    e10_persistence_ablation,
    e11_whp_tails,
    e12_dynamic_graphs,
    e13_message_loss,
)
from repro.graphs import generators


def assert_wellformed(result, experiment_id: str) -> None:
    assert result.spec.experiment_id == experiment_id
    assert result.mode == "quick"
    assert result.findings
    assert result.tables
    for table in result.tables.values():
        assert table.n_rows > 0
    rendered = result.render()
    assert experiment_id in rendered


class TestMicroRuns:
    def test_e1(self, monkeypatch):
        monkeypatch.setattr(e1_cover_expanders, "QUICK_SIZES", (64, 128))
        monkeypatch.setattr(e1_cover_expanders, "QUICK_DEGREES", (3, 8))
        monkeypatch.setattr(e1_cover_expanders, "QUICK_SAMPLES", 3)
        result = e1_cover_expanders.run(seed=1)
        assert_wellformed(result, "E1")
        assert result.tables["cover times"].n_rows == 4
        assert "cover vs n" in result.figures

    def test_e2(self, monkeypatch):
        monkeypatch.setattr(e2_bips_infection, "QUICK_SIZES", (64, 128))
        monkeypatch.setattr(e2_bips_infection, "QUICK_SAMPLES", 3)
        result = e2_bips_infection.run(seed=1)
        assert_wellformed(result, "E2")
        ratios = result.tables["BIPS vs COBRA"].column("infec/cov")
        assert all(0.1 < ratio < 10 for ratio in ratios)

    def test_e3(self, monkeypatch):
        monkeypatch.setattr(e3_fractional_branching, "QUICK_SIZES", (64, 128))
        monkeypatch.setattr(e3_fractional_branching, "QUICK_RHOS", (0.5, 1.0))
        monkeypatch.setattr(e3_fractional_branching, "QUICK_SAMPLES", 3)
        result = e3_fractional_branching.run(seed=1)
        assert_wellformed(result, "E3")

    def test_e4(self, monkeypatch):
        monkeypatch.setattr(e4_duality, "QUICK_TRIALS", 200)
        monkeypatch.setattr(e4_duality, "EXACT_T_MAX", 4)
        result = e4_duality.run(seed=1)
        assert_wellformed(result, "E4")
        gaps = result.tables["exact verification"].column("max |LHS - RHS|")
        assert max(gaps) < 1e-10

    def test_e5(self):
        # E5 is already sub-second at quick scale; run it as-is.
        result = e5_growth_bound.run(seed=1)
        assert_wellformed(result, "E5")
        ratios = result.tables["growth-bound ratios"].column("min exact/bound")
        assert min(ratios) >= 1.0 - 1e-9

    def test_e6(self, monkeypatch):
        monkeypatch.setattr(e6_phases, "QUICK_SIZES", (128, 256))
        monkeypatch.setattr(e6_phases, "QUICK_TRAJECTORIES", 3)
        result = e6_phases.run(seed=1)
        assert_wellformed(result, "E6")

    def test_e7(self, monkeypatch):
        monkeypatch.setattr(
            e7_baselines,
            "QUICK",
            {
                "complete_sizes": (32, 64, 128),
                "torus2d_sides": (5, 9, 13),
                "torus3d_sides": (3, 5),
                "walk_sizes": (32, 64),
                "samples": 3,
            },
        )
        result = e7_baselines.run(seed=1)
        assert_wellformed(result, "E7")
        speedups = result.tables["random walk vs COBRA"].column("speedup")
        assert all(s > 1 for s in speedups)

    def test_e8(self, monkeypatch):
        monkeypatch.setattr(e8_spectral_sweep, "CIRCULANT_N", 65)
        monkeypatch.setattr(e8_spectral_sweep, "QUICK_CHORDS", (1, 4))
        monkeypatch.setattr(e8_spectral_sweep, "REGULAR_N", 64)
        monkeypatch.setattr(e8_spectral_sweep, "QUICK_DEGREES", (3, 8))
        monkeypatch.setattr(e8_spectral_sweep, "QUICK_SAMPLES", 3)
        result = e8_spectral_sweep.run(seed=1)
        assert_wellformed(result, "E8")

    def test_e9(self, monkeypatch):
        monkeypatch.setattr(e9_branching_sweep, "GRAPH_N", 128)
        monkeypatch.setattr(e9_branching_sweep, "QUICK_BRANCHINGS", (1.0, 2.0))
        monkeypatch.setattr(e9_branching_sweep, "QUICK_SAMPLES", 3)
        result = e9_branching_sweep.run(seed=1)
        assert_wellformed(result, "E9")
        # 2 COBRA rows + push + pull + push-pull.
        assert result.tables["protocol comparison"].n_rows == 5

    def test_e10(self, monkeypatch):
        monkeypatch.setattr(e10_persistence_ablation, "GRAPH_N", 64)
        monkeypatch.setattr(e10_persistence_ablation, "QUICK_SIS_TRIALS", 40)
        monkeypatch.setattr(e10_persistence_ablation, "QUICK_BIPS_TRIALS", 10)
        result = e10_persistence_ablation.run(seed=1)
        assert_wellformed(result, "E10")
        outcomes = result.tables["outcomes"]
        bips_row = outcomes.rows[-1]
        assert bips_row[3] == 0  # BIPS never extinct

    def test_e11(self, monkeypatch):
        monkeypatch.setattr(e11_whp_tails, "TAIL_GRAPH_N", 256)
        monkeypatch.setattr(e11_whp_tails, "QUICK_TAIL_SAMPLES", 400)
        monkeypatch.setattr(e11_whp_tails, "QUICK_LADDER", (128, 256))
        monkeypatch.setattr(e11_whp_tails, "QUICK_LADDER_SAMPLES", 60)
        result = e11_whp_tails.run(seed=1)
        assert_wellformed(result, "E11")
        rates = result.tables["geometric tail fits"].column("tail rate / round")
        assert all(0.0 < rate < 1.0 for rate in rates)

    def test_e12(self, monkeypatch):
        monkeypatch.setattr(e12_dynamic_graphs, "QUICK_SIZES", (64, 128))
        monkeypatch.setattr(e12_dynamic_graphs, "QUICK_SAMPLES", 3)
        result = e12_dynamic_graphs.run(seed=1)
        assert_wellformed(result, "E12")
        # 3 regimes x 2 sizes rows.
        assert result.tables["cover/infection times"].n_rows == 6

    def test_e13(self, monkeypatch):
        monkeypatch.setattr(e13_message_loss, "GRAPH_N", 128)
        monkeypatch.setattr(e13_message_loss, "QUICK_SAMPLES", 30)
        monkeypatch.setattr(e13_message_loss, "EXACT_T_MAX", 4)
        result = e13_message_loss.run(seed=1)
        assert_wellformed(result, "E13")
        gaps = result.tables["exact lossy duality"].column("max |LHS - RHS|")
        assert max(gaps) < 1e-10
