"""Tests for the shared measurement helpers in :mod:`repro.experiments.sweep`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sweep import (
    expander_with_gap,
    measure_bips_infection,
    measure_cobra_cover,
    measure_push_broadcast,
    measure_pushpull_broadcast,
    measure_random_walk_cover,
)
from repro.graphs import generators


class TestMeasurementHelpers:
    def test_cobra_cover(self, small_expander):
        measurement = measure_cobra_cover(small_expander, n_samples=6, seed=0)
        assert measurement.times.shape == (6,)
        assert np.all(measurement.times > 0)
        assert measurement.mean == measurement.stats.mean

    def test_bips_infection(self, small_expander):
        measurement = measure_bips_infection(small_expander, n_samples=6, seed=0)
        assert np.all(measurement.times > 0)

    def test_push_and_pushpull(self, small_expander):
        push = measure_push_broadcast(small_expander, n_samples=6, seed=0)
        pushpull = measure_pushpull_broadcast(small_expander, n_samples=6, seed=0)
        assert np.all(push.times > 0)
        assert np.all(pushpull.times > 0)

    def test_random_walk(self):
        graph = generators.cycle(12)
        measurement = measure_random_walk_cover(graph, n_samples=4, seed=0)
        assert np.all(measurement.times >= 11)

    def test_deterministic(self, small_expander):
        a = measure_cobra_cover(small_expander, n_samples=5, seed=3)
        b = measure_cobra_cover(small_expander, n_samples=5, seed=3)
        assert np.array_equal(a.times, b.times)

    def test_branching_forwarded(self, small_expander):
        k1 = measure_cobra_cover(small_expander, branching=1.0, n_samples=3, seed=1)
        k4 = measure_cobra_cover(small_expander, branching=4.0, n_samples=3, seed=1)
        assert k4.mean < k1.mean


class TestExpanderWithGap:
    def test_returns_graph_and_lambda(self):
        graph, lam = expander_with_gap(64, 4, seed=0)
        assert graph.n_vertices == 64
        assert graph.regular_degree == 4
        assert 0.0 < lam < 1.0

    def test_lambda_matches_direct_computation(self):
        from repro.graphs.spectral import lambda_second

        graph, lam = expander_with_gap(64, 4, seed=1)
        assert lam == pytest.approx(lambda_second(graph))

    def test_deterministic(self):
        a, lam_a = expander_with_gap(64, 4, seed=9)
        b, lam_b = expander_with_gap(64, 4, seed=9)
        assert a == b
        assert lam_a == lam_b
