"""Shared fixtures for the test suite."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.graphs import generators

# The CI "spawn" job sets REPRO_TEST_START_METHOD=spawn so the whole
# suite runs its pools without fork inheritance — the regime where the
# shared-memory graph path actually carries the data.  The method must
# be pinned at import time, before any pool (or the resource tracker)
# exists.
_START_METHOD = os.environ.get("REPRO_TEST_START_METHOD")
if _START_METHOD:
    multiprocessing.set_start_method(_START_METHOD, force=True)


@pytest.fixture(scope="session", autouse=True)
def _pinned_start_method():
    """Fail loudly if the requested start method did not take effect."""
    if _START_METHOD:
        assert multiprocessing.get_start_method() == _START_METHOD
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for stochastic assertions."""
    return np.random.default_rng(12345)


@pytest.fixture
def petersen():
    """The Petersen graph: small, 3-regular, non-bipartite, λ = 2/3."""
    return generators.petersen()


@pytest.fixture
def k5():
    """The complete graph on five vertices."""
    return generators.complete(5)


@pytest.fixture
def c9():
    """An odd (non-bipartite) cycle."""
    return generators.cycle(9)


@pytest.fixture
def small_expander():
    """A connected random 4-regular graph on 64 vertices."""
    return generators.random_regular(64, 4, seed=7)


@pytest.fixture
def medium_expander():
    """A connected random 8-regular graph on 512 vertices."""
    return generators.random_regular(512, 8, seed=11)
