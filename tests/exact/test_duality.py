"""Tests for the Theorem 4 duality verification (the paper's core identity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact.duality import duality_gap, duality_series
from repro.graphs import generators


class TestDualityExact:
    @pytest.mark.parametrize("branching", [1.0, 1.5, 2.0, 3.0])
    def test_petersen_all_branchings(self, petersen, branching):
        assert duality_gap(petersen, [0], 7, 10, branching=branching) < 1e-10

    def test_multi_vertex_start_set(self, petersen):
        assert duality_gap(petersen, [0, 2, 8], 5, 10) < 1e-10

    def test_complete_graph(self):
        assert duality_gap(generators.complete(6), [1], 4, 12) < 1e-10

    def test_odd_cycle(self):
        assert duality_gap(generators.cycle(9), [0, 3], 6, 12) < 1e-10

    def test_even_cycle_bipartite(self):
        # Bipartite graphs are excluded from the *spectral* theorems but
        # the duality identity itself has no such hypothesis.
        assert duality_gap(generators.cycle(8), [0], 3, 12) < 1e-10

    def test_random_regular(self):
        graph = generators.random_regular(10, 3, seed=5)
        assert duality_gap(graph, [0], 9, 10) < 1e-10

    def test_irregular_graphs(self):
        # The paper states Theorem 4 for regular graphs, but the proof
        # never uses regularity; verify on a path and a star.
        assert duality_gap(generators.path(6), [0], 5, 12) < 1e-10
        assert duality_gap(generators.star(7), [1], 3, 12) < 1e-10

    def test_source_in_start_set_is_trivial(self, petersen):
        cobra_side, bips_side = duality_series(petersen, [0, 4], 4, 6)
        assert np.allclose(cobra_side, 0.0)
        assert np.allclose(bips_side, 0.0)


class TestWithoutReplacement:
    """The duality carries over to without-replacement sampling.

    The proof of Theorem 4 uses only (a) that a vertex's random choice
    set has the same law in COBRA and BIPS and (b) independence across
    vertices — both true for uniform distinct draws as well.
    """

    @pytest.mark.parametrize("branching", [1.0, 1.5, 2.0])
    def test_petersen(self, petersen, branching):
        gap = duality_gap(
            petersen, [0], 7, 10, branching=branching, replacement=False
        )
        assert gap < 1e-10

    def test_complete_graph(self):
        gap = duality_gap(
            generators.complete(6), [1, 2], 4, 10, branching=2.0, replacement=False
        )
        assert gap < 1e-10

    def test_cycle_flooding_case(self):
        # k=2 without replacement on a cycle floods deterministically;
        # the duality must hold in this degenerate regime too.
        gap = duality_gap(
            generators.cycle(9), [0], 4, 10, branching=2.0, replacement=False
        )
        assert gap < 1e-10

    def test_differs_from_with_replacement(self, petersen):
        # Sanity: the two samplings genuinely give different processes.
        with_replacement, _ = duality_series(petersen, [0], 7, 6, branching=2.0)
        without_replacement, _ = duality_series(
            petersen, [0], 7, 6, branching=2.0, replacement=False
        )
        assert not np.allclose(with_replacement, without_replacement)


class TestWithLoss:
    """The duality also survives independent per-message loss.

    Thinning each draw with probability ``p`` changes both processes'
    choice-set law identically, which is all the Theorem 4 proof needs.
    """

    @pytest.mark.parametrize("loss", [0.1, 0.3, 0.6])
    def test_petersen(self, petersen, loss):
        assert duality_gap(petersen, [0], 7, 10, loss_probability=loss) < 1e-10

    def test_loss_with_fractional_branching(self):
        gap = duality_gap(
            generators.complete(6), [1, 2], 4, 10, branching=1.5, loss_probability=0.25
        )
        assert gap < 1e-10

    def test_lossy_walk_can_die_without_hitting(self):
        # With k=1 and loss, the single walk dies with constant
        # probability per round, so the hitting survival plateaus at a
        # strictly positive level instead of vanishing.
        cobra_side, bips_side = duality_series(
            generators.cycle(9), [0], 4, 60, branching=1.0, loss_probability=0.3
        )
        assert cobra_side[-1] > 0.2
        assert abs(cobra_side[-1] - bips_side[-1]) < 1e-10

    def test_differs_from_lossless(self, petersen):
        lossless, _ = duality_series(petersen, [0], 7, 6)
        lossy, _ = duality_series(petersen, [0], 7, 6, loss_probability=0.3)
        assert not np.allclose(lossless, lossy)


class TestDualitySeries:
    def test_t0_indicator(self, petersen):
        cobra_side, bips_side = duality_series(petersen, [0], 7, 0)
        assert cobra_side[0] == pytest.approx(1.0)
        assert bips_side[0] == pytest.approx(1.0)

    def test_both_sides_decrease(self, petersen):
        cobra_side, bips_side = duality_series(petersen, [0], 7, 10)
        assert np.all(np.diff(cobra_side) <= 1e-12)
        assert np.all(np.diff(bips_side) <= 1e-12)

    def test_series_lengths(self, petersen):
        cobra_side, bips_side = duality_series(petersen, [0], 7, 6)
        assert cobra_side.shape == (7,)
        assert bips_side.shape == (7,)

    def test_tail_vanishes(self, petersen):
        # Hit_0(7) is finite a.s., so both sides go to 0.
        cobra_side, bips_side = duality_series(petersen, [0], 7, 50)
        assert cobra_side[-1] < 1e-5
        assert bips_side[-1] < 1e-5
