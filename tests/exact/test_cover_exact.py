"""Tests for the exact COBRA cover-time law."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import spawn_generators
from repro.core.cobra import CobraProcess
from repro.core.runner import run_process
from repro.errors import ExactEngineError
from repro.exact.cover_exact import ExactCobraCover
from repro.graphs import generators


class TestCoverLaw:
    def test_pmf_plus_tail_is_one(self):
        engine = ExactCobraCover(generators.complete(5))
        pmf, tail = engine.cover_time_distribution(0, t_max=40)
        assert pmf.sum() + tail == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_k2_cover_law_on_k2(self):
        # K2 from vertex 0 covers deterministically at t=2 under the
        # paper's union-from-round-1 semantics.
        engine = ExactCobraCover(generators.complete(2))
        pmf, tail = engine.cover_time_distribution(0, t_max=5)
        assert pmf[2] == pytest.approx(1.0)
        assert tail == pytest.approx(0.0)

    def test_include_start_shifts_k2(self):
        engine = ExactCobraCover(generators.complete(2), include_start_in_cover=True)
        pmf, _ = engine.cover_time_distribution(0, t_max=5)
        assert pmf[1] == pytest.approx(1.0)

    def test_already_covered_start(self):
        engine = ExactCobraCover(generators.complete(3), include_start_in_cover=True)
        pmf, tail = engine.cover_time_distribution([0, 1, 2], t_max=5)
        assert pmf[0] == pytest.approx(1.0)
        assert tail == pytest.approx(0.0)

    def test_cycle_without_replacement_is_deterministic(self):
        # k=2 distinct picks on a cycle flood deterministically: C7 from
        # one vertex covers the other 6 vertices in exactly 3 rounds,
        # and the start vertex is re-chosen at round 2.
        engine = ExactCobraCover(
            generators.cycle(7), branching=2.0, replacement=False
        )
        pmf, tail = engine.cover_time_distribution(0, t_max=10)
        assert pmf[3] == pytest.approx(1.0)

    def test_impossible_early_rounds_have_zero_mass(self):
        # With branching 2 the union after t rounds has at most
        # 2 + 4 + ... + 2^t vertices, so P(cov <= 1) = 0 on K5 from a
        # single start (round 1 reaches at most 2 of the 5 vertices),
        # while two rounds can already finish (e.g. C1 = {1,2},
        # C2 = {0,3,4}).
        engine = ExactCobraCover(generators.complete(5))
        pmf, _ = engine.cover_time_distribution(0, t_max=30)
        assert pmf[0] == 0.0
        assert pmf[1] == 0.0
        assert pmf[2] > 0.0

    def test_matches_monte_carlo(self):
        graph = generators.complete(5)
        engine = ExactCobraCover(graph)
        exact_expectation = engine.expected_cover_time(0)
        trials = 3000
        total = 0
        for rng in spawn_generators(3, trials):
            process = CobraProcess(graph, 0, seed=rng)
            result = run_process(process, raise_on_timeout=True)
            total += result.completion_time
        empirical = total / trials
        assert abs(empirical - exact_expectation) < 0.15

    def test_survival_series_monotone(self):
        engine = ExactCobraCover(generators.cycle(6))
        survival = engine.survival_series(0, 30)
        assert np.all(np.diff(survival) <= 1e-12)
        assert survival[-1] < 0.05

    def test_expected_cover_dominated_by_duality_hitting(self):
        # cov = max_v Hit(v) >= Hit(v) for each v; so E[cov] must
        # dominate every single-target expected hitting time.
        from repro.exact.cobra_exact import ExactCobra

        graph = generators.cycle(6)
        cover_engine = ExactCobraCover(graph)
        expected_cover = cover_engine.expected_cover_time(0)
        walk_engine = ExactCobra(graph, branching=2.0)
        for target in range(1, 6):
            survival = walk_engine.hitting_survival_series([0], target, 500)
            expected_hit = float(survival.sum())
            assert expected_cover >= expected_hit - 1e-9

    def test_size_limit(self):
        with pytest.raises(ExactEngineError, match="3\\^n"):
            ExactCobraCover(generators.petersen())
