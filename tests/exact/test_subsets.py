"""Tests for the bitmask subset algebra in :mod:`repro.exact.subsets`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExactEngineError
from repro.exact.subsets import (
    MAX_EXACT_VERTICES,
    bernoulli_fold,
    check_size,
    mask_from_vertices,
    masks_containing,
    masks_disjoint_from,
    or_with_bit,
    popcount_table,
    vertices_from_mask,
)


class TestMasks:
    def test_roundtrip(self):
        for vertices in ([], [0], [1, 3], [0, 2, 5]):
            assert vertices_from_mask(mask_from_vertices(vertices)) == sorted(vertices)

    def test_duplicates_harmless(self):
        assert mask_from_vertices([2, 2, 2]) == 4

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            mask_from_vertices([-1])

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            vertices_from_mask(-3)


class TestPopcountTable:
    def test_values(self):
        table = popcount_table(4)
        assert table.shape == (16,)
        expected = [bin(mask).count("1") for mask in range(16)]
        assert list(table) == expected

    def test_readonly(self):
        with pytest.raises(ValueError):
            popcount_table(3)[0] = 9

    def test_size_guard(self):
        with pytest.raises(ExactEngineError, match="limit"):
            check_size(MAX_EXACT_VERTICES + 1)
        check_size(MAX_EXACT_VERTICES)  # boundary is allowed


class TestBernoulliFold:
    def test_extends_delta(self):
        n_bits = 3
        distribution = np.zeros(8)
        distribution[0] = 1.0
        folded = bernoulli_fold(distribution, 1, 0.3, n_bits)
        assert folded[0] == pytest.approx(0.7)
        assert folded[0b010] == pytest.approx(0.3)
        assert folded.sum() == pytest.approx(1.0)

    def test_builds_product_measure(self):
        n_bits = 3
        distribution = np.zeros(8)
        distribution[0] = 1.0
        probabilities = [0.2, 0.5, 0.9]
        for bit, p in enumerate(probabilities):
            distribution = bernoulli_fold(distribution, bit, p, n_bits)
        for mask in range(8):
            expected = 1.0
            for bit, p in enumerate(probabilities):
                expected *= p if (mask >> bit) & 1 else 1.0 - p
            assert distribution[mask] == pytest.approx(expected)

    def test_conserves_mass(self):
        rng = np.random.default_rng(0)
        distribution = rng.random(16)
        distribution[8:] = 0.0  # no mass on bit 3
        distribution /= distribution.sum()
        folded = bernoulli_fold(distribution, 3, 0.4, 4)
        assert folded.sum() == pytest.approx(1.0)


class TestOrWithBit:
    def test_moves_all_mass_to_bit_set_half(self):
        n_bits = 3
        distribution = np.zeros(8)
        distribution[0b001] = 0.5
        distribution[0b100] = 0.5
        result = or_with_bit(distribution, 1, n_bits)
        assert result[0b011] == pytest.approx(0.5)
        assert result[0b110] == pytest.approx(0.5)
        assert result.sum() == pytest.approx(1.0)

    def test_idempotent_on_bit_set_masks(self):
        distribution = np.zeros(4)
        distribution[0b10] = 1.0
        result = or_with_bit(distribution, 1, 2)
        assert result[0b10] == pytest.approx(1.0)


class TestSelectors:
    def test_masks_disjoint_from(self):
        selector = masks_disjoint_from(0b101, 3)
        chosen = np.flatnonzero(selector)
        assert list(chosen) == [0b000, 0b010]

    def test_masks_containing(self):
        selector = masks_containing(0, 3)
        chosen = np.flatnonzero(selector)
        assert list(chosen) == [1, 3, 5, 7]
