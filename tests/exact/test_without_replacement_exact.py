"""Exact-engine tests for without-replacement sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro._rng import spawn_generators
from repro.core.bips import BipsProcess
from repro.core.cobra import CobraProcess
from repro.exact.bips_exact import ExactBips
from repro.exact.cobra_exact import ExactCobra
from repro.exact.subsets import mask_from_vertices, popcount_table
from repro.graphs import generators
from repro.theory.growth import expected_next_infected_size


class TestExactBipsWithoutReplacement:
    def test_hypergeometric_probability(self, petersen):
        engine = ExactBips(petersen, 0, branching=2.0, replacement=False)
        # Infected = {0}; a neighbour u of 0 has d=3, a=1: miss =
        # C(2,2)/C(3,2) = 1/3, so p = 2/3.
        probabilities = engine.infection_probabilities(1 << 0)
        neighbor = int(petersen.neighbors(0)[0])
        assert probabilities[neighbor] == pytest.approx(2 / 3)

    def test_saturated_overlap_gives_certainty(self):
        # On a cycle with k=2 distinct picks, a vertex with one infected
        # neighbour is infected with probability C(1,2)/C(2,2) -> miss 0?
        # No: d=2, a=1 -> miss = C(1,2)/C(2,2) = 0 -> p = 1.
        graph = generators.cycle(9)
        engine = ExactBips(graph, 0, branching=2.0, replacement=False)
        probabilities = engine.infection_probabilities(mask_from_vertices([0]))
        assert probabilities[1] == pytest.approx(1.0)
        assert probabilities[8] == pytest.approx(1.0)
        assert probabilities[4] == pytest.approx(0.0)

    def test_fractional_law(self):
        # K5, infected {0}; vertex u: d=4, a=1.  k=1, rho=0.5:
        # miss = (3/4) * (0.5 + 0.5 * (2/3)) = 0.625 -> p = 0.375.
        graph = generators.complete(5)
        engine = ExactBips(graph, 0, branching=1.5, replacement=False)
        probabilities = engine.infection_probabilities(mask_from_vertices([0]))
        assert probabilities[1] == pytest.approx(0.375)

    def test_mass_conserved(self, petersen):
        engine = ExactBips(petersen, 0, branching=2.0, replacement=False)
        for t in (1, 3, 6):
            assert engine.distribution_at(t).sum() == pytest.approx(1.0)

    def test_monte_carlo_agreement(self):
        graph = generators.complete(6)
        engine = ExactBips(graph, 0, branching=2.0, replacement=False)
        t = 3
        exact = engine.membership_probability(4, t)
        trials = 4000
        hits = 0
        for rng in spawn_generators(21, trials):
            process = BipsProcess(graph, 0, branching=2.0, replacement=False, seed=rng)
            process.run(t)
            hits += process.is_infected(4)
        empirical = hits / trials
        standard_error = math.sqrt(max(exact * (1 - exact), 1e-4) / trials)
        assert abs(empirical - exact) < 5 * standard_error


class TestExactCobraWithoutReplacement:
    def test_choice_law_is_uniform_over_subsets(self, petersen):
        engine = ExactCobra(petersen, branching=2.0, replacement=False)
        law = engine._distinct_choice_law(0)
        assert len(law) == 3  # C(3, 2) subsets
        for _, probability in law:
            assert probability == pytest.approx(1 / 3)

    def test_fractional_choice_law_mixes_sizes(self, petersen):
        engine = ExactCobra(petersen, branching=1.5, replacement=False)
        law = dict(engine._distinct_choice_law(0))
        popcount = popcount_table(10)
        mass_by_size: dict[int, float] = {}
        for subset_mask, probability in law.items():
            size = int(popcount[subset_mask])
            mass_by_size[size] = mass_by_size.get(size, 0.0) + probability
        assert mass_by_size[1] == pytest.approx(0.5)
        assert mass_by_size[2] == pytest.approx(0.5)

    def test_step_mass_conserved(self, petersen):
        engine = ExactCobra(petersen, branching=2.0, replacement=False)
        for mask in (0b1, 0b1001, 0b1111):
            assert engine.step_distribution(mask).sum() == pytest.approx(1.0)

    def test_cycle_flooding_is_deterministic(self):
        graph = generators.cycle(7)
        engine = ExactCobra(graph, branching=2.0, replacement=False)
        distribution = engine.step_distribution(1 << 0)
        expected_mask = mask_from_vertices([1, 6])
        assert distribution[expected_mask] == pytest.approx(1.0)

    def test_monte_carlo_occupation(self, petersen):
        engine = ExactCobra(petersen, branching=2.0, replacement=False)
        t = 3
        exact = engine.occupation_probabilities([0], t)
        trials = 3000
        counts = np.zeros(10)
        for rng in spawn_generators(31, trials):
            process = CobraProcess(petersen, 0, branching=2.0, replacement=False, seed=rng)
            process.run(t)
            counts += process.active_mask
        empirical = counts / trials
        standard_error = np.sqrt(exact * (1 - exact) / trials)
        assert np.all(np.abs(empirical - exact) < 5 * standard_error + 2e-2)


class TestGrowthFormulaWithoutReplacement:
    def test_matches_exact_engine_mean(self, petersen):
        infected = [0, 2, 6]
        formula = expected_next_infected_size(
            petersen, infected, 0, branching=2.0, replacement=False
        )
        engine = ExactBips(petersen, 0, branching=2.0, replacement=False)
        distribution = engine.step_distribution(mask_from_vertices(infected))
        sizes = popcount_table(10).astype(np.float64)
        assert formula == pytest.approx(float((distribution * sizes).sum()))

    def test_distinct_draws_dominate_replacement(self, petersen):
        # Distinct contacts hit the infected set at least as often.
        for infected in ([0], [0, 1], [0, 3, 5, 8]):
            with_replacement = expected_next_infected_size(
                petersen, infected, 0, branching=2.0
            )
            without = expected_next_infected_size(
                petersen, infected, 0, branching=2.0, replacement=False
            )
            assert without >= with_replacement - 1e-12
