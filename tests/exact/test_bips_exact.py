"""Tests for the exact BIPS engine against theory and Monte-Carlo."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import spawn_generators
from repro.core.bips import BipsProcess
from repro.errors import ExactEngineError
from repro.exact.bips_exact import ExactBips
from repro.exact.subsets import mask_from_vertices
from repro.graphs import generators
from repro.theory.growth import expected_next_infected_size


class TestStepDistribution:
    def test_mass_conserved(self, petersen):
        engine = ExactBips(petersen, 0)
        for mask in (0b1, 0b1011, 0b1111111111):
            assert engine.step_distribution(mask).sum() == pytest.approx(1.0)

    def test_source_always_in_support(self, petersen):
        engine = ExactBips(petersen, 2)
        distribution = engine.step_distribution(1 << 2)
        support = np.flatnonzero(distribution > 0)
        assert all((int(mask) >> 2) & 1 for mask in support)

    def test_full_set_stays_full_for_source_graph(self):
        # On K_n from the full set, every vertex's samples are all
        # infected, so A_{t+1} = V with probability 1.
        graph = generators.complete(4)
        engine = ExactBips(graph, 0)
        distribution = engine.step_distribution(0b1111)
        assert distribution[0b1111] == pytest.approx(1.0)

    def test_infection_probabilities_match_formula(self, c9):
        engine = ExactBips(c9, 0, branching=2.0)
        mask = mask_from_vertices([0, 1])
        probabilities = engine.infection_probabilities(mask)
        # Vertex 2 neighbours {1, 3}; one infected => p = 1 - (1/2)^2.
        assert probabilities[2] == pytest.approx(0.75)
        # Vertex 5 has no infected neighbour.
        assert probabilities[5] == pytest.approx(0.0)
        # Source reported as 1.
        assert probabilities[0] == 1.0

    def test_fractional_probabilities(self, c9):
        engine = ExactBips(c9, 0, branching=1.5)
        mask = mask_from_vertices([0, 1])
        probabilities = engine.infection_probabilities(mask)
        # Vertex 2: hit fraction q = 1/2; miss = (1-q)(1-rho q) = 0.5 * 0.75.
        assert probabilities[2] == pytest.approx(1 - 0.5 * 0.75)


class TestEvolution:
    def test_expected_size_one_step_matches_growth_formula(self, petersen):
        engine = ExactBips(petersen, 0)
        series = engine.expected_size_series(1)
        expected = expected_next_infected_size(petersen, [0], 0, branching=2.0)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(expected)

    def test_matrix_and_fold_paths_agree(self):
        graph = generators.cycle(5)
        engine_fold = ExactBips(graph, 0)
        start = engine_fold.initial_distribution()
        # Fold path: step mask-by-mask (bypass the matrix).
        by_fold = np.zeros_like(start)
        for mask in np.flatnonzero(start > 0):
            by_fold += start[mask] * engine_fold.step_distribution(int(mask))
        by_matrix = ExactBips(graph, 0).evolve(start, 1)
        assert np.allclose(by_fold, by_matrix, atol=1e-12)

    def test_distribution_at_sums_to_one(self, petersen):
        engine = ExactBips(petersen, 0)
        for t in (0, 1, 3, 7):
            assert engine.distribution_at(t).sum() == pytest.approx(1.0)

    def test_membership_probability_of_source_is_one(self, petersen):
        engine = ExactBips(petersen, 4)
        for t in (0, 1, 5):
            assert engine.membership_probability(4, t) == pytest.approx(1.0)

    def test_monte_carlo_agreement(self, c9):
        engine = ExactBips(c9, 0)
        t = 4
        exact_probability = engine.membership_probability(3, t)
        trials = 4000
        hits = 0
        for rng in spawn_generators(123, trials):
            process = BipsProcess(c9, 0, seed=rng)
            process.run(t)
            hits += process.is_infected(3)
        empirical = hits / trials
        standard_error = np.sqrt(exact_probability * (1 - exact_probability) / trials)
        assert abs(empirical - exact_probability) < 5 * standard_error + 1e-9

    def test_evolve_validates_shape(self, petersen):
        engine = ExactBips(petersen, 0)
        with pytest.raises(ValueError, match="shape"):
            engine.evolve(np.ones(4), 1)
        with pytest.raises(ValueError, match="non-negative"):
            engine.evolve(engine.initial_distribution(), -1)


class TestInfectionTimeLaw:
    def test_pmf_plus_tail_is_one(self, petersen):
        engine = ExactBips(petersen, 0)
        pmf, tail = engine.infection_time_distribution(30)
        assert pmf.sum() + tail == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_k2_complete2_is_deterministic(self):
        engine = ExactBips(generators.complete(2), 0)
        pmf, tail = engine.infection_time_distribution(3)
        assert pmf[1] == pytest.approx(1.0)
        assert tail == pytest.approx(0.0)

    def test_expected_infection_time_matches_pmf(self, c9):
        engine = ExactBips(c9, 0)
        pmf, tail = engine.infection_time_distribution(400)
        assert tail < 1e-10
        from_pmf = float(np.dot(np.arange(401), pmf))
        assert engine.expected_infection_time() == pytest.approx(from_pmf, rel=1e-6)

    def test_expectation_against_monte_carlo(self):
        graph = generators.complete(5)
        engine = ExactBips(graph, 0)
        exact_expectation = engine.expected_infection_time()
        trials = 2000
        total = 0
        for rng in spawn_generators(7, trials):
            process = BipsProcess(graph, 0, seed=rng)
            while not process.is_complete:
                process.step()
            total += process.infection_time
        empirical = total / trials
        assert abs(empirical - exact_expectation) < 0.15


class TestSizeGuard:
    def test_rejects_large_graphs(self):
        with pytest.raises(ExactEngineError, match="2\\^n"):
            ExactBips(generators.cycle(30), 0)
