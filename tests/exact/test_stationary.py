"""Tests for BIPS stationary and quasi-stationary structure.

Two complementary facts, both proved by the engines:

* the full set is **absorbing** for BIPS on a connected graph (every
  sample of every vertex hits an infected neighbour), so the
  stationary law is the point mass at ``V``;
* conditioned on not yet being full, the chain settles into a
  quasi-stationary law whose per-round survival factor ``θ`` is
  exactly the geometric tail rate of ``infec(v)`` — the mechanism
  behind the paper's w.h.p. statements (and experiment E11).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact.bips_exact import ExactBips
from repro.graphs import generators


class TestStationaryDistribution:
    def test_full_state_is_absorbing(self, c9):
        engine = ExactBips(c9, 0)
        full = (1 << 9) - 1
        stepped = engine.step_distribution(full)
        assert stepped[full] == pytest.approx(1.0)

    def test_stationary_is_point_mass_at_full(self, c9):
        stationary = ExactBips(c9, 0).stationary_distribution(tolerance=1e-9)
        assert stationary[(1 << 9) - 1] == pytest.approx(1.0, abs=1e-6)

    def test_is_a_fixed_point(self, petersen):
        engine = ExactBips(petersen, 0)
        stationary = engine.stationary_distribution(tolerance=1e-9)
        stepped = engine.evolve(stationary, 1)
        assert np.allclose(stepped, stationary, atol=1e-9)


class TestQuasiStationary:
    def test_is_a_distribution_without_full_state(self, c9):
        qsd, theta = ExactBips(c9, 0).quasi_stationary_distribution(tolerance=1e-10)
        assert qsd.sum() == pytest.approx(1.0)
        assert qsd[(1 << 9) - 1] == 0.0
        assert 0.0 < theta < 1.0

    def test_theta_matches_infection_tail_decay(self, c9):
        # P(infec > t) ~ C theta^t: the pmf ratio at large t converges
        # to theta.
        engine = ExactBips(c9, 0)
        _, theta = engine.quasi_stationary_distribution(tolerance=1e-12)
        pmf, _ = engine.infection_time_distribution(120)
        late = pmf[80:119]
        ratios = late[1:] / late[:-1]
        assert np.allclose(ratios, theta, atol=1e-3)

    def test_theta_is_eigenvalue_of_substochastic_chain(self):
        # Direct check on a tiny graph: theta equals the dominant
        # eigenvalue of the transition matrix with the full state removed.
        graph = generators.cycle(5)
        engine = ExactBips(graph, 0)
        _, theta = engine.quasi_stationary_distribution(tolerance=1e-12)
        full = (1 << 5) - 1
        matrix = np.array(
            [engine.step_distribution(mask) for mask in range(1 << 5)]
        )
        matrix[:, full] = 0.0
        matrix[full, :] = 0.0
        eigenvalues = np.linalg.eigvals(matrix)
        assert theta == pytest.approx(float(np.max(np.abs(eigenvalues))), abs=1e-8)

    def test_faster_absorption_on_better_expander(self):
        # K9 reaches full infection much faster than C9: its survival
        # factor must be far smaller.
        _, theta_cycle = ExactBips(generators.cycle(9), 0).quasi_stationary_distribution()
        _, theta_clique = ExactBips(generators.complete(9), 0).quasi_stationary_distribution()
        assert theta_clique < theta_cycle

    def test_quasi_stationary_mean_size_in_range(self, c9):
        level = ExactBips(c9, 0).quasi_stationary_mean_size()
        assert 1.0 < level < 9.0

    def test_certain_absorption_has_no_qsd(self):
        # On K2 the non-source vertex hits the source with probability 1
        # every round: absorption is certain in one step and no
        # quasi-stationary law exists.
        engine = ExactBips(generators.complete(2), 0)
        with pytest.raises(RuntimeError, match="no quasi-stationary law"):
            engine.quasi_stationary_distribution()
