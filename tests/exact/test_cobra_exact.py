"""Tests for the exact COBRA engine: walk laws, unions, hitting tails."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import spawn_generators
from repro.core.cobra import CobraProcess
from repro.exact.cobra_exact import ExactCobra
from repro.graphs import generators
from repro.graphs.spectral import transition_matrix


class TestStepDistribution:
    def test_mass_conserved(self, petersen):
        engine = ExactCobra(petersen)
        for mask in (0b1, 0b101, 0b11111):
            assert engine.step_distribution(mask).sum() == pytest.approx(1.0)

    def test_rejects_empty_set(self, petersen):
        with pytest.raises(ValueError, match="non-empty"):
            ExactCobra(petersen).step_distribution(0)

    def test_k1_single_vertex_is_uniform_neighbor(self, c9):
        engine = ExactCobra(c9, branching=1.0)
        distribution = engine.step_distribution(1 << 4)
        assert distribution[1 << 3] == pytest.approx(0.5)
        assert distribution[1 << 5] == pytest.approx(0.5)

    def test_k2_single_vertex_choice_law(self):
        # One active vertex with neighbours {a, b}: picks (with
        # replacement) give {a} w.p. 1/4, {b} w.p. 1/4, {a,b} w.p. 1/2.
        graph = generators.cycle(5)
        engine = ExactCobra(graph, branching=2.0)
        distribution = engine.step_distribution(1 << 0)
        a, b = 1 << 1, 1 << 4
        assert distribution[a] == pytest.approx(0.25)
        assert distribution[b] == pytest.approx(0.25)
        assert distribution[a | b] == pytest.approx(0.5)

    def test_fractional_choice_law(self):
        # branching 1.5: one mandatory pick; with prob 1/2 a second.
        graph = generators.cycle(5)
        engine = ExactCobra(graph, branching=1.5)
        distribution = engine.step_distribution(1 << 0)
        a, b = 1 << 1, 1 << 4
        # {a}: mandatory a, then (no branch) 1/2, or branch and pick a: 1/2 * 1/2 -> total 1/2*(1/2 + 1/4)... enumerate:
        # P({a}) = P(first=a) * [P(no branch) + P(branch, second=a)]
        #        = 1/2 * (1/2 + 1/2 * 1/2) = 3/8.
        assert distribution[a] == pytest.approx(3 / 8)
        assert distribution[b] == pytest.approx(3 / 8)
        assert distribution[a | b] == pytest.approx(2 / 8)


class TestWalkLawEquivalence:
    def test_k1_occupation_matches_transition_powers(self, petersen):
        # COBRA with branching 1 from one vertex IS a simple random
        # walk; its occupation law must equal rows of P^t.
        engine = ExactCobra(petersen, branching=1.0)
        matrix = transition_matrix(petersen)
        law = np.zeros(10)
        law[0] = 1.0
        for t in range(5):
            occupation = engine.occupation_probabilities([0], t)
            assert np.allclose(occupation, law, atol=1e-12)
            law = law @ matrix

    def test_occupation_sums_to_expected_size(self, c9):
        engine = ExactCobra(c9, branching=2.0)
        occupation = engine.occupation_probabilities([0], 3)
        assert np.all(occupation >= -1e-15)
        assert np.all(occupation <= 1 + 1e-15)
        # With branching 2 the active set at most doubles per round.
        assert occupation.sum() <= 8.0 + 1e-9


class TestMonteCarloAgreement:
    def test_occupation_frequencies(self):
        graph = generators.petersen()
        engine = ExactCobra(graph, branching=2.0)
        t = 3
        exact_occupation = engine.occupation_probabilities([0], t)
        trials = 3000
        counts = np.zeros(10)
        for rng in spawn_generators(99, trials):
            process = CobraProcess(graph, 0, seed=rng)
            process.run(t)
            counts += process.active_mask
        empirical = counts / trials
        standard_error = np.sqrt(exact_occupation * (1 - exact_occupation) / trials)
        assert np.all(np.abs(empirical - exact_occupation) < 5 * standard_error + 2e-2)


class TestHittingSurvival:
    def test_t0_values(self, petersen):
        engine = ExactCobra(petersen)
        assert engine.hitting_survival([0], 5, 0) == pytest.approx(1.0)
        assert engine.hitting_survival([0, 5], 5, 0) == pytest.approx(0.0)

    def test_monotone_non_increasing(self, petersen):
        engine = ExactCobra(petersen)
        series = engine.hitting_survival_series([0], 7, 10)
        assert np.all(np.diff(series) <= 1e-12)

    def test_walk_hitting_matches_substochastic_matrix(self, c9):
        # For k=1 the hitting tail of vertex v equals iterating the
        # transition matrix with row/column of v removed.
        engine = ExactCobra(c9, branching=1.0)
        series = engine.hitting_survival_series([0], 4, 8)
        matrix = transition_matrix(c9)
        keep = [u for u in range(9) if u != 4]
        reduced = matrix[np.ix_(keep, keep)]
        state = np.zeros(len(keep))
        state[keep.index(0)] = 1.0
        for t in range(9):
            assert series[t] == pytest.approx(state.sum(), abs=1e-12)
            state = state @ reduced

    def test_goes_to_zero_on_connected_graph(self, petersen):
        engine = ExactCobra(petersen)
        series = engine.hitting_survival_series([0], 9, 60)
        assert series[-1] < 1e-6

    def test_validates_t_max(self, petersen):
        with pytest.raises(ValueError, match="t_max"):
            ExactCobra(petersen).hitting_survival_series([0], 1, -1)
