"""Tests for the Monte-Carlo duality estimator (the large-graph tier)."""

from __future__ import annotations

from repro.exact.duality import duality_monte_carlo, duality_series
from repro.graphs import generators


class TestDualityMonteCarlo:
    def test_agrees_with_exact_on_small_graph(self, petersen):
        exact_cobra, exact_bips = duality_series(petersen, [0], 7, 5)
        points = duality_monte_carlo(
            petersen, [0], 7, (1, 3, 5), trials=3000, seed=0
        )
        for point in points:
            # Both estimates bracket the common exact value.
            assert point.cobra_interval[0] - 0.01 <= exact_cobra[point.t]
            assert exact_cobra[point.t] <= point.cobra_interval[1] + 0.01
            assert point.bips_interval[0] - 0.01 <= exact_bips[point.t]
            assert exact_bips[point.t] <= point.bips_interval[1] + 0.01

    def test_sides_overlap_on_medium_graph(self):
        graph = generators.random_regular(100, 6, seed=3)
        points = duality_monte_carlo(graph, 0, 57, (2, 4), trials=1500, seed=1)
        assert all(point.intervals_overlap for point in points)

    def test_multi_vertex_start_set(self, petersen):
        points = duality_monte_carlo(
            petersen, [0, 3], 7, (2,), trials=1500, seed=2
        )
        exact_cobra, _ = duality_series(petersen, [0, 3], 7, 2)
        point = points[0]
        assert abs(point.cobra_estimate - exact_cobra[2]) < 0.06
        assert point.intervals_overlap

    def test_t_zero_is_indicator(self, petersen):
        point = duality_monte_carlo(petersen, [0], 7, (0,), trials=50, seed=3)[0]
        assert point.cobra_estimate == 1.0
        assert point.bips_estimate == 1.0
        assert point.difference == 0.0

    def test_deterministic_given_seed(self, petersen):
        a = duality_monte_carlo(petersen, [0], 7, (3,), trials=300, seed=9)[0]
        b = duality_monte_carlo(petersen, [0], 7, (3,), trials=300, seed=9)[0]
        assert a.cobra_estimate == b.cobra_estimate
        assert a.bips_estimate == b.bips_estimate
